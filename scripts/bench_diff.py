#!/usr/bin/env python3
"""Diff criterion(-shim) bench output against the checked-in baseline.

Usage:
    cargo bench -p spindown_bench 2>&1 | tee bench.txt
    python3 scripts/bench_diff.py bench.txt              # compare
    python3 scripts/bench_diff.py bench.txt --update     # rewrite baseline

The in-tree criterion shim prints, per benchmark::

    group/bench/param
      time: [mean 70.000 ms | min 69.000 ms] over 10 iterations
      thrpt: 14200000 elem/s

This script extracts the *mean* time per benchmark and compares it against
``BENCH_BASELINE.json``. The threshold is deliberately generous
(``--threshold``, default 3.0x) because CI runs the benches in
``CRITERION_QUICK=1`` mode (one iteration, no statistics) on shared
runners: the lane exists to catch order-of-magnitude regressions and
panics, not 5% drifts — BENCHMARKS.md tracks the real trajectory by hand.

Exit codes: 0 ok, 1 regression(s) found, 2 usage/parse error.
"""

import argparse
import json
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"^(?P<name>[A-Za-z0-9_/.:-]+)$")
TIME_RE = re.compile(
    r"^\s+time:\s+\[mean\s+(?P<mean>[0-9.]+)\s+(?P<unit>s|ms|µs|us)\s+\|"
)

UNIT_S = {"s": 1.0, "ms": 1e-3, "µs": 1e-6, "us": 1e-6}


def parse_bench_output(text: str) -> dict[str, float]:
    """Map benchmark name -> mean seconds."""
    results: dict[str, float] = {}
    pending: str | None = None
    for line in text.splitlines():
        m = TIME_RE.match(line)
        if m and pending:
            results[pending] = float(m.group("mean")) * UNIT_S[m.group("unit")]
            pending = None
            continue
        m = NAME_RE.match(line.strip())
        # A benchmark id always contains a '/' (group/bench/param); this
        # keeps cargo noise ("Compiling ...", one-shot prints) out.
        if m and "/" in m.group("name") and ":" not in m.group("name"):
            pending = m.group("name")
    return results


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("output", help="file holding `cargo bench` stdout")
    ap.add_argument(
        "baseline",
        nargs="?",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json"),
        help="baseline JSON (default: repo-root BENCH_BASELINE.json)",
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=3.0,
        help="fail when current mean exceeds baseline * THRESHOLD (default 3.0)",
    )
    ap.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this output"
    )
    args = ap.parse_args()

    try:
        text = Path(args.output).read_text()
    except OSError as e:
        print(f"cannot read bench output: {e}", file=sys.stderr)
        return 2
    current = parse_bench_output(text)
    if not current:
        print("no benchmark results found in output — parse failure?", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline)
    if args.update:
        baseline_path.write_text(
            json.dumps(
                {name: {"mean_s": round(v, 9)} for name, v in sorted(current.items())},
                indent=2,
            )
            + "\n"
        )
        print(f"baseline rewritten with {len(current)} benchmarks → {baseline_path}")
        return 0

    try:
        baseline = json.loads(baseline_path.read_text())
    except OSError as e:
        print(f"cannot read baseline: {e} (run with --update to create)", file=sys.stderr)
        return 2

    regressions = []
    for name, mean_s in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"  NEW      {name}: {mean_s:.6f} s (not in baseline)")
            continue
        ratio = mean_s / base["mean_s"] if base["mean_s"] > 0 else float("inf")
        marker = "OK" if ratio <= args.threshold else "REGRESSED"
        print(f"  {marker:9} {name}: {mean_s:.6f} s vs {base['mean_s']:.6f} s ({ratio:.2f}x)")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    # A baseline benchmark absent from this run means a bench binary died
    # (or was renamed without refreshing the baseline) — fail either way.
    missing = sorted(set(baseline) - set(current))
    for name in missing:
        print(f"  MISSING  {name}: in baseline but not in this run")

    if regressions or missing:
        if regressions:
            print(
                f"\n{len(regressions)} benchmark(s) regressed beyond {args.threshold}x:",
                file=sys.stderr,
            )
            for name, ratio in regressions:
                print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        if missing:
            print(
                f"\n{len(missing)} baseline benchmark(s) missing from this run "
                "(crashed bench? refresh with --update if intentional)",
                file=sys.stderr,
            )
        return 1
    print(f"\nall {len(current)} benchmarks within {args.threshold}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
