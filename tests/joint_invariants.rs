//! Joint-planner invariants (ISSUE 5): determinism across runs, mutual
//! non-domination of the frontier, the scalarised winner beating the
//! paper's default quadruple on a seeded spin-up-heavy replay, and the
//! `concentrate` load-shaping strategy honouring the load constraint over
//! random catalogs.

use proptest::prelude::*;
use spindown::core::{
    JointCandidate, JointConfig, JointOutcome, JointPlanner, Planner, PlannerConfig,
};
use spindown::packing::Allocator;
use spindown::workload::arrivals::BatchConfig;
use spindown::workload::{FileCatalog, Trace};

/// A small catalog that keeps full-grid searches fast while preserving the
/// paper's popularity/size structure.
fn catalog() -> FileCatalog {
    FileCatalog::paper_table1(2_000, 0)
}

/// A seeded burst replay: `gap_s` seconds between bursts on average.
/// Sparse gaps (≫ break-even) make the replay spin-up-heavy — nearly every
/// burst cold-starts a disk; dense gaps (inside the break-even window)
/// additionally make the *allocation* legs of the quadruple matter.
fn burst_replay(cat: &FileCatalog, gap_s: f64, horizon: f64, seed: u64) -> Trace {
    let cfg = BatchConfig {
        burst_rate: 1.0 / gap_s,
        min_batch: 3,
        max_batch: 7,
        intra_batch_gap_s: 0.5,
    };
    Trace::batched(cat, &cfg, horizon, seed)
}

const RATE: f64 = 0.5;

fn search(trace: &Trace) -> JointOutcome {
    let planner = JointPlanner::new(JointConfig::default_grid());
    planner
        .search(&catalog(), trace, RATE)
        .expect("grid simulates")
}

#[test]
fn joint_search_is_deterministic_across_runs() {
    let cat = catalog();
    let trace = burst_replay(&cat, 25.0, 600.0, 0xD0D0);
    let a = search(&trace);
    let b = search(&trace);
    assert_eq!(a, b);
    // Full acceptance grid: ≥ 2 allocations × ≥ 3 policies × ≥ 2
    // disciplines × ≥ 2 ladders.
    assert_eq!(a.cells.len(), 36);
}

#[test]
fn frontier_points_are_mutually_non_dominated() {
    let cat = catalog();
    let trace = burst_replay(&cat, 25.0, 600.0, 0xFACE);
    let out = search(&trace);
    assert!(!out.frontier.is_empty());
    let frontier: Vec<_> = out.frontier_cells().collect();
    for a in &frontier {
        for b in &frontier {
            assert!(
                !a.dominates(b),
                "{} dominates {} on the frontier",
                a.candidate.label(),
                b.candidate.label()
            );
        }
    }
    // …and everything off the frontier is dominated by something on it.
    for (j, cell) in out.cells.iter().enumerate() {
        if !out.frontier.contains(&j) {
            assert!(
                frontier.iter().any(|f| f.dominates(cell)),
                "{} off-frontier but undominated",
                cell.candidate.label()
            );
        }
    }
}

#[test]
fn winner_beats_the_paper_default_on_a_spin_up_heavy_replay() {
    let cat = catalog();
    let objective = JointConfig::default_grid().objective;
    // Two seeded spin-up-heavy replays (sparse and dense burst spacing);
    // the winner must never be worse than the paper's default quadruple
    // (it is in the grid) and must strictly beat it on at least one.
    let mut strict_wins = 0;
    for (gap_s, seed) in [(150.0, 0x51u64), (25.0, 0x52u64)] {
        let trace = burst_replay(&cat, gap_s, 1_000.0, seed);
        let out = search(&trace);
        let default = out
            .cell_for(&JointCandidate::paper_default())
            .expect("paper default is in the grid");
        let winner = out.winner_cell();
        let s_win = objective.score(winner.energy_j, winner.p95_s);
        let s_def = objective.score(default.energy_j, default.p95_s);
        assert!(
            s_win <= s_def,
            "winner {} ({s_win}) worse than default ({s_def})",
            winner.candidate.label()
        );
        if s_win < s_def {
            strict_wins += 1;
        }
    }
    assert!(strict_wins >= 1, "winner never strictly beat the default");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // `concentrate` (and its sibling `spread_tail`) must respect the load
    // constraint on any catalog: random sizes and popularity weights,
    // planned through the real `Planner` path so the normalisation
    // (`l_i = rate·p_i·µ_i / L`) is the production one. `verify` checks
    // both per-disk dimension caps and complete item accounting.
    #[test]
    fn concentrate_never_violates_the_load_constraint(
        raw in prop::collection::vec((1u64..=20_000, 1u32..=1000), 1..120),
        rate_frac in 0.05f64..1.0,
    ) {
        let total: f64 = raw.iter().map(|&(_, w)| f64::from(w)).sum();
        let sizes: Vec<u64> = raw.iter().map(|&(mb, _)| mb * 1_000_000).collect();
        let pops: Vec<f64> = raw.iter().map(|&(_, w)| f64::from(w) / total).collect();
        let cat = FileCatalog::from_parts(sizes, pops);
        // The heaviest (popularity × service) product bounds the feasible
        // arrival rate: scale the drawn fraction so every single item fits
        // under the load cap and the *instance* is always buildable — the
        // property under test is the strategies, not instance validation.
        let planner_probe = Planner::new(PlannerConfig::default());
        let max_pm = cat
            .iter()
            .map(|f| f.popularity * planner_probe.service_time(f.size_bytes))
            .fold(0.0_f64, f64::max);
        let rate = rate_frac * 0.7 / max_pm;
        for allocator in [Allocator::Concentrate, Allocator::SpreadTail] {
            let mut cfg = PlannerConfig::default();
            cfg.allocator = allocator;
            let planner = Planner::new(cfg);
            let plan = planner.plan(&cat, rate).expect("shaped plan feasible");
            prop_assert!(plan.assignment.verify(&plan.instance).is_ok());
            prop_assert_eq!(plan.assignment.items_assigned(), cat.len());
        }
    }
}
