//! Cross-discipline integration invariants, next to `policy_invariants.rs`:
//! seeded differential runs of the SJF and elevator disciplines against
//! FIFO on the workloads they are meant to win — a bimodal size mix for
//! SJF, a spin-up-heavy burst replay for elevator batching — plus the
//! aging-bound starvation guarantee and cross-discipline conservation.

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::discipline::DisciplineChoice;
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::SimReport;
use spindown::workload::arrivals::BatchConfig;
use spindown::workload::{FileCatalog, Trace};

const MB: u64 = 1_000_000;

/// Bimodal catalog: half tiny (2 MB ≈ 40 ms service), half huge (400 MB ≈
/// 5.6 s service), equally popular, round-robined over two disks so each
/// disk sees both modes.
fn bimodal() -> (FileCatalog, Assignment) {
    let sizes: Vec<u64> = (0..8)
        .map(|i| if i % 2 == 0 { 2 * MB } else { 400 * MB })
        .collect();
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 8.0; 8]);
    let mut bins: Vec<DiskBin> = (0..2).map(|_| DiskBin::default()).collect();
    for i in 0..8 {
        bins[i % 2].items.push(i);
    }
    (catalog, Assignment { disks: bins })
}

fn run(
    catalog: &FileCatalog,
    trace: &Trace,
    assignment: &Assignment,
    discipline: DisciplineChoice,
    threshold: ThresholdPolicy,
) -> SimReport {
    let cfg = SimConfig::paper_default()
        .with_threshold(threshold)
        .with_discipline(discipline);
    Simulator::run(catalog, trace, assignment, &cfg).expect("replay succeeds")
}

const AGING_BOUND_S: f64 = 60.0;

#[test]
fn sjf_beats_fifo_mean_response_on_a_bimodal_mix() {
    let (catalog, assignment) = bimodal();
    // Queues form: ~0.5 req/s over 2 disks with ≈2.8 s mean service.
    for seed in [3, 17, 2026] {
        let trace = Trace::poisson(&catalog, 0.5, 2_000.0, seed);
        let fifo = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::Fifo,
            ThresholdPolicy::Never,
        );
        let sjf = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::ShortestJobFirst {
                aging_bound_s: AGING_BOUND_S,
            },
            ThresholdPolicy::Never,
        );
        assert_eq!(sjf.responses.len(), fifo.responses.len(), "seed {seed}");
        assert!(
            sjf.responses.mean() <= fifo.responses.mean() + 1e-9,
            "seed {seed}: sjf mean {} vs fifo mean {}",
            sjf.responses.mean(),
            fifo.responses.mean()
        );
    }
}

#[test]
fn sjf_max_wait_stays_within_the_aging_bound_of_fifo() {
    let (catalog, assignment) = bimodal();
    for seed in [3, 17, 2026] {
        let trace = Trace::poisson(&catalog, 0.5, 2_000.0, seed);
        let fifo = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::Fifo,
            ThresholdPolicy::Never,
        );
        let sjf = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::ShortestJobFirst {
                aging_bound_s: AGING_BOUND_S,
            },
            ThresholdPolicy::Never,
        );
        // Aging caps the extra wait a deferred (large) request can accrue:
        // its response never exceeds FIFO's worst case by more than the
        // bound.
        assert!(
            sjf.responses.max() <= fifo.responses.max() + AGING_BOUND_S + 1e-9,
            "seed {seed}: sjf max {} vs fifo max {} + bound {}",
            sjf.responses.max(),
            fifo.responses.max(),
            AGING_BOUND_S
        );
    }
}

#[test]
fn sjf_aging_prevents_starvation_under_a_small_request_flood() {
    // One disk, one huge file, a flood of tiny requests: without aging the
    // huge request would be deferred for the whole flood (~100 s of queued
    // small work); the 10 s bound forces it through early.
    let sizes = vec![2 * MB, 2_000 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![0.5, 0.5]);
    let assignment = Assignment {
        disks: vec![DiskBin {
            items: vec![0, 1],
            total_s: 0.0,
            total_l: 0.0,
        }],
    };
    use spindown::workload::trace::Request;
    use spindown::workload::FileId;
    let mut reqs = vec![Request {
        time: 0.0,
        file: FileId(1),
    }];
    // 200 small requests, one per 0.5 s — each takes ~0.04 s to serve, so
    // pure SJF would always find a small one pending… once the flood
    // outpaces service. Either way the huge request (≈27.8 s service)
    // must start by the aging bound.
    for i in 0..200 {
        reqs.push(Request {
            time: 0.05 + 0.5 * i as f64,
            file: FileId(0),
        });
    }
    reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
    let trace = Trace::new(reqs, 300.0);
    let bound = 10.0;
    let report = run(
        &catalog,
        &trace,
        &assignment,
        DisciplineChoice::ShortestJobFirst {
            aging_bound_s: bound,
        },
        ThresholdPolicy::Never,
    );
    assert_eq!(report.responses.len(), trace.len());
    // The huge request is the max response; it must complete within
    // bound + one in-flight small service + its own ≈27.8 s service, far
    // below the no-aging ~100 s+ deferral.
    let huge_service = 2_000.0 * MB as f64 / 72_000_000.0 + 0.0085 + 0.00416;
    assert!(
        report.responses.max() <= bound + 1.0 + huge_service + 1e-6,
        "huge request starved: max response {}",
        report.responses.max()
    );
}

#[test]
fn elevator_batching_beats_fifo_on_spin_up_heavy_bursts() {
    let (catalog, assignment) = bimodal();
    let burst_cfg = BatchConfig {
        burst_rate: 1.0 / 150.0,
        min_batch: 4,
        max_batch: 8,
        intra_batch_gap_s: 0.5,
    };
    for seed in [5, 41, 977] {
        let trace = Trace::batched(&catalog, &burst_cfg, 6_000.0, seed);
        let threshold = ThresholdPolicy::Fixed(20.0);
        let fifo = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::Fifo,
            threshold,
        );
        let elevator = run(
            &catalog,
            &trace,
            &assignment,
            DisciplineChoice::ElevatorBatch,
            threshold,
        );
        assert_eq!(elevator.responses.len(), fifo.responses.len());
        assert!(
            elevator.responses.mean() <= fifo.responses.mean() + 1e-9,
            "seed {seed}: elevator mean {} vs fifo mean {}",
            elevator.responses.mean(),
            fifo.responses.mean()
        );
    }
}

#[test]
fn disciplines_conserve_requests_and_energy_accounting() {
    let (catalog, assignment) = bimodal();
    let trace = Trace::poisson(&catalog, 0.3, 1_500.0, 11);
    for discipline in DisciplineChoice::all() {
        let report = run(
            &catalog,
            &trace,
            &assignment,
            discipline,
            ThresholdPolicy::BreakEven,
        );
        assert_eq!(
            report.responses.len(),
            trace.len(),
            "{} dropped requests",
            discipline.label()
        );
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        assert!(
            (covered - expected).abs() < 1e-6 * expected.max(1.0),
            "{}: covered {covered}s vs {expected}s",
            discipline.label()
        );
        // p95/p99 are well-formed tail statistics.
        let [p95, p99, max] = report.response_quantiles(&[0.95, 0.99, 1.0])[..] else {
            unreachable!("three quantiles requested")
        };
        let mean = report.responses.mean();
        assert!(p95 <= p99 && p99 <= max);
        assert!(
            mean <= p99,
            "{}: mean {mean} above p99 {p99}",
            discipline.label()
        );
    }
}
