//! Cached + logged sharding equivalence (tier-1): the composition matrix
//! that makes `--shards N` a pure wall-clock lever even with a global
//! cache hierarchy and the streaming completion log enabled.
//!
//! Pinned here:
//!
//! 1. **Legacy global cache** — `CacheConfig::paper_16gb` (and the same
//!    cache written as an explicit single-tier global hierarchy) replayed
//!    on the golden fixture and a seeded Poisson fleet is bit-identical
//!    at S ∈ {1, 2, 3, 8}: responses, energy, per-disk tables, merged
//!    `CacheStats` and the per-tier rows.
//! 2. **Multi-tier global hierarchy** — a DRAM→SSD stack whose smallest
//!    per-shard DRAM slice still holds every resident file shards
//!    bit-identically, tier rows included.
//! 3. **Completion log** — `Memory` mode yields the same `Vec<Completion>`
//!    in canonical `(time, req)` order at every shard count; `Digest`
//!    mode yields the same record count, byte count and FNV-1a hash.
//! 4. **Cache × log** — both features on at once still merge exactly.
//! 5. **The honest boundary** — under real eviction pressure the
//!    partitioned per-shard slices may diverge from the pooled budget
//!    (documented in `hierarchy.rs` "Scope and sharding"); what *stays*
//!    invariant is pinned: every request is classified exactly once
//!    (`hits + misses == requests`) and the response count is unchanged.
//!
//! The exact-equivalence tests deliberately run in the no-eviction
//! regime: the smallest per-shard slice is sized to hold that shard's
//! whole resident set, so slice and pool make identical decisions. The
//! golden fixture's working set is 532 MB over 3 disks (max per-disk
//! resident 302 MB), so a 1.2 GB DRAM front partitions to ≥ 400 MB
//! slices at any shard count.

use std::io::BufReader;

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{CacheConfig, SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::sim::hierarchy::{
    CacheHierarchyConfig, CachePolicyChoice, CacheScope, CacheTierConfig,
};
use spindown::sim::metrics::{MetricsMode, SimReport};
use spindown::sim::CompletionLogMode;
use spindown::workload::{FileCatalog, Trace};

const MB: u64 = 1_000_000;
const GB: u64 = 1_000_000_000;
const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn catalog(n: usize) -> FileCatalog {
    let sizes: Vec<u64> = (0..n).map(|i| (1 + (i % 96) as u64) * MB).collect();
    FileCatalog::from_parts(sizes, vec![1.0 / n as f64; n])
}

fn assignment(files: usize, disks: usize) -> Assignment {
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for f in 0..files {
        bins[f % disks].items.push(f);
    }
    Assignment { disks: bins }
}

fn golden_fixture() -> (FileCatalog, Trace, Assignment) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let raw = std::fs::File::open("tests/fixtures/golden_trace.csv").expect("fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    (catalog, trace, Assignment { disks: bins })
}

/// Bit-exact comparison of the merged report *plus* the cache and
/// completion-log surfaces (the shard/fault-equivalence twin, extended;
/// `per_shard_event_peaks` is excluded by design — see
/// `shard_equivalence`).
fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.sim_time_s, b.sim_time_s, "{what}: sim time");
    assert_eq!(a.disks, b.disks, "{what}: fleet size");
    assert_eq!(
        a.energy.total_joules(),
        b.energy.total_joules(),
        "{what}: total energy"
    );
    assert_eq!(
        a.energy.per_state(),
        b.energy.per_state(),
        "{what}: per-state"
    );
    assert_eq!(a.responses, b.responses, "{what}: responses");
    for q in QS {
        assert_eq!(
            a.response_quantile(q),
            b.response_quantile(q),
            "{what}: q={q}"
        );
    }
    assert_eq!(a.spin_downs, b.spin_downs, "{what}: spin-downs");
    assert_eq!(a.spin_ups, b.spin_ups, "{what}: spin-ups");
    assert_eq!(a.per_disk_served, b.per_disk_served, "{what}: served");
    assert_eq!(
        a.per_disk_responses, b.per_disk_responses,
        "{what}: per-disk responses"
    );
    for (d, (x, y)) in a.per_disk_energy.iter().zip(&b.per_disk_energy).enumerate() {
        assert_eq!(x.per_state(), y.per_state(), "{what}: disk {d} energy");
    }
    assert_eq!(a.cache, b.cache, "{what}: merged cache counters");
    assert_eq!(a.cache_tiers, b.cache_tiers, "{what}: per-tier counters");
    assert_eq!(a.completions, b.completions, "{what}: completion records");
    match (&a.completion_log, &b.completion_log) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            assert_eq!(x.records, y.records, "{what}: log records");
            assert_eq!(x.bytes, y.bytes, "{what}: log bytes");
            assert_eq!(x.fnv1a, y.fnv1a, "{what}: log digest");
        }
        other => panic!("{what}: log summary presence diverged: {other:?}"),
    }
}

/// The legacy 16 GB global cache (both spellings): slices of 16 GB dwarf
/// the golden fixture's 532 MB working set, so every shard count replays
/// the pooled decisions exactly.
#[test]
fn legacy_global_cache_is_bit_identical_across_shard_counts_on_the_golden_trace() {
    let (catalog, trace, layout) = golden_fixture();
    let legacy = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_cache(CacheConfig::paper_16gb());
    let explicit = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_cache_hierarchy(Some(CacheHierarchyConfig::from_legacy(
            &CacheConfig::paper_16gb(),
        )));
    for (what, base) in [("legacy", legacy), ("explicit single tier", explicit)] {
        let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
        let stats = solo.cache.as_ref().expect("cached run reports stats");
        assert!(stats.hits > 0, "{what}: repeated reads must hit");
        assert_eq!(stats.evicted_bytes, 0, "{what}: no-eviction regime");
        assert_eq!(stats.oversize_rejections, 0, "{what}: nothing oversize");
        for shards in SHARD_COUNTS {
            let cfg = base.clone().with_shards(shards);
            let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
            assert_reports_bit_identical(&solo, &sharded, &format!("golden {what} S={shards}"));
        }
    }
}

/// Same pin on a 16-disk seeded Poisson fleet: 2.1 GB of catalog against
/// per-shard slices that never drop below 16 GB × (2/16), so the
/// no-eviction precondition holds at every count.
#[test]
fn legacy_global_cache_is_bit_identical_across_shard_counts_on_seeded_poisson() {
    let cat = catalog(64);
    let tr = Trace::poisson(&cat, 2.0, 600.0, 0xCAC4E);
    let layout = assignment(64, 16);
    let base = SimConfig::paper_default()
        .with_metrics(MetricsMode::Histogram)
        .with_cache(CacheConfig::paper_16gb());
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let stats = solo.cache.as_ref().expect("stats");
    assert!(stats.hits > 0, "Poisson reuse must hit");
    assert_eq!(stats.evicted_bytes, 0, "no-eviction regime");
    for shards in SHARD_COUNTS {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        assert_reports_bit_identical(&solo, &sharded, &format!("poisson S={shards}"));
    }
}

/// A two-tier DRAM→SSD global stack: the 1.2 GB DRAM front partitions to
/// ≥ 400 MB per shard — above the fixture's 302 MB max per-disk resident
/// set and its 300 MB largest file — so the tier walk, promote path and
/// per-tier counter merge are exercised without crossing the eviction
/// boundary.
#[test]
fn two_tier_global_hierarchy_is_bit_identical_across_shard_counts() {
    let (catalog, trace, layout) = golden_fixture();
    let stack = CacheHierarchyConfig::new(vec![
        CacheTierConfig::dram(1_200 * MB, CachePolicyChoice::Lru),
        CacheTierConfig::ssd(4 * GB, CachePolicyChoice::Lru),
    ])
    .with_scope(CacheScope::Global);
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_cache_hierarchy(Some(stack));
    let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
    let tiers = solo.cache_tiers.as_ref().expect("per-tier rows");
    assert_eq!(tiers.len(), 2, "both tiers reported");
    assert!(tiers[0].hits > 0, "the DRAM front absorbs reuse");
    assert_eq!(tiers[0].evicted_bytes, 0, "no-eviction regime");
    for shards in SHARD_COUNTS {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
        assert_reports_bit_identical(&solo, &sharded, &format!("two-tier S={shards}"));
    }
}

/// `Memory`-mode completion records come back in canonical `(time, req)`
/// order whatever the shard count, and the `Digest` summary (records,
/// bytes, FNV-1a over the canonical lines) matches too — with and
/// without a cache in front.
#[test]
fn completion_log_is_bit_identical_across_shard_counts() {
    let (catalog, trace, layout) = golden_fixture();
    let plain = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    let variants = [
        ("memory", plain.clone().with_completion_log()),
        (
            "digest",
            plain
                .clone()
                .with_completion_log_mode(CompletionLogMode::Digest),
        ),
        (
            "cache and memory log",
            plain
                .clone()
                .with_cache(CacheConfig::paper_16gb())
                .with_completion_log(),
        ),
        (
            "cache and digest log",
            plain
                .with_cache(CacheConfig::paper_16gb())
                .with_completion_log_mode(CompletionLogMode::Digest),
        ),
    ];
    for (what, base) in variants {
        let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
        let summary = solo.completion_log.as_ref().expect("summary present");
        assert!(summary.records > 0, "{what}: records flowed");
        if let Some(completions) = &solo.completions {
            assert_eq!(completions.len() as u64, summary.records, "{what}: count");
            for w in completions.windows(2) {
                assert!(
                    w[0].time_s < w[1].time_s
                        || (w[0].time_s == w[1].time_s && w[0].req < w[1].req),
                    "{what}: canonical order"
                );
            }
        }
        for shards in SHARD_COUNTS {
            let cfg = base.clone().with_shards(shards);
            let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
            assert_reports_bit_identical(&solo, &sharded, &format!("{what} S={shards}"));
        }
    }
}

/// With a cache in front, the log records *disk* completions only — cache
/// hits never reach a platter — so the record count equals the miss
/// count, at every shard count.
#[test]
fn cached_completion_log_records_only_the_misses() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_cache(CacheConfig::paper_16gb())
        .with_completion_log();
    for shards in SHARD_COUNTS {
        let cfg = base.clone().with_shards(shards);
        let report = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
        let stats = report.cache.as_ref().expect("stats");
        let summary = report.completion_log.as_ref().expect("summary");
        assert_eq!(
            summary.records, stats.misses,
            "S={shards}: log records = cache misses"
        );
        assert_eq!(
            stats.hits + stats.misses,
            report.responses.len() as u64,
            "S={shards}: every request classified once"
        );
    }
}

/// The documented boundary: a cache under genuine eviction pressure may
/// diverge between the pooled budget and the per-shard slices (each
/// slice evicts by its own recency order, so hit counts — and with them
/// the per-disk served counts — can differ). What must *still* hold is
/// pinned: the response count and the classified-exactly-once invariant
/// `hits + misses == requests`.
#[test]
fn eviction_pressure_keeps_the_bounded_invariants() {
    let cat = catalog(64); // 2.1 GB working set…
    let tr = Trace::poisson(&cat, 2.0, 600.0, 0xE71C);
    let layout = assignment(64, 16);
    let base = SimConfig::paper_default()
        .with_metrics(MetricsMode::Histogram)
        .with_cache(CacheConfig {
            capacity_bytes: 256 * MB, // …against a 256 MB budget: heavy churn.
            ..CacheConfig::paper_16gb()
        });
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let a = solo.cache.as_ref().expect("stats");
    assert!(a.evicted_bytes > 0, "the fixture must actually evict");
    for shards in [2usize, 8] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        let b = sharded.cache.as_ref().expect("stats");
        assert_eq!(
            solo.responses.len(),
            sharded.responses.len(),
            "S={shards}: every request completes"
        );
        assert_eq!(
            a.hits + a.misses,
            b.hits + b.misses,
            "S={shards}: classified exactly once"
        );
        assert_eq!(
            b.hits + b.misses,
            sharded.responses.len() as u64,
            "S={shards}: classification covers the trace"
        );
    }
}
