//! Heavyweight smoke tests for the `--ignored` CI lane
//! (`cargo test -q -- --ignored`): a million-request streamed replay per
//! queue discipline, plus a 100-million-request generator-backed replay in
//! histogram-metrics mode, checking the invariants that matter at scale —
//! conservation, fleet-bound event heap, bucket-bound metrics, energy–time
//! accounting — without slowing the default tier-1 run.

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::discipline::DisciplineChoice;
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::MetricsMode;
use spindown::sim::CompletionLogMode;
use spindown::sim::StreamingHistogram;
use spindown::workload::{FileCatalog, SyntheticSource, Trace};

const FILES: usize = 64;
const DISKS: usize = 8;

/// 64 equally popular 8 MB files round-robined over 8 disks; 250 req/s for
/// 4000 s ≈ one million requests (the `arrival_scheduling` bench fixture).
fn fixture() -> (FileCatalog, Trace, Assignment) {
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let trace = Trace::poisson(&catalog, 250.0, 4_000.0, 1_000_003);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, trace, Assignment { disks: bins })
}

#[test]
#[ignore = "smoke lane: cargo test -- --ignored"]
fn one_million_request_streamed_replay_conserves_under_every_discipline() {
    let (catalog, trace, assignment) = fixture();
    assert!(
        trace.len() > 900_000,
        "want ~1M requests, got {}",
        trace.len()
    );
    let mut fifo_energy = None;
    for discipline in DisciplineChoice::all() {
        let cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::BreakEven)
            .with_discipline(discipline);
        let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("replay");
        // Conservation at scale: every request answered exactly once.
        assert_eq!(
            report.responses.len(),
            trace.len(),
            "{} dropped requests",
            discipline.label()
        );
        let served: u64 = report.per_disk_served.iter().sum();
        assert_eq!(served, trace.len() as u64);
        // The streamed engine keeps the heap fleet-bound even at 1M
        // requests, whatever the discipline does to the queue.
        assert!(
            report.peak_event_queue_max() <= 4 * report.disks + 4,
            "{}: peak {} for {} disks",
            discipline.label(),
            report.peak_event_queue_max(),
            report.disks
        );
        // Energy–time accounting never leaks.
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        assert!(
            (covered - expected).abs() < 1e-6 * expected,
            "{}: covered {covered}s vs {expected}s",
            discipline.label()
        );
        // At 250 req/s the fleet never sleeps: reordering the queue
        // cannot change the energy integral.
        let energy = report.energy.total_joules();
        match fifo_energy {
            None => fifo_energy = Some(energy),
            Some(e) => assert!(
                (energy - e).abs() < 1e-6 * e,
                "{}: energy {energy} vs fifo {e}",
                discipline.label()
            ),
        }
    }
}

/// The acceptance bar for the constant-memory hot path: a 100M-request
/// generator-backed replay whose tracked structures are all independent of
/// the request count — no materialised trace, O(disks) event heap, O(
/// buckets) response metrics. (~10⁸ requests keeps this in the smoke lane,
/// not tier-1.)
#[test]
#[ignore = "smoke lane: cargo test -- --ignored"]
fn hundred_million_request_generator_replay_is_constant_memory() {
    // 40 req/s over 8 disks of 8 MB files ≈ 0.62 utilisation: a *stable*
    // queueing system, so pending-queue depth is workload-bound, not
    // request-count-bound — which is exactly the constant-memory claim.
    const RATE: f64 = 40.0;
    const REQUESTS: f64 = 100e6;
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    let assignment = Assignment { disks: bins };
    let cfg = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::BreakEven)
        .with_metrics(MetricsMode::Histogram);
    let source = SyntheticSource::poisson(&catalog, RATE, REQUESTS / RATE, 1_000_003);
    let report =
        Simulator::run_from_source(&catalog, source, &assignment, &cfg, DISKS).expect("replay");

    // ~100M arrivals actually streamed through (Poisson: ±0.1% at this n).
    let served = report.responses.len() as f64;
    assert!(
        (served - REQUESTS).abs() < 0.01 * REQUESTS,
        "expected ≈{REQUESTS} requests, got {served}"
    );
    let counted: u64 = report.per_disk_served.iter().sum();
    assert_eq!(counted, report.responses.len() as u64, "conservation");
    // Event heap stayed fleet-bound…
    assert!(
        report.peak_event_queue_max() <= 4 * report.disks + 4,
        "peak {} for {} disks",
        report.peak_event_queue_max(),
        report.disks
    );
    // …pending queues stayed backlog-bound (0.62 utilisation: depth is a
    // property of the load, independent of the 10⁸ request count)…
    assert!(
        report.peak_disk_queue < 10_000,
        "peak pending queue {} grew with the request count",
        report.peak_disk_queue
    );
    // …and the response metrics stayed bucket-bound: the only per-request
    // state left is a u64 bucket counter.
    assert_eq!(report.responses.mode(), MetricsMode::Histogram);
    assert!(StreamingHistogram::max_buckets() < 10_000);
    // Energy–time accounting never leaks, even over 4×10⁵ simulated
    // seconds.
    let covered = report.energy.total_seconds();
    let expected = report.sim_time_s * report.disks as f64;
    assert!(
        (covered - expected).abs() < 1e-6 * expected,
        "covered {covered}s vs {expected}s"
    );
    // Sanity on the aggregates the histogram carries exactly.
    assert!(report.responses.mean() > 0.0);
    assert!(report.response_p99() >= report.responses.mean());
}

/// The billion-request bar from the sharded-replay work: a 10⁹-request
/// generator-backed replay across 4 shards, with the streaming completion
/// log on in digest mode. Each shard's generator view streams its own
/// partition and the per-shard log streams through the k-way merger, so
/// resident memory stays O(shards × (disks + buckets) + log buffers) and
/// the wall clock divides across cores. A 1-shard control at 10⁷ requests
/// is checked for bit-identity separately (tier-1 `shard_equivalence`);
/// here the claim is scale.
#[test]
#[ignore = "smoke lane (minutes): cargo test -- --ignored"]
fn billion_request_sharded_replay_completes_and_conserves() {
    const RATE: f64 = 40.0;
    const REQUESTS: f64 = 1e9;
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    let assignment = Assignment { disks: bins };
    let cfg = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::BreakEven)
        .with_metrics(MetricsMode::Histogram)
        .with_shards(4)
        .with_completion_log_mode(CompletionLogMode::Digest);
    let source = SyntheticSource::poisson(&catalog, RATE, REQUESTS / RATE, 1_000_003);
    let report =
        Simulator::run_from_source(&catalog, source, &assignment, &cfg, DISKS).expect("replay");

    let served = report.responses.len() as f64;
    assert!(
        (served - REQUESTS).abs() < 0.01 * REQUESTS,
        "expected ≈{REQUESTS} requests, got {served}"
    );
    let counted: u64 = report.per_disk_served.iter().sum();
    assert_eq!(counted, report.responses.len() as u64, "conservation");
    // Per-shard fleet-bound peaks, one per event loop.
    assert_eq!(report.per_shard_event_peaks.len(), cfg.shards);
    assert!(
        report.peak_event_queue_sum() <= 4 * report.disks + 4 * cfg.shards,
        "peak sum {} for {} disks × {} shards",
        report.peak_event_queue_sum(),
        report.disks,
        cfg.shards
    );
    assert!(report.peak_disk_queue < 10_000);
    // The digest log saw every completion without materialising any of
    // them: peak buffering is bounded by the chunked channel plumbing, not
    // the 10⁹ record count.
    let log = report.completion_log.as_ref().expect("digest log enabled");
    assert_eq!(log.records, report.responses.len() as u64);
    assert!(report.completions.is_none(), "digest mode keeps no records");
    assert!(
        log.peak_buffered < 1_000_000,
        "log buffering {} grew with the request count",
        log.peak_buffered
    );
    let covered = report.energy.total_seconds();
    let expected = report.sim_time_s * report.disks as f64;
    assert!((covered - expected).abs() < 1e-6 * expected);
}

/// The fleet-scale bar: 10⁵ disks (2×10⁵ files) replayed across 8 shards.
/// Most of the fleet idles and spins down — the paper's archival shape —
/// so the run exercises per-disk actor state, timer scheduling and the
/// merge across a fleet three orders of magnitude beyond the paper's 100
/// disks, and must complete in minutes.
#[test]
#[ignore = "smoke lane (minutes): cargo test -- --ignored"]
fn hundred_thousand_disk_fleet_replays_under_sharding() {
    const FLEET: usize = 100_000;
    const N_FILES: usize = 2 * FLEET;
    const RATE: f64 = 2_000.0; // ~5M requests over 2500 s, spread thin
    let catalog = FileCatalog::from_parts(
        vec![8_000_000; N_FILES],
        vec![1.0 / N_FILES as f64; N_FILES],
    );
    let mut bins: Vec<DiskBin> = (0..FLEET).map(|_| DiskBin::default()).collect();
    for file in 0..N_FILES {
        bins[file % FLEET].items.push(file);
    }
    let assignment = Assignment { disks: bins };
    let cfg = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::BreakEven)
        .with_metrics(MetricsMode::Histogram)
        .with_shards(8);
    let source = SyntheticSource::poisson(&catalog, RATE, 2_500.0, 77);
    let report =
        Simulator::run_from_source(&catalog, source, &assignment, &cfg, FLEET).expect("replay");

    assert_eq!(report.disks, FLEET);
    let served: u64 = report.per_disk_served.iter().sum();
    assert_eq!(served, report.responses.len() as u64, "conservation");
    assert!(
        report.responses.len() > 4_000_000,
        "want ~5M requests, got {}",
        report.responses.len()
    );
    // At 0.02 req/s per disk every disk spends most of the run asleep:
    // the spin-down machinery ran fleet-wide.
    assert!(
        report.spin_downs as usize >= FLEET / 2,
        "only {} spin-downs across {FLEET} disks",
        report.spin_downs
    );
    let covered = report.energy.total_seconds();
    let expected = report.sim_time_s * report.disks as f64;
    assert!((covered - expected).abs() < 1e-6 * expected);
}
