//! Heavyweight smoke tests for the `--ignored` CI lane
//! (`cargo test -q -- --ignored`): a million-request streamed replay per
//! queue discipline, checking the invariants that matter at scale —
//! conservation, fleet-bound event heap, energy–time accounting — without
//! slowing the default tier-1 run.

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::discipline::DisciplineChoice;
use spindown::sim::engine::Simulator;
use spindown::workload::{FileCatalog, Trace};

const FILES: usize = 64;
const DISKS: usize = 8;

/// 64 equally popular 8 MB files round-robined over 8 disks; 250 req/s for
/// 4000 s ≈ one million requests (the `arrival_scheduling` bench fixture).
fn fixture() -> (FileCatalog, Trace, Assignment) {
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let trace = Trace::poisson(&catalog, 250.0, 4_000.0, 1_000_003);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, trace, Assignment { disks: bins })
}

#[test]
#[ignore = "smoke lane: cargo test -- --ignored"]
fn one_million_request_streamed_replay_conserves_under_every_discipline() {
    let (catalog, trace, assignment) = fixture();
    assert!(
        trace.len() > 900_000,
        "want ~1M requests, got {}",
        trace.len()
    );
    let mut fifo_energy = None;
    for discipline in DisciplineChoice::all() {
        let cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::BreakEven)
            .with_discipline(discipline);
        let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("replay");
        // Conservation at scale: every request answered exactly once.
        assert_eq!(
            report.responses.len(),
            trace.len(),
            "{} dropped requests",
            discipline.label()
        );
        let served: u64 = report.per_disk_served.iter().sum();
        assert_eq!(served, trace.len() as u64);
        // The streamed engine keeps the heap fleet-bound even at 1M
        // requests, whatever the discipline does to the queue.
        assert!(
            report.peak_event_queue <= 4 * report.disks + 4,
            "{}: peak {} for {} disks",
            discipline.label(),
            report.peak_event_queue,
            report.disks
        );
        // Energy–time accounting never leaks.
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        assert!(
            (covered - expected).abs() < 1e-6 * expected,
            "{}: covered {covered}s vs {expected}s",
            discipline.label()
        );
        // At 250 req/s the fleet never sleeps: reordering the queue
        // cannot change the energy integral.
        let energy = report.energy.total_joules();
        match fifo_energy {
            None => fifo_energy = Some(energy),
            Some(e) => assert!(
                (energy - e).abs() < 1e-6 * e,
                "{}: energy {energy} vs fifo {e}",
                discipline.label()
            ),
        }
    }
}
