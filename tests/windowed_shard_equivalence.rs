//! Windowed shard-equivalence (tier-1): the windowed time series of an
//! S-shard replay is **bit-identical** to the single-threaded engine for
//! every shard count — per-disk event sequences are shard-invariant, so
//! the per-disk collectors are too, and the fleet rows are re-derived by
//! the same ascending-global-disk-order fold either way.
//!
//! Pinned here:
//!
//! 1. **Golden-trace windowed bit-identity** — the golden fixture with
//!    60 s windows at S ∈ {1, 2, 3, 8}: identical `WindowedReport`
//!    (rows *and* per-disk collectors), identical legacy aggregates.
//! 2. **Non-stationary windowed bit-identity** — a seeded diurnal and a
//!    seeded flash-crowd replay streamed through the demux at
//!    S ∈ {1, 2, 8}.
//! 3. **Dead-interval contract** — a trace with a silent middle renders
//!    its empty windows as explicit zeros, never NaN.
//! 4. **Faulted windowed equivalence** — per-window availability counters
//!    (shed/failed/retried) merge shard-invariantly and reconcile with
//!    the run-level availability block; fault-free runs keep
//!    `faulted = false` so the CSV schema stays pinned.
//! 5. **Conservation** — window completions sum to the run's response
//!    count and window energy sums to the run's total joules.

use std::io::BufReader;

use spindown::core::FaultChoice;
use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::{MetricsMode, SimReport};
use spindown::sim::windows::WindowedReport;
use spindown::workload::{FileCatalog, RateCurve, SyntheticSource, Trace};

const MB: u64 = 1_000_000;

fn catalog(n: usize) -> FileCatalog {
    let sizes: Vec<u64> = (0..n).map(|i| (1 + (i % 96) as u64) * MB).collect();
    FileCatalog::from_parts(sizes, vec![1.0 / n as f64; n])
}

fn assignment(files: usize, disks: usize) -> Assignment {
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for f in 0..files {
        bins[f % disks].items.push(f);
    }
    Assignment { disks: bins }
}

fn golden_fixture() -> (FileCatalog, Trace, Assignment) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let raw = std::fs::File::open("tests/fixtures/golden_trace.csv").expect("fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    (catalog, trace, Assignment { disks: bins })
}

fn windows_of(r: &SimReport) -> &WindowedReport {
    r.windows.as_ref().expect("windowed run carries the series")
}

#[test]
fn golden_windowed_series_is_bit_identical_across_shard_counts() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_windows(60.0);
    let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
    let w = windows_of(&solo);
    // 600 s horizon in 60 s windows, padded through the t_end instant.
    assert_eq!(w.rows.len(), 11);
    assert_eq!(w.per_disk.len(), 3);
    assert!(!w.faulted);
    for shards in [1usize, 2, 3, 8] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
        assert_eq!(
            windows_of(&solo),
            windows_of(&sharded),
            "windowed series diverged at S={shards}"
        );
        // The legacy aggregates stay bit-identical alongside.
        assert_eq!(solo.responses, sharded.responses, "S={shards}");
        assert_eq!(
            solo.energy.total_joules(),
            sharded.energy.total_joules(),
            "S={shards}"
        );
    }
}

#[test]
fn windows_off_leaves_the_report_field_absent() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    for shards in [1usize, 4] {
        let cfg = base.clone().with_shards(shards);
        let report = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
        assert!(report.windows.is_none(), "windows must default off");
    }
}

#[test]
fn non_stationary_windowed_series_is_shard_invariant() {
    let cat = catalog(64);
    let layout = assignment(64, 16);
    let curves = [
        RateCurve::diurnal(2.0, 1.5, 200.0),
        RateCurve::flash_crowd(1.0, 10.0, 150.0, 20.0, 60.0, 40.0),
    ];
    for curve in curves {
        let base = SimConfig::paper_default()
            .with_metrics(MetricsMode::Histogram)
            .with_windows(30.0);
        let run = |shards: usize| {
            let source = SyntheticSource::non_stationary(&cat, curve.clone(), 600.0, 0xD1A);
            let cfg = base.clone().with_shards(shards);
            Simulator::run_from_source(&cat, source, &layout, &cfg, 16).unwrap()
        };
        let solo = run(1);
        let w = windows_of(&solo);
        assert_eq!(w.per_disk.len(), 16);
        assert!(
            w.rows.iter().map(|r| r.completions).sum::<u64>() > 0,
            "curve {} produced no arrivals",
            curve.label()
        );
        for shards in [2usize, 8] {
            let sharded = run(shards);
            assert_eq!(
                windows_of(&solo),
                windows_of(&sharded),
                "{} diverged at S={shards}",
                curve.label()
            );
        }
    }
}

// Satellite 1: a trace that goes silent mid-run must render its empty
// windows as explicit zeros (the `ResponseStats` empty contract) — never
// NaN — while the surrounding windows still carry their completions.
#[test]
fn dead_interval_windows_render_as_zeros_not_nan() {
    let cat = catalog(8);
    let layout = assignment(8, 4);
    // Bursts in [0, 50] and [250, 300]; windows 1..=3 of a 60 s grid see
    // no completions at all.
    let mut reqs = Vec::new();
    for i in 0..40u32 {
        reqs.push(spindown::workload::Request {
            time: f64::from(i) * 1.25,
            file: spindown::workload::FileId(i % 8),
        });
    }
    for i in 0..40u32 {
        reqs.push(spindown::workload::Request {
            time: 250.0 + f64::from(i) * 1.25,
            file: spindown::workload::FileId(i % 8),
        });
    }
    let trace = Trace::new(reqs, 300.0);
    let cfg = SimConfig::paper_default()
        .with_metrics(MetricsMode::Histogram)
        .with_windows(60.0);
    let report = Simulator::run(&cat, &trace, &layout, &cfg).unwrap();
    let w = windows_of(&report);
    assert_eq!(w.rows.len(), 6);
    assert!(w.rows[0].completions > 0, "first burst lands in window 0");
    let dead: Vec<_> = w.rows.iter().filter(|r| r.completions == 0).collect();
    assert!(!dead.is_empty(), "the silent middle must surface");
    for row in dead {
        assert_eq!(row.mean_s, 0.0, "empty window mean");
        assert_eq!(row.p95_s, 0.0, "empty window p95");
        assert_eq!(row.p99_s, 0.0, "empty window p99");
        assert!(row.energy_j.is_finite() && row.energy_j >= 0.0);
    }
    for row in &w.rows {
        assert!(row.mean_s.is_finite() && row.p95_s.is_finite() && row.p99_s.is_finite());
    }
}

// Satellite 2: per-window availability counters exist exactly when a
// fault plan is active, merge shard-invariantly, and reconcile with the
// run-level availability block.
#[test]
fn faulted_windowed_counters_are_shard_invariant_and_reconcile() {
    let cat = catalog(32);
    let tr = Trace::poisson(&cat, 2.0, 500.0, 0xFA17);
    let layout = assignment(32, 8);
    let mut base = SimConfig::paper_default()
        .with_metrics(MetricsMode::Histogram)
        .with_windows(50.0);
    base.faults = FaultChoice::parse("transient:p=0.02 | wakefail:p=0.1")
        .expect("fault spec parses")
        .plan();
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let w = windows_of(&solo);
    assert!(w.faulted, "an active plan must flag the series");
    let avail = solo.availability.as_ref().expect("faulted run");
    let retried: u64 = w.rows.iter().map(|r| r.retried).sum();
    let failed: u64 = w.rows.iter().map(|r| r.failed).sum();
    let shed: u64 = w.rows.iter().map(|r| r.shed).sum();
    let completed: u64 = w.rows.iter().map(|r| r.completions).sum();
    assert_eq!(retried, avail.retried, "windowed retries vs run total");
    assert_eq!(failed, avail.failed, "windowed failures vs run total");
    assert_eq!(shed, avail.shed, "windowed sheds vs run total");
    assert_eq!(completed, avail.completed, "windowed completions");
    assert!(retried > 0, "2% flake over ~1000 requests must retry");
    for shards in [2usize, 8] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        assert_eq!(
            windows_of(&solo),
            windows_of(&sharded),
            "faulted series diverged at S={shards}"
        );
    }
}

// Conservation: the windowed series partitions the run — completions sum
// to the response count and energy sums to the per-state total.
#[test]
fn windowed_series_sums_to_the_run_totals() {
    let (catalog, trace, layout) = golden_fixture();
    let cfg = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram)
        .with_windows(60.0);
    let report = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
    let w = windows_of(&report);
    let completions: u64 = w.rows.iter().map(|r| r.completions).sum();
    assert_eq!(completions as usize, report.responses.len());
    let energy: f64 = w.rows.iter().map(|r| r.energy_j).sum();
    let total = report.energy.total_joules();
    assert!(
        (energy - total).abs() <= 1e-9 * total,
        "windowed energy {energy} J vs run total {total} J"
    );
}
