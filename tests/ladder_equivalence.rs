//! Ladder-collapse equivalence (tier-1): the N-level power-ladder engine,
//! collapsed to two levels, *is* the legacy two-state engine — bit for
//! bit, across arrival modes and queue disciplines.
//!
//! Two collapses are pinned:
//!
//! 1. **Representation collapse** — an explicit two-level ladder carrying
//!    the same values as a spec's scalar spin-down/up fields replays
//!    bit-identically to the spec with no ladder at all (the derived
//!    default), for randomised specs, traces, all three disciplines and
//!    both arrival modes.
//! 2. **Depth collapse** — a three-level ladder whose policy only ever
//!    descends to level 1 replays bit-identically to a two-state drive
//!    whose single saving level *is* that level (same draws, entry and
//!    exit transitions), so intermediate levels cost exactly nothing
//!    until a policy chooses to pass through them.

use proptest::prelude::*;
use spindown::core::DisciplineChoice;
use spindown::disk::{DiskSpec, DiskSpecBuilder, PowerLadder};
use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{ArrivalMode, SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::SimReport;
use spindown::sim::policy::{DescentStep, PowerPolicy};
use spindown::workload::{FileCatalog, Trace};

const MB: u64 = 1_000_000;

fn catalog(n: usize) -> FileCatalog {
    let sizes: Vec<u64> = (0..n).map(|i| (1 + (i % 96) as u64) * MB).collect();
    let pop = vec![1.0 / n as f64; n];
    FileCatalog::from_parts(sizes, pop)
}

fn assignment(files: usize, disks: usize) -> Assignment {
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for f in 0..files {
        bins[f % disks].items.push(f);
    }
    Assignment { disks: bins }
}

fn assert_reports_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.sim_time_s, b.sim_time_s, "{what}: sim time");
    assert_eq!(
        a.energy.total_joules(),
        b.energy.total_joules(),
        "{what}: energy"
    );
    assert_eq!(
        a.energy.total_seconds(),
        b.energy.total_seconds(),
        "{what}: covered seconds"
    );
    assert_eq!(a.responses, b.responses, "{what}: responses");
    assert_eq!(a.spin_downs, b.spin_downs, "{what}: spin-downs");
    assert_eq!(a.spin_ups, b.spin_ups, "{what}: spin-ups");
    assert_eq!(a.per_disk_served, b.per_disk_served, "{what}: served");
    for (x, y) in a.per_disk_energy.iter().zip(&b.per_disk_energy) {
        assert_eq!(x.total_joules(), y.total_joules(), "{what}: disk energy");
    }
}

fn disciplines() -> [DisciplineChoice; 3] {
    [
        DisciplineChoice::Fifo,
        DisciplineChoice::sjf(),
        DisciplineChoice::ElevatorBatch,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Collapse 1: explicit two-level ladder ≡ derived default, for
    // randomised drive constants, traces, every discipline, both arrival
    // modes.
    #[test]
    fn explicit_two_state_ladder_replays_bit_identically(
        idle_w in 4.0f64..16.0,
        standby_frac in 0.05f64..0.6,
        down_w in 2.0f64..20.0,
        up_w in 10.0f64..30.0,
        down_s in 2.0f64..15.0,
        up_s in 5.0f64..25.0,
        threshold in 5.0f64..90.0,
        rate in 0.05f64..0.5,
        seed in 0u64..1_000,
    ) {
        let spec = DiskSpecBuilder::new()
            .idle_power_w(idle_w)
            .standby_power_w(idle_w * standby_frac)
            .spin_down_power_w(down_w)
            .spin_up_power_w(up_w)
            .spin_down_time_s(down_s)
            .spin_up_time_s(up_s)
            .build()
            .expect("randomised spec valid");
        let cat = catalog(24);
        let tr = Trace::poisson(&cat, rate, 500.0, seed);
        let layout = assignment(24, 3);
        for discipline in disciplines() {
            for arrivals in [ArrivalMode::Streamed, ArrivalMode::Preloaded] {
                let mut derived = SimConfig::paper_default()
                    .with_threshold(ThresholdPolicy::Fixed(threshold))
                    .with_discipline(discipline)
                    .with_arrival_mode(arrivals);
                derived.disk = spec.clone();
                let explicit = derived
                    .clone()
                    .with_ladder(Some(PowerLadder::two_state(&spec)));
                let rd = Simulator::run(&cat, &tr, &layout, &derived).expect("derived runs");
                let re = Simulator::run(&cat, &tr, &layout, &explicit).expect("explicit runs");
                assert_reports_identical(
                    &rd,
                    &re,
                    &format!("{discipline:?}/{arrivals:?}"),
                );
            }
        }
    }
}

/// A policy that descends exactly one level after a fixed rest — the
/// "hold at the intermediate level" schedule of collapse 2.
struct OneLevel {
    rest_s: f64,
}

impl PowerPolicy for OneLevel {
    fn name(&self) -> String {
        "one_level".into()
    }
    fn settled(&mut self, _disk: usize, level: u8, _t: f64) -> Option<DescentStep> {
        (level == 0).then(|| DescentStep::to_level(self.rest_s, 1))
    }
}

/// Collapse 2: a three-level ladder whose policy holds at level 1 is the
/// two-state drive whose saving level is level 1, bit for bit.
#[test]
fn three_level_ladder_held_at_level_one_collapses_to_two_state() {
    let base = DiskSpec::seagate_st3500630as();
    let three = PowerLadder::with_low_rpm(&base);
    let low = three.level(1).clone();
    // The two-state drive whose standby *is* the low-RPM level.
    let two_spec = base
        .clone()
        .to_builder()
        .standby_power_w(low.power_w)
        .spin_down_time_s(low.entry_time_s)
        .spin_down_power_w(low.entry_power_w)
        .spin_up_time_s(low.exit_time_s)
        .spin_up_power_w(low.exit_power_w)
        .build()
        .expect("low-RPM two-state spec valid");
    let three_spec = base.with_ladder(Some(three));

    let cat = catalog(24);
    let layout = assignment(24, 3);
    for (rate, seed) in [(0.05, 11u64), (0.2, 12), (0.5, 13)] {
        let tr = Trace::poisson(&cat, rate, 600.0, seed);
        for discipline in disciplines() {
            let mut cfg3 = SimConfig::paper_default().with_discipline(discipline);
            cfg3.disk = three_spec.clone();
            let mut cfg2 = cfg3.clone();
            cfg2.disk = two_spec.clone();
            let r3 = Simulator::run_with_policy(
                &cat,
                &tr,
                &layout,
                &cfg3,
                3,
                Box::new(OneLevel { rest_s: 20.0 }),
            )
            .expect("three-level run");
            let r2 = Simulator::run_with_policy(
                &cat,
                &tr,
                &layout,
                &cfg2,
                3,
                Box::new(OneLevel { rest_s: 20.0 }),
            )
            .expect("two-state run");
            assert_reports_identical(&r3, &r2, &format!("rate {rate} {discipline:?}"));
        }
    }
}

/// Per-level energy accounting across the sim report: the table-driven
/// iteration covers every state a three-level replay visits and sums
/// exactly to the totals.
#[test]
fn three_level_report_energy_partitions_exactly() {
    let base = DiskSpec::seagate_st3500630as();
    let cfg = {
        let ladder = PowerLadder::with_low_rpm(&base);
        let mut cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(15.0));
        cfg.disk = base.with_ladder(Some(ladder));
        cfg
    };
    let cat = catalog(24);
    let layout = assignment(24, 3);
    let tr = Trace::poisson(&cat, 0.03, 2_000.0, 99);
    let report = Simulator::run(&cat, &tr, &layout, &cfg).expect("simulates");
    // Time partitions across disks exactly.
    let covered = report.energy.total_seconds();
    let expected = report.sim_time_s * report.disks as f64;
    assert!((covered - expected).abs() < 1e-6 * expected);
    // The per-state table covers the deep states and sums bit-exactly.
    let rows = report.energy.per_state();
    let sum_s: f64 = rows.iter().map(|(_, s, _)| s).sum();
    let sum_j: f64 = rows.iter().map(|(_, _, j)| j).sum();
    assert_eq!(sum_s, report.energy.total_seconds());
    assert_eq!(sum_j, report.energy.total_joules());
    use spindown::disk::PowerState;
    assert!(report.fleet_seconds_in(PowerState::Sleeping(2)) > 0.0);
    assert!(report.fleet_seconds_in(PowerState::Descending(1)) > 0.0);
    assert!(report.fleet_seconds_in(PowerState::Descending(2)) > 0.0);
}
