//! Sharded-replay equivalence (tier-1): the merged report of an S-shard
//! parallel replay is **bit-identical** to the single-threaded engine for
//! every shard count — the determinism contract that makes `--shards` a
//! pure wall-clock lever.
//!
//! Pinned here:
//!
//! 1. **Golden-trace bit-identity** — the golden fixture replayed in
//!    histogram mode at S ∈ {1, 2, 3, 8} produces the same total energy,
//!    per-state energy table, response histogram (PartialEq is bit-exact),
//!    quantiles, per-disk vectors, spin counters and peak disk queue as
//!    the unsharded run.
//! 2. **Seeded Poisson bit-identity** — the same across a 16-disk fleet
//!    with a randomised-looking seeded workload, plus the three-level
//!    ladder.
//! 3. **Exact-mode sharding** — quantiles bit-equal (same sample multiset,
//!    nearest-rank), mean within float-summation slack.
//! 4. **Degenerate shapes** — more shards than disks, a single-request
//!    trace, an undersized fleet error, and the one remaining fallback
//!    (preloaded arrivals force one shard; caches and the completion log
//!    compose — see also `cached_shard_equivalence`).
//! 5. **Streaming demux** — `run_from_source` over a CSV reader splits the
//!    stream once and still merges bit-identically.
//!
//! `per_shard_event_peaks` is deliberately *not* compared: each shard
//! reports its own heap peak, so the vector's length and entries differ
//! across shard counts by design (the `peak_event_queue_max` accessor is
//! the comparable per-loop bound).

use std::io::BufReader;

use spindown::core::{Planner, PlannerConfig};
use spindown::disk::{DiskSpec, PowerLadder};
use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{ArrivalMode, CacheConfig, SimConfig, ThresholdPolicy};
use spindown::sim::engine::{SimError, Simulator};
use spindown::sim::metrics::{MetricsMode, SimReport};
use spindown::workload::{CsvTraceSource, FileCatalog, Trace};

const MB: u64 = 1_000_000;
const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];

fn catalog(n: usize) -> FileCatalog {
    let sizes: Vec<u64> = (0..n).map(|i| (1 + (i % 96) as u64) * MB).collect();
    FileCatalog::from_parts(sizes, vec![1.0 / n as f64; n])
}

fn assignment(files: usize, disks: usize) -> Assignment {
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for f in 0..files {
        bins[f % disks].items.push(f);
    }
    Assignment { disks: bins }
}

/// Bit-exact comparison of everything the sharded merge promises to
/// reproduce. `per_shard_event_peaks` is excluded by design (see module
/// doc).
fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.sim_time_s, b.sim_time_s, "{what}: sim time");
    assert_eq!(a.disks, b.disks, "{what}: fleet size");
    assert_eq!(
        a.energy.total_joules(),
        b.energy.total_joules(),
        "{what}: total energy"
    );
    assert_eq!(
        a.energy.total_seconds(),
        b.energy.total_seconds(),
        "{what}: covered seconds"
    );
    // The whole per-state energy table, not just the totals.
    assert_eq!(
        a.energy.per_state(),
        b.energy.per_state(),
        "{what}: per-state"
    );
    assert_eq!(a.responses, b.responses, "{what}: responses");
    for q in QS {
        assert_eq!(
            a.response_quantile(q),
            b.response_quantile(q),
            "{what}: q={q}"
        );
    }
    assert_eq!(a.spin_downs, b.spin_downs, "{what}: spin-downs");
    assert_eq!(a.spin_ups, b.spin_ups, "{what}: spin-ups");
    assert_eq!(
        a.peak_disk_queue, b.peak_disk_queue,
        "{what}: peak disk queue"
    );
    assert_eq!(a.per_disk_served, b.per_disk_served, "{what}: served");
    assert_eq!(
        a.per_disk_responses, b.per_disk_responses,
        "{what}: per-disk responses"
    );
    for (d, (x, y)) in a.per_disk_energy.iter().zip(&b.per_disk_energy).enumerate() {
        assert_eq!(x.per_state(), y.per_state(), "{what}: disk {d} energy");
    }
}

fn golden_fixture() -> (FileCatalog, Trace, Assignment) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let raw = std::fs::File::open("tests/fixtures/golden_trace.csv").expect("fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    (catalog, trace, Assignment { disks: bins })
}

#[test]
fn golden_trace_histogram_reports_are_bit_identical_across_shard_counts() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
    assert_eq!(solo.responses.len(), trace.len());
    for shards in [1usize, 2, 3, 8] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
        assert_reports_bit_identical(&solo, &sharded, &format!("golden S={shards}"));
    }
}

#[test]
fn seeded_poisson_replay_is_bit_identical_across_shard_counts() {
    let cat = catalog(64);
    let tr = Trace::poisson(&cat, 2.0, 600.0, 0xE55C);
    let layout = assignment(64, 16);
    for ladder in [
        None,
        Some(PowerLadder::with_low_rpm(&DiskSpec::seagate_st3500630as())),
    ] {
        let mut base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
        if let Some(ladder) = ladder.clone() {
            base.disk = DiskSpec::seagate_st3500630as().with_ladder(Some(ladder));
        }
        let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
        for shards in [2usize, 3, 8] {
            let cfg = base.clone().with_shards(shards);
            let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
            assert_reports_bit_identical(
                &solo,
                &sharded,
                &format!("poisson ladder={} S={shards}", ladder.is_some()),
            );
        }
    }
}

// Exact mode shards too: the sample multiset is identical, so nearest-rank
// quantiles, count, min and max are bit-equal; only the global mean's
// float-summation order differs (per-disk concatenation vs completion
// order).
#[test]
fn exact_mode_sharding_preserves_the_sample_multiset() {
    let cat = catalog(48);
    let tr = Trace::poisson(&cat, 1.5, 500.0, 31);
    let layout = assignment(48, 12);
    let base = SimConfig::paper_default(); // exact metrics by default
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    for shards in [2usize, 5] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        assert_eq!(solo.responses.len(), sharded.responses.len());
        for q in QS {
            assert_eq!(
                solo.response_quantile(q),
                sharded.response_quantile(q),
                "exact quantile q={q} S={shards}"
            );
        }
        let (a, b) = (solo.responses.mean(), sharded.responses.mean());
        assert!(
            (a - b).abs() <= 1e-12 * a.abs(),
            "exact mean {a} vs {b} (S={shards})"
        );
        assert_eq!(solo.responses.max(), sharded.responses.max());
        assert_eq!(solo.energy.total_joules(), sharded.energy.total_joules());
        assert_eq!(solo.per_disk_served, sharded.per_disk_served);
    }
}

#[test]
fn more_shards_than_disks_clamps_to_the_fleet() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    let solo = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
    // 64 shards over 3 disks: clamps to 3, still bit-identical.
    let cfg = base.clone().with_shards(64);
    let sharded = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
    assert_reports_bit_identical(&solo, &sharded, "shards >> disks");
}

#[test]
fn single_request_trace_shards_bit_identically() {
    let cat = catalog(8);
    let tr = Trace::new(
        vec![spindown::workload::Request {
            time: 12.5,
            file: spindown::workload::FileId(5),
        }],
        400.0,
    );
    let layout = assignment(8, 4);
    let base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let sharded = Simulator::run(&cat, &tr, &layout, &base.clone().with_shards(3)).unwrap();
    assert_reports_bit_identical(&solo, &sharded, "single request");
    assert_eq!(sharded.responses.len(), 1);
}

#[test]
fn undersized_fleet_stays_an_explicit_error_when_sharded() {
    let cat = catalog(8);
    let tr = Trace::poisson(&cat, 0.5, 100.0, 3);
    let layout = assignment(8, 4);
    let cfg = SimConfig::paper_default().with_shards(4);
    let err = Simulator::run_sharded(&cat, &tr, &layout, &cfg, 2, |_| {
        Box::new(spindown::sim::policy::TimeoutPolicy::fixed(30.0))
    })
    .unwrap_err();
    assert!(matches!(
        err,
        SimError::FleetTooSmall {
            required: 4,
            fleet: 2
        }
    ));
}

// The global cache and the completion log now *compose* with sharding:
// the sharded run must reproduce the unsharded one exactly — including
// the merged cache counters and the streamed, canonically ordered
// completion records. (The eviction-free regime here makes the
// partitioned-budget cache byte-equivalent; `cached_shard_equivalence`
// pins the full matrix.)
#[test]
fn cache_and_completion_log_compose_with_sharding() {
    let cat = catalog(24);
    let tr = Trace::poisson(&cat, 1.0, 300.0, 99);
    let layout = assignment(24, 6);
    let variants: [SimConfig; 2] = [
        SimConfig::paper_default()
            .with_metrics(MetricsMode::Histogram)
            .with_cache(CacheConfig::paper_16gb()),
        SimConfig::paper_default()
            .with_metrics(MetricsMode::Histogram)
            .with_completion_log(),
    ];
    for base in variants {
        let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
        let cfg = base.clone().with_shards(4);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        assert_reports_bit_identical(&solo, &sharded, "composed");
        assert_eq!(solo.cache, sharded.cache, "merged cache counters");
        assert_eq!(solo.cache_tiers, sharded.cache_tiers, "per-tier counters");
        assert_eq!(solo.completions, sharded.completions, "completion records");
        match (&solo.completion_log, &sharded.completion_log) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.records, b.records, "log records");
                assert_eq!(a.bytes, b.bytes, "log bytes");
                assert_eq!(a.fnv1a, b.fnv1a, "log digest");
            }
            other => panic!("log summary presence diverged: {other:?}"),
        }
    }
}

// The one remaining fallback: preloaded arrivals still force one shard,
// so the sharded config reproduces the unsharded run exactly — down to
// the single-heap event peak.
#[test]
fn preloaded_arrivals_fall_back_to_one_shard() {
    let cat = catalog(24);
    let tr = Trace::poisson(&cat, 1.0, 300.0, 99);
    let layout = assignment(24, 6);
    let base = SimConfig::paper_default()
        .with_metrics(MetricsMode::Histogram)
        .with_arrival_mode(ArrivalMode::Preloaded);
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let cfg = base.clone().with_shards(4);
    let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
    assert_reports_bit_identical(&solo, &sharded, "preloaded fallback");
    assert_eq!(solo.per_shard_event_peaks, sharded.per_shard_event_peaks);
}

// Per-disk vectors are indexed by *global* disk id whatever the shard
// count, so different shard counts agree disk by disk.
#[test]
fn per_disk_indices_are_stable_under_shard_permutation() {
    let cat = catalog(40);
    let tr = Trace::poisson(&cat, 1.0, 400.0, 55);
    let layout = assignment(40, 10);
    let base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let two = Simulator::run(&cat, &tr, &layout, &base.clone().with_shards(2)).unwrap();
    let three = Simulator::run(&cat, &tr, &layout, &base.clone().with_shards(3)).unwrap();
    assert_eq!(two.per_disk_served, three.per_disk_served);
    assert_eq!(two.per_disk_responses, three.per_disk_responses);
    for d in 0..10 {
        assert_eq!(
            two.per_disk_energy[d].per_state(),
            three.per_disk_energy[d].per_state(),
            "disk {d}"
        );
    }
}

#[test]
fn csv_demux_run_from_source_is_bit_identical_across_shard_counts() {
    let cat = catalog(32);
    let tr = Trace::poisson(&cat, 3.0, 300.0, 0xCAFE);
    let layout = assignment(32, 8);
    let mut csv = Vec::new();
    tr.write_csv(&mut csv).unwrap();
    let base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let run = |shards: usize| {
        let source = CsvTraceSource::from_reader(BufReader::new(csv.as_slice()), 300.0);
        let cfg = base.clone().with_shards(shards);
        // The closure would borrow `cfg` locally; run and return the report.
        Simulator::run_from_source(&cat, source, &layout, &cfg, 8).unwrap()
    };
    let solo = run(1);
    for shards in [2usize, 3, 8] {
        let sharded = run(shards);
        assert_reports_bit_identical(&solo, &sharded, &format!("demux S={shards}"));
    }
}

// The randomised ski-rental policy draws each disk's thresholds from a
// per-disk stream keyed by the *global* disk id, so the per-shard policy
// clones reproduce the unsharded draw sequences exactly and the merged
// report stays bit-identical — the satellite contract of the fault PR.
#[test]
fn ski_rental_policy_shards_bit_identically() {
    use spindown::analysis::online::SkiRentalPolicy;
    let cat = catalog(48);
    let tr = Trace::poisson(&cat, 0.6, 600.0, 0x5EED);
    let layout = assignment(48, 12);
    let base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let spec = DiskSpec::seagate_st3500630as();
    let run = |shards: usize| {
        let cfg = base.clone().with_shards(shards);
        Simulator::run_sharded(&cat, &tr, &layout, &cfg, 12, |_| {
            Box::new(SkiRentalPolicy::for_drive(&spec, 77))
        })
        .unwrap()
    };
    let solo = run(1);
    assert!(solo.spin_downs > 0, "policy must actually spin disks down");
    for shards in [2usize, 3, 8] {
        let sharded = run(shards);
        assert_reports_bit_identical(&solo, &sharded, &format!("ski-rental S={shards}"));
    }
}

// The planner/sweep drivers thread `shards` through `run_sharded`, so a
// planner evaluation is deterministic in the shard count too.
#[test]
fn planner_evaluation_is_shard_count_invariant() {
    let cat = catalog(30);
    let tr = Trace::poisson(&cat, 0.8, 400.0, 21);
    let mut cfg = PlannerConfig::default();
    cfg.sim = cfg.sim.with_metrics(MetricsMode::Histogram);
    let planner = Planner::new(cfg.clone());
    let plan = planner.plan(&cat, 0.8).expect("plans");
    let solo = planner.evaluate(&plan, &cat, &tr).expect("evaluates");
    let mut cfg2 = cfg;
    cfg2.sim = cfg2.sim.with_shards(3);
    let sharded = Planner::new(cfg2)
        .evaluate(&plan, &cat, &tr)
        .expect("evaluates sharded");
    assert_reports_bit_identical(&solo, &sharded, "planner S=3");
}
