//! Golden-trace regression fixture (tier-1): a small deterministic replay
//! whose per-disk `(energy_j, mean_response_s, p95_response_s)` table was
//! captured from the engine *before* the queue-discipline refactor, so the
//! default FIFO path is pinned bit-for-bit (to printed precision) to the
//! pre-discipline engine. Any engine change that perturbs service timing,
//! dispatch order, spin-down scheduling or energy integration fails here
//! with a readable expected-vs-actual diff.
//!
//! ## Updating the fixture (deliberate engine-semantics changes only)
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! git diff tests/fixtures/golden_expected.csv   # review, then commit
//! ```
//!
//! The test rewrites `tests/fixtures/golden_expected.csv` from the current
//! engine and fails once (so an update can never silently pass CI); rerun
//! without the variable to verify. Never update to paper over an
//! unexplained diff — that is the regression this fixture exists to catch.
//!
//! The trace (`tests/fixtures/golden_trace.csv`) covers simultaneous
//! arrivals, queueing behind a large transfer, an arrival mid-spin-down,
//! and a multi-request pile-up during a spin-up — every engine code path
//! short of the cache.

use std::fmt::Write as _;
use std::io::BufReader;
use std::path::Path;

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::workload::{FileCatalog, Trace};

const MB: u64 = 1_000_000;
const TRACE: &str = "tests/fixtures/golden_trace.csv";
const EXPECTED: &str = "tests/fixtures/golden_expected.csv";
/// Values are compared to the printed precision of the fixture.
const TOL: f64 = 1e-6;

/// Three disks, two files each, mixed sizes; fixed 20 s idleness
/// threshold so the trace exercises spin-downs and wake-ups.
fn fixture() -> (FileCatalog, Assignment, SimConfig) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(20.0));
    (catalog, Assignment { disks: bins }, cfg)
}

fn compute_rows() -> Vec<(f64, f64, f64)> {
    let (catalog, assignment, cfg) = fixture();
    let raw = std::fs::File::open(TRACE).expect("golden trace fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("simulates");
    assert_eq!(report.responses.len(), trace.len(), "requests dropped");
    (0..report.disks)
        .map(|d| {
            (
                report.per_disk_energy[d].total_joules(),
                report.per_disk_responses[d].mean(),
                report.per_disk_response_quantile(d, 0.95),
            )
        })
        .collect()
}

fn render(rows: &[(f64, f64, f64)]) -> String {
    let mut s = String::from("disk,energy_j,mean_response_s,p95_response_s\n");
    for (d, (e, mean, p95)) in rows.iter().enumerate() {
        writeln!(s, "{d},{e:.9},{mean:.9},{p95:.9}").unwrap();
    }
    s
}

fn parse_expected(text: &str) -> Vec<(f64, f64, f64)> {
    text.lines()
        .skip(1)
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let f: Vec<f64> = l
                .split(',')
                .skip(1)
                .map(|v| v.parse().expect("numeric fixture cell"))
                .collect();
            (f[0], f[1], f[2])
        })
        .collect()
}

#[test]
fn golden_trace_per_disk_table_matches_the_pre_discipline_engine() {
    let rows = compute_rows();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(Path::new(EXPECTED), render(&rows)).expect("fixture writable");
        panic!(
            "golden fixture rewritten from the current engine; review the diff, \
             commit it, and rerun without UPDATE_GOLDEN"
        );
    }
    let text = std::fs::read_to_string(EXPECTED).expect("golden expected fixture present");
    let expected = parse_expected(&text);
    assert_eq!(expected.len(), rows.len(), "fixture row count");
    let mut diff = String::new();
    for (d, (exp, act)) in expected.iter().zip(&rows).enumerate() {
        for (col, e, a) in [
            ("energy_j", exp.0, act.0),
            ("mean_response_s", exp.1, act.1),
            ("p95_response_s", exp.2, act.2),
        ] {
            if (e - a).abs() > TOL * e.abs().max(1.0) {
                writeln!(diff, "  disk {d} {col}: expected {e:.9}, got {a:.9}").unwrap();
            }
        }
    }
    assert!(
        diff.is_empty(),
        "golden trace diverged from the recorded engine behaviour:\n{diff}\n\
         full expected table:\n{text}\nfull actual table:\n{}\n\
         If this change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test golden_trace",
        render(&rows)
    );
}

/// The same fixture replayed through every `TraceSource` front — the
/// in-memory cursor and the buffered CSV streamer reading the fixture file
/// directly — must land on the identical per-disk table: the source layer
/// is a pure arrival feed, never a semantic change.
#[test]
fn golden_trace_table_is_trace_source_invariant() {
    use spindown::sim::engine::Simulator;
    use spindown::workload::{CsvTraceSource, InMemorySource};
    let (catalog, assignment, cfg) = fixture();
    let text = std::fs::read_to_string(EXPECTED).expect("golden expected fixture present");
    let expected = parse_expected(&text);

    let raw = std::fs::File::open(TRACE).expect("golden trace fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    let in_memory = Simulator::run_from_source(
        &catalog,
        InMemorySource::new(&trace),
        &assignment,
        &cfg,
        assignment.disk_slots(),
    )
    .expect("in-memory source simulates");
    let csv_streamed = Simulator::run_from_source(
        &catalog,
        CsvTraceSource::open(TRACE, Some(600.0)).expect("fixture opens"),
        &assignment,
        &cfg,
        assignment.disk_slots(),
    )
    .expect("csv source simulates");

    for report in [&in_memory, &csv_streamed] {
        assert_eq!(report.responses.len(), trace.len(), "requests dropped");
        for (d, exp) in expected.iter().enumerate() {
            assert!(
                (report.per_disk_energy[d].total_joules() - exp.0).abs() < TOL * exp.0.max(1.0)
            );
            assert!((report.per_disk_responses[d].mean() - exp.1).abs() < TOL);
            assert!((report.per_disk_response_quantile(d, 0.95) - exp.2).abs() < TOL);
        }
    }
}

/// The same fixture with the canonical two-state ladder set *explicitly*
/// on the spec must land on the identical table — the ladder refactor's
/// pin: an explicit `PowerLadder::two_state` is the derived default, not a
/// different engine.
#[test]
fn golden_trace_table_is_ladder_representation_invariant() {
    use spindown::disk::PowerLadder;
    let (catalog, assignment, cfg) = fixture();
    let cfg = cfg
        .clone()
        .with_ladder(Some(PowerLadder::two_state(&cfg.disk)));
    let text = std::fs::read_to_string(EXPECTED).expect("golden expected fixture present");
    let expected = parse_expected(&text);
    let raw = std::fs::File::open(TRACE).expect("golden trace fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("simulates");
    assert_eq!(report.responses.len(), trace.len(), "requests dropped");
    for (d, exp) in expected.iter().enumerate() {
        assert!((report.per_disk_energy[d].total_joules() - exp.0).abs() < TOL * exp.0.max(1.0));
        assert!((report.per_disk_responses[d].mean() - exp.1).abs() < TOL);
        assert!((report.per_disk_response_quantile(d, 0.95) - exp.2).abs() < TOL);
    }
}

/// The same fixture replayed with the preloaded arrival mode and an
/// explicit FIFO discipline must land on the identical table — the
/// `--ignored` CI smoke lane runs this alongside the 1M-request replay.
#[test]
#[ignore = "smoke lane: cargo test -- --ignored"]
fn golden_trace_table_is_arrival_mode_and_discipline_invariant() {
    use spindown::sim::config::ArrivalMode;
    use spindown::sim::discipline::DisciplineChoice;
    let (catalog, assignment, cfg) = fixture();
    let raw = std::fs::File::open(TRACE).expect("golden trace fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    let text = std::fs::read_to_string(EXPECTED).expect("golden expected fixture present");
    let expected = parse_expected(&text);
    let cfg = cfg
        .with_arrival_mode(ArrivalMode::Preloaded)
        .with_discipline(DisciplineChoice::Fifo);
    let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("simulates");
    for (d, exp) in expected.iter().enumerate() {
        assert!((report.per_disk_energy[d].total_joules() - exp.0).abs() < TOL * exp.0.max(1.0));
        assert!((report.per_disk_responses[d].mean() - exp.1).abs() < TOL);
        assert!((report.per_disk_response_quantile(d, 0.95) - exp.2).abs() < TOL);
    }
}
