//! Cross-policy integration invariants: replay a NERSC-style trace under
//! *every* spin-down policy the workspace ships and check the global
//! accounting that must hold regardless of policy — energy–time
//! conservation, complete request accounting, bounded fleet power — plus
//! reproducibility of the randomised ski-rental policy under a fixed seed.

use spindown::core::{Planner, PlannerConfig, PolicyChoice};
use spindown::disk::PowerState;
use spindown::sim::config::ThresholdPolicy;
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::SimReport;
use spindown::workload::nersc::{self, NerscConfig};

/// Every policy family the workspace ships, one representative each.
fn all_policies() -> Vec<PolicyChoice> {
    vec![
        PolicyChoice::Threshold(ThresholdPolicy::Fixed(120.0)),
        PolicyChoice::Threshold(ThresholdPolicy::BreakEven),
        PolicyChoice::Threshold(ThresholdPolicy::Never),
        PolicyChoice::SkiRental { seed: 0xDECAF },
        PolicyChoice::Adaptive { alpha: 0.5 },
        PolicyChoice::EnvelopeDescent,
        PolicyChoice::lower_envelope(),
    ]
}

struct Fixture {
    workload: nersc::NerscWorkload,
    planner: Planner,
    plan: spindown::core::Plan,
    fleet: usize,
}

/// A shrunken NERSC-style replay: same generator and statistics family as
/// §5.1, scaled down for test time.
fn fixture() -> Fixture {
    let cfg = NerscConfig::paper_scaled(40);
    let workload = nersc::generate(&cfg, 20_260_729);
    let planner = Planner::new(PlannerConfig::default());
    let plan = planner
        .plan(&workload.catalog, cfg.arrival_rate())
        .expect("NERSC-style catalog packs");
    let fleet = plan.disk_slots() + 2; // a couple of empty disks, like §5.1
    Fixture {
        workload,
        planner,
        plan,
        fleet,
    }
}

fn run(f: &Fixture, policy: PolicyChoice) -> SimReport {
    Simulator::run_with_policy(
        &f.workload.catalog,
        &f.workload.trace,
        &f.plan.assignment,
        &f.planner.config().sim,
        f.fleet,
        policy.build(&f.planner.config().sim.disk),
    )
    .expect("replay succeeds")
}

#[test]
fn every_policy_conserves_energy_time_and_requests() {
    let f = fixture();
    let spec = &f.planner.config().sim.disk;
    for policy in all_policies() {
        let report = run(&f, policy);
        // Σ per-state seconds = disks × sim_time — no time leaks, ever.
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        assert!(
            (covered - expected).abs() < 1e-6 * expected.max(1.0),
            "{}: covered {covered}s vs {expected}s",
            policy.label()
        );
        // Every request is answered exactly once.
        assert_eq!(
            report.responses.len(),
            f.workload.trace.len(),
            "{} dropped requests",
            policy.label()
        );
        // Fleet power stays within the physical envelope.
        let joules = report.energy.total_joules();
        assert!(
            joules >= spec.standby_power_w * covered - 1e-6,
            "{} below standby floor",
            policy.label()
        );
        assert!(
            joules <= spec.spin_up_power_w * covered + 1e-6,
            "{} above spin-up ceiling",
            policy.label()
        );
        // Transition bookkeeping stays paired.
        assert!(report.spin_ups <= report.spin_downs, "{}", policy.label());
        // Streamed arrivals keep the event heap fleet-bound even on this
        // larger replay.
        assert!(
            report.peak_event_queue_max() <= 4 * report.disks + 4,
            "{}: peak {} for {} disks",
            policy.label(),
            report.peak_event_queue_max(),
            report.disks
        );
    }
}

#[test]
fn every_policy_conserves_on_the_three_state_ladder_too() {
    // The same global accounting must hold when the fleet runs the
    // three-level (idle / low-RPM / standby) ladder: time partitions
    // exactly across the per-level states, every request is answered, and
    // the per-state table sums to the totals with nothing dropped.
    let f = fixture();
    let mut sim = f.planner.config().sim.clone();
    let ladder = spindown::disk::PowerLadder::with_low_rpm(&sim.disk);
    sim = sim.with_ladder(Some(ladder));
    for policy in all_policies() {
        let report = Simulator::run_with_policy(
            &f.workload.catalog,
            &f.workload.trace,
            &f.plan.assignment,
            &sim,
            f.fleet,
            policy.build(&sim.disk),
        )
        .expect("three-state replay succeeds");
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        assert!(
            (covered - expected).abs() < 1e-6 * expected.max(1.0),
            "{}: covered {covered}s vs {expected}s",
            policy.label()
        );
        assert_eq!(report.responses.len(), f.workload.trace.len());
        // Table-driven per-state iteration covers every ladder slot: its
        // sums equal the totals bit-for-bit (the satellite contract — a
        // ladder adding levels can never silently drop energy).
        let rows = report.energy.per_state();
        let sum_s: f64 = rows.iter().map(|(_, s, _)| s).sum();
        let sum_j: f64 = rows.iter().map(|(_, _, j)| j).sum();
        assert_eq!(sum_s, report.energy.total_seconds(), "{}", policy.label());
        assert_eq!(sum_j, report.energy.total_joules(), "{}", policy.label());
    }
    // The envelope policies actually use the intermediate level on this
    // sparse replay (it pays off before standby does).
    let report = Simulator::run_with_policy(
        &f.workload.catalog,
        &f.workload.trace,
        &f.plan.assignment,
        &sim,
        f.fleet,
        PolicyChoice::EnvelopeDescent.build(&sim.disk),
    )
    .expect("three-state replay succeeds");
    assert!(report.fleet_seconds_in(PowerState::Sleeping(1)) > 0.0);
    assert!(report.fleet_seconds_in(PowerState::Sleeping(2)) > 0.0);
}

#[test]
fn never_policy_is_the_sleepless_baseline() {
    let f = fixture();
    let report = run(&f, PolicyChoice::never());
    assert_eq!(report.spin_downs, 0);
    assert_eq!(report.spin_ups, 0);
    assert_eq!(report.fleet_seconds_in(PowerState::Standby), 0.0);
}

#[test]
fn sleeping_policies_save_energy_on_the_sparse_nersc_replay() {
    // NERSC arrivals are sparse (≈0.045/s over ~90 disks): long idle gaps,
    // so every policy that sleeps must beat the never-spin-down baseline.
    let f = fixture();
    let e_never = run(&f, PolicyChoice::never()).energy.total_joules();
    for policy in [
        PolicyChoice::break_even(),
        PolicyChoice::SkiRental { seed: 0xDECAF },
        PolicyChoice::Adaptive { alpha: 0.5 },
    ] {
        let e = run(&f, policy).energy.total_joules();
        assert!(
            e < 0.8 * e_never,
            "{} saved only {:.1}%",
            policy.label(),
            (1.0 - e / e_never) * 100.0
        );
    }
}

#[test]
fn randomised_ski_rental_replays_bit_identically_under_a_fixed_seed() {
    let f = fixture();
    let choice = PolicyChoice::SkiRental { seed: 77 };
    let a = run(&f, choice);
    let b = run(&f, choice);
    assert_eq!(a.energy.total_joules(), b.energy.total_joules());
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.spin_downs, b.spin_downs);
    assert_eq!(a.spin_ups, b.spin_ups);
    assert_eq!(a.per_disk_served, b.per_disk_served);
    // A different seed draws different thresholds somewhere in the replay.
    let c = run(&f, PolicyChoice::SkiRental { seed: 78 });
    assert!(
        c.energy.total_joules() != a.energy.total_joules()
            || c.spin_downs != a.spin_downs
            || c.responses != a.responses,
        "distinct seeds produced identical replays"
    );
}
