//! Cache-policy property tests (tier-1): the [`CachePolicy`] contract that
//! every replacement policy — LRU, segmented LRU, LFU — must honour on
//! *arbitrary* access sequences, not just the fixtures:
//!
//! - resident bytes never exceed the byte budget, **at every step**, and
//!   always equal the sizes of exactly the files `contains` reports;
//! - `hits + misses` equals the number of `access` calls (oversize
//!   rejections are misses, never a third category);
//! - LRU agrees access-by-access with a naive `Vec` reference model;
//! - segmented LRU with a 0% protected split *is* LRU, bit for bit;
//! - a strictly larger LRU cache never hits less on the same sequence
//!   (the stack-inclusion property — exact for uniform file sizes), and
//!   on the paper's own mixed-size Zipf workload every policy's hit
//!   ratio grows monotonically across the 16 → 128 GB ladder the
//!   shootout's cache bracket sweeps.
//!
//! File sizes are a per-id table (the engine never changes a file's size
//! between accesses, and `LruCache` debug-asserts exactly that), so the
//! generators draw a size vector once and an id sequence separately.

use proptest::prelude::*;
use spindown::sim::cache::{CachePolicy, LfuCache, LruCache, SegmentedLru};
use spindown::workload::catalog::FileId;
use spindown::workload::{FileCatalog, Trace};

/// All three policies at the same byte budget (SLRU at the default-ish
/// 20% protected split so its two segments are both exercised).
fn all_policies(capacity: u64) -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(LruCache::new(capacity)),
        Box::new(SegmentedLru::new(capacity, 20)),
        Box::new(LfuCache::new(capacity)),
    ]
}

/// Replay `ids` against `cache` using the `sizes` table; returns the
/// per-access hit flags.
fn replay(cache: &mut dyn CachePolicy, ids: &[u32], sizes: &[u64]) -> Vec<bool> {
    ids.iter()
        .map(|&id| cache.access(FileId(id), sizes[id as usize]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariant 1: the byte budget holds at *every* step, and the stats'
    // resident counter always equals the bytes of the `contains` set.
    #[test]
    fn resident_bytes_never_exceed_the_budget(
        capacity in 0u64..150,
        sizes in prop::collection::vec(1u64..60, 20..21),
        ids in prop::collection::vec(0u32..20, 1..300),
    ) {
        for cache in &mut all_policies(capacity) {
            for &id in &ids {
                cache.access(FileId(id), sizes[id as usize]);
                let stats = cache.stats();
                prop_assert!(
                    stats.resident_bytes <= capacity,
                    "resident {} exceeds budget {capacity}",
                    stats.resident_bytes
                );
                let contained: u64 = (0..20u32)
                    .filter(|&i| cache.contains(FileId(i)))
                    .map(|i| sizes[i as usize])
                    .sum();
                prop_assert_eq!(stats.resident_bytes, contained);
                prop_assert_eq!(
                    cache.len(),
                    (0..20u32).filter(|&i| cache.contains(FileId(i))).count()
                );
            }
        }
    }

    // Invariant 2: every access is exactly one hit or one miss, hits are
    // the accesses that returned `true`, and oversize rejections are a
    // subset of the misses (never additional accesses).
    #[test]
    fn hits_and_misses_partition_the_accesses(
        capacity in 0u64..120,
        sizes in prop::collection::vec(1u64..200, 16..17),
        ids in prop::collection::vec(0u32..16, 0..250),
    ) {
        for cache in &mut all_policies(capacity) {
            let hits = replay(cache.as_mut(), &ids, &sizes);
            let stats = cache.stats();
            prop_assert_eq!(stats.hits + stats.misses, ids.len() as u64);
            prop_assert_eq!(stats.hits, hits.iter().filter(|&&h| h).count() as u64);
            prop_assert!(stats.oversize_rejections <= stats.misses);
            // A file wider than the whole budget can never be resident,
            // so every access to one must have missed.
            let oversize_accesses = ids
                .iter()
                .filter(|&&id| sizes[id as usize] > capacity)
                .count() as u64;
            prop_assert!(stats.oversize_rejections >= oversize_accesses);
        }
    }

    // Invariant 3: LRU is observationally equal to the obvious reference
    // — a recency-ordered Vec (front = least recent) — on every sequence.
    #[test]
    fn lru_matches_the_naive_vec_reference(
        capacity in 1u64..100,
        sizes in prop::collection::vec(1u64..120, 24..25),
        ids in prop::collection::vec(0u32..24, 0..400),
    ) {
        let mut ours = LruCache::new(capacity);
        let mut reference: Vec<(u32, u64)> = Vec::new();
        for &id in &ids {
            let size = sizes[id as usize];
            let got = ours.access(FileId(id), size);
            let expected = if let Some(p) = reference.iter().position(|&(i, _)| i == id) {
                let e = reference.remove(p);
                reference.push(e);
                true
            } else if size > capacity {
                false
            } else {
                let mut resident: u64 = reference.iter().map(|&(_, s)| s).sum();
                while resident + size > capacity {
                    let (_, s) = reference.remove(0);
                    resident -= s;
                }
                reference.push((id, size));
                false
            };
            prop_assert_eq!(got, expected, "divergence on file {}", id);
            prop_assert_eq!(
                ours.stats().resident_bytes,
                reference.iter().map(|&(_, s)| s).sum::<u64>()
            );
        }
    }

    // Invariant 4: SLRU degenerates to exact LRU at a 0% protected split —
    // same hit pattern, same stats, same residents, on every sequence.
    #[test]
    fn slru_with_zero_protected_split_is_exactly_lru(
        capacity in 0u64..120,
        sizes in prop::collection::vec(1u64..150, 20..21),
        ids in prop::collection::vec(0u32..20, 0..300),
    ) {
        let mut slru = SegmentedLru::new(capacity, 0);
        let mut lru = LruCache::new(capacity);
        for &id in &ids {
            let size = sizes[id as usize];
            prop_assert_eq!(
                CachePolicy::access(&mut slru, FileId(id), size),
                lru.access(FileId(id), size),
                "divergence on file {}",
                id
            );
        }
        prop_assert_eq!(CachePolicy::stats(&slru), lru.stats());
        for id in 0..20u32 {
            prop_assert_eq!(
                CachePolicy::contains(&slru, FileId(id)),
                lru.contains(FileId(id))
            );
        }
    }

    // Invariant 5a: with uniform file sizes LRU has the stack-inclusion
    // property — a strictly larger cache's resident set always contains
    // the smaller's — so its hit count is monotone in capacity, exactly.
    #[test]
    fn lru_hit_count_is_monotone_in_capacity_for_uniform_sizes(
        small_files in 1u64..12,
        extra_files in 1u64..12,
        ids in prop::collection::vec(0u32..30, 0..400),
    ) {
        const SIZE: u64 = 10;
        let sizes = vec![SIZE; 30];
        let mut small = LruCache::new(small_files * SIZE);
        let mut big = LruCache::new((small_files + extra_files) * SIZE);
        let small_hits = replay(&mut small, &ids, &sizes);
        let big_hits = replay(&mut big, &ids, &sizes);
        // Inclusion is per-access, not just aggregate: anything the small
        // cache hits, the big cache hits too.
        for (i, (&s, &b)) in small_hits.iter().zip(&big_hits).enumerate() {
            prop_assert!(!s || b, "access {} hit at {} files but missed at {}",
                i, small_files, small_files + extra_files);
        }
        prop_assert!(big.stats().hits >= small.stats().hits);
    }
}

// Invariant 5b: on the paper's own workload — Table 1 catalog (Zipf
// popularity, sizes inversely coupled to rank) replayed from a seeded
// Poisson trace — every policy's hit ratio grows monotonically across the
// 4 → 16 → 128 GB capacity ladder the shootout's cache bracket sweeps.
// Mixed sizes void the exact inclusion argument, so this is a seeded
// deterministic check rather than a universal property.
#[test]
fn hit_ratio_grows_with_capacity_on_the_zipf_workload() {
    const GB: u64 = 1 << 30;
    let catalog = FileCatalog::paper_table1(2_000, 0);
    let sizes: Vec<u64> = catalog.iter().map(|f| f.size_bytes).collect();
    let trace = Trace::poisson(&catalog, 4.0, 2_000.0, 0x5EED_CAFE);
    let ids: Vec<u32> = trace.requests().iter().map(|r| r.file.0).collect();
    assert!(ids.len() > 1_000, "trace too short to be meaningful");
    for policy_idx in 0..3 {
        let mut last_ratio = -1.0;
        for capacity_gb in [4u64, 16, 128] {
            let cache = &mut all_policies(capacity_gb * GB)[policy_idx];
            replay(cache.as_mut(), &ids, &sizes);
            let ratio = cache.stats().hit_ratio();
            assert!(
                ratio > last_ratio,
                "policy {policy_idx}: hit ratio {ratio} at {capacity_gb} GB \
                 not above {last_ratio} at the previous level"
            );
            last_ratio = ratio;
        }
        assert!(
            last_ratio > 0.05,
            "policy {policy_idx}: the 128 GB front should absorb real reuse, \
             got hit ratio {last_ratio}"
        );
    }
}
