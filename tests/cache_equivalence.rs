//! Cache-path equivalence fixture (tier-1): the golden trace replayed
//! through a deliberately tight cache (150 MB — small enough that the
//! fixture exercises hits, misses, multi-eviction admissions *and* an
//! oversize rejection of the 300 MB file) was captured from the engine
//! *before* the `CachePolicy` trait / `CacheHierarchy` refactor. The
//! legacy `SimConfig::with_cache` path and the single-tier LRU hierarchy
//! configured through `SimConfig::with_cache_hierarchy` must both land on
//! this table bit-for-bit (to printed precision): the refactor moved the
//! LRU behind a trait object and the dispatch behind a tier walk, and
//! neither move is allowed to be a semantic change.
//!
//! ## Updating the fixture (deliberate engine-semantics changes only)
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test cache_equivalence
//! git diff tests/fixtures/golden_cache_expected.csv   # review, then commit
//! ```
//!
//! Like `golden_trace.rs`, the update run rewrites the fixture from the
//! current engine and fails once so it can never silently pass CI.
//!
//! Fixture history: regenerated once when global-cache hits started
//! recording into the per-disk response stats of the disk holding the
//! file (the attribution that makes per-disk tables shard-invariant under
//! the sharded global cache) — `disk2_mean_response_s` dropped because
//! disk 2's cache hits now count toward its own mean.

use std::fmt::Write as _;
use std::io::BufReader;
use std::path::Path;

use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{CacheConfig, SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::sim::hierarchy::{
    CacheHierarchyConfig, CachePolicyChoice, CacheScope, CacheTierConfig,
};
use spindown::sim::metrics::{MetricsMode, SimReport};
use spindown::workload::{FileCatalog, Trace};

const MB: u64 = 1_000_000;
const TRACE: &str = "tests/fixtures/golden_trace.csv";
const EXPECTED: &str = "tests/fixtures/golden_cache_expected.csv";
/// Values are compared to the printed precision of the fixture.
const TOL: f64 = 1e-6;

/// 150 MB holds a working set but not the whole catalog, and rejects the
/// 300 MB file outright; 2 GB/s keeps hit latencies distinct from every
/// disk-service time in the trace.
fn tight_cache() -> CacheConfig {
    CacheConfig {
        capacity_bytes: 150 * MB,
        bandwidth_bps: 2.0e9,
    }
}

/// The golden fixture of `golden_trace.rs`, with the tight cache in front.
fn fixture() -> (FileCatalog, Assignment, SimConfig) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(20.0));
    (catalog, Assignment { disks: bins }, cfg)
}

fn golden_trace() -> Trace {
    let raw = std::fs::File::open(TRACE).expect("golden trace fixture present");
    Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses")
}

/// Everything the cache path can perturb, flattened to one CSV row set:
/// the global response distribution, total + per-disk energy, and the
/// cache counters themselves.
fn render(report: &SimReport) -> String {
    let mut s = String::from("metric,value\n");
    writeln!(s, "responses,{}", report.responses.len()).unwrap();
    writeln!(s, "mean_response_s,{:.9}", report.responses.mean()).unwrap();
    writeln!(s, "p95_response_s,{:.9}", report.response_p95()).unwrap();
    writeln!(s, "p99_response_s,{:.9}", report.response_p99()).unwrap();
    writeln!(s, "energy_j,{:.9}", report.energy.total_joules()).unwrap();
    let cache = report.cache.expect("cache stats present");
    writeln!(s, "cache_hits,{}", cache.hits).unwrap();
    writeln!(s, "cache_misses,{}", cache.misses).unwrap();
    writeln!(s, "cache_resident_bytes,{}", cache.resident_bytes).unwrap();
    writeln!(s, "cache_evicted_bytes,{}", cache.evicted_bytes).unwrap();
    writeln!(s, "cache_oversize_rejections,{}", cache.oversize_rejections).unwrap();
    writeln!(s, "cache_hit_ratio,{:.9}", cache.hit_ratio()).unwrap();
    for d in 0..report.disks {
        writeln!(
            s,
            "disk{d}_energy_j,{:.9}",
            report.per_disk_energy[d].total_joules()
        )
        .unwrap();
        writeln!(
            s,
            "disk{d}_mean_response_s,{:.9}",
            report.per_disk_responses[d].mean()
        )
        .unwrap();
        writeln!(
            s,
            "disk{d}_p95_response_s,{:.9}",
            report.per_disk_response_quantile(d, 0.95)
        )
        .unwrap();
    }
    s
}

fn assert_matches_fixture(report: &SimReport, context: &str) {
    let text = std::fs::read_to_string(EXPECTED).expect("golden cache fixture present");
    let actual = render(report);
    let mut diff = String::new();
    for (exp_line, act_line) in text.lines().skip(1).zip(actual.lines().skip(1)) {
        let (ek, ev) = exp_line.split_once(',').expect("fixture row");
        let (ak, av) = act_line.split_once(',').expect("actual row");
        assert_eq!(ek, ak, "fixture metric order");
        let (e, a): (f64, f64) = (ev.parse().unwrap(), av.parse().unwrap());
        if (e - a).abs() > TOL * e.abs().max(1.0) {
            writeln!(diff, "  {ek}: expected {ev}, got {av}").unwrap();
        }
    }
    assert_eq!(
        text.lines().count(),
        actual.lines().count(),
        "fixture row count ({context})"
    );
    assert!(
        diff.is_empty(),
        "{context} diverged from the recorded cache-path behaviour:\n{diff}\n\
         If this change is intentional, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test cache_equivalence"
    );
}

/// The legacy flat-LRU configuration is the fixture's source of truth:
/// captured before the trait refactor, pinned ever since.
#[test]
fn legacy_lru_path_matches_the_pre_trait_fixture() {
    let (catalog, assignment, cfg) = fixture();
    let cfg = cfg.with_cache(tight_cache());
    let report = Simulator::run(&catalog, &golden_trace(), &assignment, &cfg).expect("simulates");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(Path::new(EXPECTED), render(&report)).expect("fixture writable");
        panic!(
            "golden cache fixture rewritten from the current engine; review the diff, \
             commit it, and rerun without UPDATE_GOLDEN"
        );
    }
    assert_matches_fixture(&report, "legacy with_cache path");
    // The legacy flat cache also reports itself as a one-tier hierarchy.
    assert_eq!(report.cache_tiers, Some(vec![report.cache.unwrap()]));
}

/// The tentpole pin: a single-tier LRU `CacheHierarchy` configured through
/// `with_cache_hierarchy` is the *same cache* as the legacy flat LRU — the
/// trait object, the tier walk and the new recording plumbing change no
/// observable number on the fixture.
#[test]
fn single_tier_lru_hierarchy_matches_the_legacy_fixture() {
    let (catalog, assignment, cfg) = fixture();
    let cfg = cfg.with_cache_hierarchy(Some(CacheHierarchyConfig::from_legacy(&tight_cache())));
    let report = Simulator::run(&catalog, &golden_trace(), &assignment, &cfg).expect("simulates");
    assert_matches_fixture(&report, "single-tier hierarchy path");
    assert_eq!(report.cache_tiers, Some(vec![report.cache.unwrap()]));
}

/// Setting both cache representations is rejected, not silently resolved.
#[test]
fn conflicting_cache_configs_are_rejected() {
    let (catalog, assignment, cfg) = fixture();
    let cfg = cfg
        .with_cache(tight_cache())
        .with_cache_hierarchy(Some(CacheHierarchyConfig::from_legacy(&tight_cache())));
    let err = Simulator::run(&catalog, &golden_trace(), &assignment, &cfg)
        .expect_err("ambiguous cache config must fail");
    assert!(
        err.to_string().contains("cache"),
        "typed cache error: {err}"
    );
}

/// A hit must not touch the disk: with every re-access served from cache,
/// the disk's idle clock keeps running, it spins down on schedule and
/// never wakes again — the whole point of a cache tier in the power model.
#[test]
fn cache_hits_leave_the_idle_clock_running() {
    let catalog = FileCatalog::from_parts(vec![72 * MB], vec![1.0]);
    let assignment = Assignment {
        disks: vec![DiskBin {
            items: vec![0],
            total_s: 0.0,
            total_l: 0.0,
        }],
    };
    let requests = [0.0, 30.0, 100.0, 300.0]
        .iter()
        .map(|&time| spindown::workload::trace::Request {
            time,
            file: spindown::workload::FileId(0),
        })
        .collect();
    let trace = Trace::new(requests, 600.0);
    let cfg = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_cache_hierarchy(Some(CacheHierarchyConfig::single(CacheTierConfig::dram(
            100 * MB,
            CachePolicyChoice::Lru,
        ))));
    let report = Simulator::run(&catalog, &trace, &assignment, &cfg).expect("simulates");
    let stats = report.cache.unwrap();
    assert_eq!(stats.misses, 1, "only the cold access reaches the disk");
    assert_eq!(stats.hits, 3);
    assert_eq!(report.responses.len(), 4, "every request answered");
    assert_eq!(report.spin_downs, 1, "idle clock ran out exactly once");
    assert_eq!(report.spin_ups, 0, "no hit ever woke the disk");
}

/// A second, slower tier catches what the first evicts: the hierarchy's
/// hit count exceeds the flat cache's at equal first-tier size, and the
/// per-tier stats partition the aggregate.
#[test]
fn two_tier_hierarchy_strictly_beats_its_first_tier_alone() {
    let (catalog, assignment, cfg) = fixture();
    let two_tier = CacheHierarchyConfig::new(vec![
        CacheTierConfig::dram(150 * MB, CachePolicyChoice::Lru),
        CacheTierConfig::ssd(400 * MB, CachePolicyChoice::Lru),
    ]);
    let report = Simulator::run(
        &catalog,
        &golden_trace(),
        &assignment,
        &cfg.clone().with_cache_hierarchy(Some(two_tier)),
    )
    .expect("simulates");
    let flat = Simulator::run(
        &catalog,
        &golden_trace(),
        &assignment,
        &cfg.with_cache(tight_cache()),
    )
    .expect("simulates");
    let agg = report.cache.unwrap();
    let tiers = report.cache_tiers.unwrap();
    assert_eq!(tiers.len(), 2);
    assert_eq!(agg.hits, tiers[0].hits + tiers[1].hits);
    assert_eq!(
        agg.misses, tiers[1].misses,
        "aggregate misses = deepest tier's"
    );
    assert!(
        agg.hits > flat.cache.unwrap().hits,
        "the SSD tier must convert some first-tier evictions into hits \
         ({} vs {})",
        agg.hits,
        flat.cache.unwrap().hits
    );
}

/// The lifted sharding fallback: a per-disk-scope hierarchy composes with
/// `--shards` and the merged report is bit-identical at S ∈ {1, 2, 4} —
/// histogram metrics, energy totals, per-disk tables and every cache
/// counter.
#[test]
fn per_disk_scope_is_bit_identical_across_shard_counts() {
    let (catalog, assignment, cfg) = fixture();
    // 450 MB split across the 3-disk fleet = the tight 150 MB per slice.
    let hierarchy = CacheHierarchyConfig::new(vec![
        CacheTierConfig::dram(450 * MB, CachePolicyChoice::Lru),
        CacheTierConfig::ssd(900 * MB, CachePolicyChoice::slru()),
    ])
    .with_scope(CacheScope::PerDisk);
    let cfg = cfg
        .with_metrics(MetricsMode::Histogram)
        .with_cache_hierarchy(Some(hierarchy));
    let run = |shards: usize| {
        Simulator::run(
            &catalog,
            &golden_trace(),
            &assignment,
            &cfg.clone().with_shards(shards),
        )
        .expect("simulates")
    };
    let solo = run(1);
    assert!(
        solo.cache.unwrap().hits > 0,
        "fixture must exercise per-disk hits"
    );
    for shards in [2usize, 4] {
        let sharded = run(shards);
        assert_eq!(solo.cache, sharded.cache, "{shards} shards: cache stats");
        assert_eq!(
            solo.cache_tiers, sharded.cache_tiers,
            "{shards} shards: per-tier stats"
        );
        assert_eq!(solo.responses.len(), sharded.responses.len());
        assert_eq!(solo.responses.mean(), sharded.responses.mean());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                solo.response_quantile(q),
                sharded.response_quantile(q),
                "{shards} shards: q{q}"
            );
        }
        assert_eq!(
            solo.energy.total_joules(),
            sharded.energy.total_joules(),
            "{shards} shards: fleet energy"
        );
        assert_eq!(solo.spin_downs, sharded.spin_downs);
        assert_eq!(solo.spin_ups, sharded.spin_ups);
        for d in 0..solo.disks {
            assert_eq!(
                solo.per_disk_energy[d].total_joules(),
                sharded.per_disk_energy[d].total_joules(),
                "{shards} shards: disk {d} energy"
            );
            assert_eq!(
                solo.per_disk_responses[d], sharded.per_disk_responses[d],
                "{shards} shards: disk {d} responses"
            );
        }
    }
}
