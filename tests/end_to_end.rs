//! Cross-crate integration tests: miniature versions of the paper's
//! experiments, asserting the qualitative *shapes* the paper reports (who
//! wins, monotonicity directions, crossovers) rather than absolute numbers.

use spindown::core::{compare, Planner, PlannerConfig};
use spindown::disk::{break_even_threshold, DiskSpec};
use spindown::packing::Allocator;
use spindown::sim::config::{CacheConfig, SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::workload::{FileCatalog, Trace};

fn paper_catalog() -> FileCatalog {
    FileCatalog::paper_table1(40_000, 0)
}

/// Figure 2's core claim: Pack_Disks saves substantial power against
/// random placement at moderate rates, and the saving decays with R.
#[test]
fn fig2_shape_saving_decays_with_rate() {
    let catalog = paper_catalog();
    let planner = Planner::new(PlannerConfig::default());
    let mut savings = Vec::new();
    for (i, rate) in [2.0, 6.0, 12.0].into_iter().enumerate() {
        let pack = planner.plan(&catalog, rate).unwrap();
        let mut rnd_cfg = PlannerConfig::default();
        rnd_cfg.allocator = Allocator::RandomFixed {
            disks: 100,
            seed: 100 + i as u64,
        };
        let random = Planner::new(rnd_cfg).plan(&catalog, rate).unwrap();
        let trace = Trace::poisson(&catalog, rate, 1_000.0, 50 + i as u64);
        let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(100)).unwrap();
        savings.push(cmp.power_saving());
    }
    assert!(savings[0] > 0.4, "saving at R=2 too small: {savings:?}");
    assert!(
        savings[2] < savings[0],
        "saving should decay with R: {savings:?}"
    );
}

/// Figure 4's trade-off: across L, power falls while response rises.
#[test]
fn fig4_shape_power_response_tradeoff() {
    let catalog = paper_catalog();
    let rate = 6.0;
    let trace = Trace::poisson(&catalog, rate, 1_000.0, 77);
    let mut results = Vec::new();
    for load in [0.4, 0.9] {
        let mut cfg = PlannerConfig::default();
        cfg.load_constraint = load;
        let planner = Planner::new(cfg);
        let plan = planner.plan(&catalog, rate).unwrap();
        let report = planner
            .evaluate_with_fleet(&plan, &catalog, &trace, 100)
            .unwrap();
        results.push((
            plan.disks_used(),
            report.mean_power_w(),
            report.responses.mean(),
        ));
    }
    let (d_tight, p_tight, r_tight) = results[0];
    let (d_loose, p_loose, r_loose) = results[1];
    assert!(d_loose < d_tight, "L=0.9 should use fewer disks");
    assert!(p_loose < p_tight, "L=0.9 should draw less power");
    assert!(r_loose > r_tight, "L=0.9 should respond slower");
}

/// The break-even threshold is (near-)optimal among fixed thresholds for
/// the fleet's energy — the §4 threshold choice.
#[test]
fn break_even_threshold_minimises_energy() {
    let catalog = paper_catalog();
    let rate = 2.0;
    let planner = Planner::new(PlannerConfig::default());
    let plan = planner.plan(&catalog, rate).unwrap();
    let trace = Trace::poisson(&catalog, rate, 2_000.0, 5);
    let be = break_even_threshold(&DiskSpec::seagate_st3500630as());
    let energy_at = |threshold: ThresholdPolicy| {
        let sim = SimConfig::paper_default().with_threshold(threshold);
        Simulator::run_with_fleet(&catalog, &trace, &plan.assignment, &sim, 100)
            .unwrap()
            .energy
            .total_joules()
    };
    let at_be = energy_at(ThresholdPolicy::Fixed(be));
    let at_never = energy_at(ThresholdPolicy::Never);
    let at_long = energy_at(ThresholdPolicy::Fixed(1_800.0));
    assert!(at_be < at_never, "break-even must beat never spinning down");
    assert!(
        at_be < at_long,
        "break-even must beat a 30-minute threshold"
    );
}

/// Figure 5's headline on the synthetic NERSC trace: Pack_Disks' saving is
/// high and nearly flat in the threshold while random's decays; at the
/// 2-hour threshold Pack_Disks clearly wins.
#[test]
fn fig5_shape_pack_flat_random_decays() {
    use spindown::workload::nersc::{self, NerscConfig};
    let cfg = NerscConfig::paper_scaled(20);
    let workload = nersc::generate(&cfg, 11);
    let rate = cfg.arrival_rate();
    let planner = Planner::new(PlannerConfig::default());
    let pack = planner.plan(&workload.catalog, rate).unwrap();
    let fleet = pack.disk_slots() + 2;
    let mut rnd_cfg = PlannerConfig::default();
    rnd_cfg.allocator = Allocator::RandomFixed {
        disks: fleet as u32,
        seed: 3,
    };
    let random = Planner::new(rnd_cfg).plan(&workload.catalog, rate).unwrap();

    let saving = |assignment: &spindown::packing::Assignment, hours: f64| {
        let sim = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(hours * 3600.0));
        let never = SimConfig::paper_default().with_threshold(ThresholdPolicy::Never);
        let e =
            Simulator::run_with_fleet(&workload.catalog, &workload.trace, assignment, &sim, fleet)
                .unwrap()
                .energy
                .total_joules();
        let e0 = Simulator::run_with_fleet(
            &workload.catalog,
            &workload.trace,
            assignment,
            &never,
            fleet,
        )
        .unwrap()
        .energy
        .total_joules();
        1.0 - e / e0
    };

    let pack_short = saving(&pack.assignment, 0.1);
    let pack_long = saving(&pack.assignment, 2.0);
    let rnd_short = saving(&random.assignment, 0.1);
    let rnd_long = saving(&random.assignment, 2.0);
    // Pack_Disks stays high and roughly flat.
    assert!(pack_long > 0.5, "pack saving at 2h: {pack_long}");
    assert!(
        (pack_short - pack_long).abs() < 0.25,
        "pack saving should be nearly flat: {pack_short} vs {pack_long}"
    );
    // Random decays as the threshold grows.
    assert!(
        rnd_long < rnd_short,
        "random saving should decay: {rnd_short} → {rnd_long}"
    );
    // At the long threshold, Pack_Disks wins clearly.
    assert!(pack_long > rnd_long + 0.1);
}

/// §5.1's cache observation: a 16 GB LRU helps little on the NERSC-like
/// mix (hit ratio in the single-digit percents).
#[test]
fn cache_hit_ratio_is_low_on_nersc_mix() {
    use spindown::workload::nersc::{self, NerscConfig};
    let cfg = NerscConfig::paper_scaled(20);
    let workload = nersc::generate(&cfg, 13);
    let planner = Planner::new(PlannerConfig::default());
    let plan = planner.plan(&workload.catalog, cfg.arrival_rate()).unwrap();
    let sim = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(1800.0))
        .with_cache(CacheConfig::paper_16gb());
    let report =
        Simulator::run(&workload.catalog, &workload.trace, &plan.assignment, &sim).unwrap();
    let hit = report.cache.unwrap().hit_ratio();
    assert!(
        hit > 0.0 && hit < 0.25,
        "expected a low-but-nonzero hit ratio (paper: 5.6%), got {hit}"
    );
}

/// Pack_Disks_v(4) must not cost much packing efficiency relative to
/// Pack_Disks while spreading batches (the §5.1 v-sweep conclusion).
#[test]
fn pack_disks_4_is_cheap_insurance() {
    let catalog = paper_catalog();
    let rate = 6.0;
    let base = Planner::new(PlannerConfig::default())
        .plan(&catalog, rate)
        .unwrap();
    let mut cfg4 = PlannerConfig::default();
    cfg4.allocator = Allocator::PackDisksV(4);
    let grouped = Planner::new(cfg4).plan(&catalog, rate).unwrap();
    assert!(
        grouped.disks_used() <= base.disks_used() + 8,
        "v=4 ballooned the disk count: {} vs {}",
        grouped.disks_used(),
        base.disks_used()
    );
    grouped.assignment.verify(&grouped.instance).unwrap();
}

/// Whole-pipeline determinism: identical seeds ⇒ identical reports.
#[test]
fn pipeline_is_deterministic() {
    let catalog = FileCatalog::paper_table1(5_000, 0);
    let planner = Planner::new(PlannerConfig::default());
    let plan = planner.plan(&catalog, 1.0).unwrap();
    let trace = Trace::poisson(&catalog, 1.0, 500.0, 33);
    let a = planner.evaluate(&plan, &catalog, &trace).unwrap();
    let b = planner.evaluate(&plan, &catalog, &trace).unwrap();
    assert_eq!(a.energy.total_joules(), b.energy.total_joules());
    assert_eq!(a.spin_downs, b.spin_downs);
    assert_eq!(a.responses, b.responses);
}
