//! Windowed-merge algebra property tests (tier-1): [`DiskWindows::merge`]
//! is the primitive the shard-invariant windowed series is built on, so —
//! like the run-level collectors in `metrics_merge_prop` — it must behave
//! as a commutative monoid over per-disk event streams: merging any
//! ordered contiguous partition of a stream, in any grouping, reproduces
//! the single-collector recording window by window, and the derived
//! fleet rows agree bit for bit.
//!
//! Samples, powers and durations are drawn **dyadic** (k/64) so every
//! per-window energy product and partial sum is exact in an f64: the
//! partition-independence claim is then an exact equality, not a
//! tolerance check — the same discipline that makes the sharded replay's
//! windowed series *bit*-identical rather than merely close.

use proptest::prelude::*;
use spindown::sim::metrics::MetricsMode;
use spindown::sim::windows::{DiskWindows, WindowedReport};

/// Every event lands in [0, T_END); `finish(T_END)` pads all collectors
/// to the same window count, as the engine does at the common horizon.
const T_END: f64 = 256.0;

/// Dyadic timestamp in [0, 256): exactly representable, exactly
/// splittable at dyadic window boundaries.
fn dyadic_t() -> impl Strategy<Value = f64> {
    (0u32..(256 * 64)).prop_map(|k| k as f64 / 64.0)
}

/// Dyadic magnitude (response seconds, watts, segment length) in [0, 64).
fn dyadic_mag() -> impl Strategy<Value = f64> {
    (0u32..(1 << 12)).prop_map(|k| k as f64 / 64.0)
}

/// One recordable event against a [`DiskWindows`] collector — the full
/// surface the engine's actor hooks exercise.
#[derive(Clone, Debug)]
enum Ev {
    Completion(f64, f64),
    Shed(f64),
    Failed(f64),
    Retried(f64),
    Queue(f64, usize),
    Energy(f64, f64, f64),
}

fn event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (dyadic_t(), dyadic_mag()).prop_map(|(t, r)| Ev::Completion(t, r)),
        dyadic_t().prop_map(Ev::Shed),
        dyadic_t().prop_map(Ev::Failed),
        dyadic_t().prop_map(Ev::Retried),
        (dyadic_t(), 0usize..64).prop_map(|(t, d)| Ev::Queue(t, d)),
        (dyadic_t(), dyadic_mag(), dyadic_mag()).prop_map(|(t, dt, p)| Ev::Energy(
            t,
            (t + dt).min(T_END),
            p
        )),
    ]
}

/// Window width: a dyadic divisor-ish of the horizon (8..64 s), shared by
/// every collector in a run as `SimConfig::windows` is fleet-wide.
fn width() -> impl Strategy<Value = f64> {
    (1u32..=8).prop_map(|k| k as f64 * 8.0)
}

fn mode_of(exact: bool) -> MetricsMode {
    if exact {
        MetricsMode::Exact
    } else {
        MetricsMode::Histogram
    }
}

fn collect(events: &[Ev], width_s: f64, mode: MetricsMode) -> DiskWindows {
    let mut w = DiskWindows::new(width_s, mode);
    for ev in events {
        match *ev {
            Ev::Completion(t, r) => w.record_completion(t, r),
            Ev::Shed(t) => w.record_shed(t),
            Ev::Failed(t) => w.record_failed(t),
            Ev::Retried(t) => w.record_retried(t),
            Ev::Queue(t, d) => w.observe_queue(t, d),
            Ev::Energy(from, to, p) => w.add_energy(from, to, p),
        }
    }
    w.finish(T_END);
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any ordered contiguous partition of the event stream, merged back in
    // partition order, is the bulk collector — bit for bit, in both
    // metrics modes, and the derived fleet rows agree too. This is
    // exactly the sharded replay's shape: each shard records a contiguous
    // per-disk slice of history, and the merge reassembles it.
    #[test]
    fn partition_merge_equals_bulk_recording(
        events in prop::collection::vec(event(), 0..300),
        cuts in prop::collection::vec(0usize..300, 0..6),
        w in width(),
        exact in any::<bool>(),
    ) {
        let mode = mode_of(exact);
        let bulk = collect(&events, w, mode);
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (events.len() + 1)).collect();
        bounds.push(0);
        bounds.push(events.len());
        bounds.sort_unstable();
        let mut merged = DiskWindows::new(w, mode);
        let mut parts = Vec::new();
        for win in bounds.windows(2) {
            let part = collect(&events[win[0]..win[1]], w, mode);
            merged.merge(&part);
            parts.push(part);
        }
        merged.finish(T_END);
        prop_assert_eq!(&merged, &bulk);
        prop_assert_eq!(merged.n_windows(), bulk.n_windows());
        // The fleet-level derivation agrees window by window: folding the
        // parts (as the shard merge does) yields the same rows as folding
        // the single bulk collector (as the unsharded finish does).
        let from_parts = WindowedReport::derive(w, parts, false);
        let from_bulk = WindowedReport::derive(w, vec![bulk], false);
        prop_assert_eq!(&from_parts.rows, &from_bulk.rows);
    }

    // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c). Dyadic magnitudes make
    // the per-window energy sums exact, so the grouping cannot leak into
    // the result in either mode.
    #[test]
    fn merge_associates(
        a in prop::collection::vec(event(), 0..120),
        b in prop::collection::vec(event(), 0..120),
        c in prop::collection::vec(event(), 0..120),
        w in width(),
        exact in any::<bool>(),
    ) {
        let mode = mode_of(exact);
        let (wa, wb, wc) = (
            collect(&a, w, mode),
            collect(&b, w, mode),
            collect(&c, w, mode),
        );
        let mut left = wa.clone();
        left.merge(&wb);
        left.merge(&wc);
        let mut bc = wb.clone();
        bc.merge(&wc);
        let mut right = wa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
    }

    // Commutativity: a ⊕ b == b ⊕ a. Histogram collectors are bit-equal
    // as values (bucket counts add); exact collectors store their sample
    // lists in merge order, so the *derived rows* — counts, means and
    // sorted-rank quantiles over the same multiset — are compared instead.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec(event(), 0..150),
        b in prop::collection::vec(event(), 0..150),
        w in width(),
        exact in any::<bool>(),
    ) {
        let mode = mode_of(exact);
        let (wa, wb) = (collect(&a, w, mode), collect(&b, w, mode));
        let mut ab = wa.clone();
        ab.merge(&wb);
        let mut ba = wb.clone();
        ba.merge(&wa);
        if !exact {
            prop_assert_eq!(&ab, &ba);
        }
        let rows_ab = WindowedReport::derive(w, vec![ab], false).rows;
        let rows_ba = WindowedReport::derive(w, vec![ba], false).rows;
        prop_assert_eq!(&rows_ab, &rows_ba);
    }

    // The empty, just-finished collector is the identity on either side —
    // the regime of a shard whose disks saw no events in a window range.
    #[test]
    fn empty_collector_is_the_merge_identity(
        events in prop::collection::vec(event(), 0..200),
        w in width(),
        exact in any::<bool>(),
    ) {
        let mode = mode_of(exact);
        let x = collect(&events, w, mode);
        let empty = collect(&[], w, mode);
        let mut left = empty.clone();
        left.merge(&x);
        let mut right = x.clone();
        right.merge(&empty);
        prop_assert_eq!(&left, &x);
        prop_assert_eq!(&right, &x);
    }

    // Zero-completion windows derive to explicit zeros — never NaN — in
    // every column, whatever else happened around them (the empty-window
    // contract the CSV renderer leans on).
    #[test]
    fn derived_rows_are_always_finite(
        events in prop::collection::vec(event(), 0..150),
        w in width(),
        exact in any::<bool>(),
    ) {
        let d = collect(&events, w, mode_of(exact));
        let report = WindowedReport::derive(w, vec![d], false);
        for row in &report.rows {
            prop_assert!(row.mean_s.is_finite(), "mean NaN in empty window");
            prop_assert!(row.p95_s.is_finite(), "p95 NaN in empty window");
            prop_assert!(row.p99_s.is_finite(), "p99 NaN in empty window");
            prop_assert!(row.energy_j.is_finite());
            if row.completions == 0 {
                prop_assert_eq!(row.mean_s, 0.0);
                prop_assert_eq!(row.p95_s, 0.0);
                prop_assert_eq!(row.p99_s, 0.0);
            }
        }
    }
}
