//! Paper-constant invariants: every number the paper states that our model
//! *derives* (rather than hard-codes) must fall out correctly. These tests
//! are the wiring check between Table 1/Table 2 and the implementation.

use spindown::analysis::regression::power_law_fit;
use spindown::disk::{break_even_threshold, transition_energy_overhead, DiskSpec};
use spindown::workload::bins::SizeBins;
use spindown::workload::nersc::{calibrate_bin_exponent, NerscConfig};
use spindown::workload::sizes::RankSizeModel;
use spindown::workload::zipf::ZipfDistribution;
use spindown::workload::{paper_popularity_exponent, paper_theta, FileCatalog};

#[test]
fn table2_derives_the_53_3s_idleness_threshold() {
    // (10 s × 9.3 W + 15 s × 24 W) / (9.3 W − 0.8 W) = 453 / 8.5 = 53.3 s
    let spec = DiskSpec::seagate_st3500630as();
    assert!((transition_energy_overhead(&spec) - 453.0).abs() < 1e-9);
    assert!((break_even_threshold(&spec) - 53.2941).abs() < 1e-3);
}

#[test]
fn table1_theta_and_exponent() {
    assert!((paper_theta() - 0.557_46).abs() < 1e-4);
    assert!((paper_popularity_exponent() - 0.442_54).abs() < 1e-4);
}

#[test]
fn table1_size_law_hits_all_three_published_numbers() {
    let model = RankSizeModel::paper_table1(40_000);
    // max 20 GB
    assert_eq!(model.size_of_rank(1), 20_000_000_000);
    // min ≈ 188 MB
    let min = model.size_of_rank(40_000) as f64;
    assert!((min - 188.0e6).abs() < 2.0e6, "min {min}");
    // total ≈ 12.86 TB (the pure power law gives ~13.4 TB; same ballpark)
    let total = model.total_bytes() as f64 / 1e12;
    assert!((12.0..15.0).contains(&total), "total {total} TB");
}

#[test]
fn nersc_paper_statistics_reproduced() {
    let cfg = NerscConfig::paper();
    // 0.044683/s × 30 days ≈ 115 818 ≈ 115 832 requests: self-consistent.
    assert!((cfg.arrival_rate() - 0.044683).abs() < 1e-4);
    // mean-size calibration: expectation equals 544 MB.
    let a = calibrate_bin_exponent(&cfg);
    let bins = SizeBins::new(cfg.size_bins, cfg.min_size_bytes, cfg.max_size_bytes);
    let z = ZipfDistribution::new(cfg.size_bins, a);
    let mean: f64 = (0..cfg.size_bins)
        .map(|i| z.pmf(i + 1) * bins.midpoint(i))
        .sum();
    assert!((mean / 1e6 - 544.0).abs() < 0.5, "calibrated mean {mean}");
}

#[test]
fn catalog_size_distribution_is_power_law_in_the_tail() {
    // The §5.1 log-log linearity, applied to the Table 1 catalog: file size
    // versus size-rank follows a clean power law by construction.
    let catalog = FileCatalog::paper_table1(10_000, 0);
    let mut sizes: Vec<u64> = catalog.iter().map(|f| f.size_bytes).collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| ((i + 1) as f64, s as f64))
        .collect();
    let (slope, r2) = power_law_fit(&pts).unwrap();
    assert!(slope < -0.3, "slope {slope}");
    assert!(r2 > 0.99, "r2 {r2}");
}

#[test]
fn zipf_head_concentration_enables_the_two_group_story() {
    // §1's motivating split: a small popular group carries an outsized
    // share of accesses. For the Table 1 law (exponent ≈ 0.44, a mild
    // Zipf), the most popular 10% of 40 000 files carry ≈ 27.6% of
    // accesses — 2.8× their uniform share.
    let z = ZipfDistribution::paper_popularity(40_000);
    let head: f64 = (1..=4_000).map(|r| z.pmf(r)).sum();
    assert!(head > 0.25, "head share {head}");
    // ... while carrying under 10% of the bytes (they are the small files).
    let catalog = FileCatalog::paper_table1(40_000, 0);
    let head_bytes: u64 = catalog.files()[..4_000].iter().map(|f| f.size_bytes).sum();
    let frac = head_bytes as f64 / catalog.total_bytes() as f64;
    assert!(frac < 0.10, "head byte share {frac}");
}

#[test]
fn service_time_of_mean_nersc_file_is_7_56s() {
    use spindown::disk::mechanics::ServiceTimer;
    let timer = ServiceTimer::new(&DiskSpec::seagate_st3500630as());
    let t = timer.transfer_time(544_000_000);
    assert!((t - 7.5555).abs() < 0.01, "{t}");
}
