//! Fault-injection equivalence (tier-1): the two determinism contracts of
//! the fault injector.
//!
//! 1. **No-fault bit-identity** — a configuration whose fault plan is
//!    [`FaultPlan::none`] (explicitly, via knob-only specs, or via
//!    `FaultChoice::parse("none")`) replays **bit-identically** to the
//!    legacy engine that predates fault injection, on the golden fixture
//!    and on a seeded Poisson fleet, at S ∈ {1, 2, 8}. The fault hooks
//!    are all behind one `Option`: the fault-free path never constructs a
//!    runtime, draws no random numbers and touches no counters.
//! 2. **Faulted shard-invariance** — an *active* fault plan keys every
//!    per-disk random stream by the **global** disk id, so the merged
//!    S-shard report (responses, energy, availability counters, per-disk
//!    downtime) is bit-identical to the unsharded run.

use std::io::BufReader;

use spindown::core::FaultChoice;
use spindown::packing::{Assignment, DiskBin};
use spindown::sim::config::{SimConfig, ThresholdPolicy};
use spindown::sim::engine::Simulator;
use spindown::sim::metrics::{MetricsMode, SimReport};
use spindown::workload::{FaultPlan, FileCatalog, Trace};

const MB: u64 = 1_000_000;
const QS: [f64; 7] = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];

fn catalog(n: usize) -> FileCatalog {
    let sizes: Vec<u64> = (0..n).map(|i| (1 + (i % 96) as u64) * MB).collect();
    FileCatalog::from_parts(sizes, vec![1.0 / n as f64; n])
}

fn assignment(files: usize, disks: usize) -> Assignment {
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for f in 0..files {
        bins[f % disks].items.push(f);
    }
    Assignment { disks: bins }
}

fn golden_fixture() -> (FileCatalog, Trace, Assignment) {
    let sizes = vec![72 * MB, 8 * MB, 300 * MB, 2 * MB, 100 * MB, 50 * MB];
    let catalog = FileCatalog::from_parts(sizes, vec![1.0 / 6.0; 6]);
    let layout = [0usize, 0, 1, 1, 2, 2];
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for (file, &d) in layout.iter().enumerate() {
        bins[d].items.push(file);
    }
    let raw = std::fs::File::open("tests/fixtures/golden_trace.csv").expect("fixture present");
    let trace = Trace::read_csv(BufReader::new(raw), Some(600.0)).expect("fixture parses");
    (catalog, trace, Assignment { disks: bins })
}

/// Bit-exact comparison of everything the no-fault pin promises (the
/// shard-equivalence twin, minus `per_shard_event_peaks` — see that
/// module).
fn assert_reports_bit_identical(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a.sim_time_s, b.sim_time_s, "{what}: sim time");
    assert_eq!(a.disks, b.disks, "{what}: fleet size");
    assert_eq!(
        a.energy.total_joules(),
        b.energy.total_joules(),
        "{what}: total energy"
    );
    assert_eq!(
        a.energy.per_state(),
        b.energy.per_state(),
        "{what}: per-state"
    );
    assert_eq!(a.responses, b.responses, "{what}: responses");
    for q in QS {
        assert_eq!(
            a.response_quantile(q),
            b.response_quantile(q),
            "{what}: q={q}"
        );
    }
    assert_eq!(a.spin_downs, b.spin_downs, "{what}: spin-downs");
    assert_eq!(a.spin_ups, b.spin_ups, "{what}: spin-ups");
    assert_eq!(a.per_disk_served, b.per_disk_served, "{what}: served");
    assert_eq!(
        a.per_disk_responses, b.per_disk_responses,
        "{what}: per-disk responses"
    );
    for (d, (x, y)) in a.per_disk_energy.iter().zip(&b.per_disk_energy).enumerate() {
        assert_eq!(x.per_state(), y.per_state(), "{what}: disk {d} energy");
    }
}

/// The no-fault plans that must all take the legacy fast path: the
/// default, an explicit `none()`, a knob-only spec (recovery parameters
/// without any enabled failure mode), and the parsed `"none"` choice.
fn no_fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("default", FaultPlan::default()),
        ("explicit none()", FaultPlan::none()),
        (
            "knobs only",
            FaultPlan::parse("mttr=120 | retries=9 | backoff=4").expect("knob-only spec parses"),
        ),
        ("parsed none", FaultChoice::parse("none").unwrap().plan()),
    ]
}

#[test]
fn no_fault_plan_is_bit_identical_to_legacy_on_the_golden_trace() {
    let (catalog, trace, layout) = golden_fixture();
    let base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    let legacy = Simulator::run(&catalog, &trace, &layout, &base).unwrap();
    assert!(legacy.availability.is_none(), "legacy run has no stats");
    for (what, plan) in no_fault_plans() {
        for shards in [1usize, 2, 8] {
            let mut cfg = base.clone().with_shards(shards);
            cfg.faults = plan.clone();
            let report = Simulator::run(&catalog, &trace, &layout, &cfg).unwrap();
            assert!(
                report.availability.is_none(),
                "golden {what} S={shards}: no-fault runs must not grow stats"
            );
            assert_reports_bit_identical(&legacy, &report, &format!("golden {what} S={shards}"));
        }
    }
}

#[test]
fn no_fault_plan_is_bit_identical_to_legacy_on_seeded_poisson() {
    let cat = catalog(64);
    let tr = Trace::poisson(&cat, 2.0, 600.0, 0xFA017);
    let layout = assignment(64, 16);
    let base = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let legacy = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    for (what, plan) in no_fault_plans() {
        for shards in [1usize, 2, 8] {
            let mut cfg = base.clone().with_shards(shards);
            cfg.faults = plan.clone();
            let report = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
            assert!(report.availability.is_none());
            assert_reports_bit_identical(&legacy, &report, &format!("poisson {what} S={shards}"));
        }
    }
}

/// An *active* plan: sharded replays merge bit-identically (responses,
/// energy, availability counters, per-disk downtime in global disk order).
#[test]
fn faulted_replay_is_bit_identical_across_shard_counts() {
    let cat = catalog(64);
    // Sparse enough that disks sleep and wake repeatedly under the fixed
    // 20 s threshold — so every failure mode gets exercised.
    let tr = Trace::poisson(&cat, 1.0, 900.0, 0xFA111);
    let layout = assignment(64, 16);
    let mut base = SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::Fixed(20.0))
        .with_metrics(MetricsMode::Histogram);
    base.faults =
        FaultPlan::parse("transient:p=0.02 | wakefail:p=0.2 | crash@t=300:d5 | mttr=150 | seed=9")
            .expect("active spec parses");
    let solo = Simulator::run(&cat, &tr, &layout, &base).unwrap();
    let a = solo.availability.as_ref().expect("faulted run has stats");
    assert!(
        a.conservation_holds(),
        "arrivals balance the outcome buckets"
    );
    assert!(a.crashes >= 1, "the scheduled crash fires");
    assert!(a.retried > 0, "2% flakes over ~900 requests retry");
    assert!(a.availability < 1.0, "the crash costs downtime");
    for shards in [2usize, 3, 8] {
        let cfg = base.clone().with_shards(shards);
        let sharded = Simulator::run(&cat, &tr, &layout, &cfg).unwrap();
        assert_reports_bit_identical(&solo, &sharded, &format!("faulted S={shards}"));
        let b = sharded.availability.as_ref().expect("merged stats");
        assert_eq!(a.arrivals, b.arrivals, "S={shards}: arrivals");
        assert_eq!(a.completed, b.completed, "S={shards}: completed");
        assert_eq!(a.retried, b.retried, "S={shards}: retried");
        assert_eq!(a.shed, b.shed, "S={shards}: shed");
        assert_eq!(a.failed, b.failed, "S={shards}: failed");
        assert_eq!(
            a.wake_failures, b.wake_failures,
            "S={shards}: wake failures"
        );
        assert_eq!(a.crashes, b.crashes, "S={shards}: crashes");
        assert_eq!(a.in_flight, b.in_flight, "S={shards}: in flight");
        assert_eq!(a.availability, b.availability, "S={shards}: availability");
        assert_eq!(
            a.per_disk_downtime_s, b.per_disk_downtime_s,
            "S={shards}: per-disk downtime"
        );
        assert_eq!(
            a.degraded_p95(),
            b.degraded_p95(),
            "S={shards}: degraded p95"
        );
    }
}
