//! Merge-algebra property tests (tier-1): [`StreamingHistogram::merge`]
//! and [`ResponseStats::merge`] are the primitives the sharded replay's
//! report merge is built on, so they must behave like a commutative
//! monoid over sample multisets — merging any partition of a sample
//! stream, in any order and any grouping, reproduces the single-recorder
//! collector exactly.
//!
//! Samples are drawn **dyadic** (k/64 with k < 2²⁰) so every partial sum
//! is exact in an f64: count, sum (hence mean), min and max must then be
//! *bit*-equal however the samples are partitioned, turning the
//! order-independence claim into an exact equality rather than a
//! tolerance check.

use proptest::prelude::*;
use spindown::sim::metrics::{ResponseStats, StreamingHistogram};

/// Dyadic sample: exactly representable, with exactly representable sums
/// for any realistic count, so summation order cannot matter.
fn dyadic() -> impl Strategy<Value = f64> {
    (0u32..1 << 20).prop_map(|k| k as f64 / 64.0)
}

fn hist_of(samples: &[f64]) -> StreamingHistogram {
    let mut h = StreamingHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn stats_of(samples: &[f64], exact: bool) -> ResponseStats {
    let mut r = if exact {
        ResponseStats::exact()
    } else {
        ResponseStats::histogram()
    };
    for &s in samples {
        r.record(s);
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Any partition of the stream, merged back in partition order, is the
    // bulk recorder — bit for bit, including the scalar sidecars.
    #[test]
    fn histogram_partition_merge_equals_bulk_recording(
        samples in prop::collection::vec(dyadic(), 0..300),
        cuts in prop::collection::vec(0usize..300, 0..6),
    ) {
        let bulk = hist_of(&samples);
        // Split at the (sorted, clamped) cut points.
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (samples.len() + 1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();
        let mut merged = StreamingHistogram::new();
        for w in bounds.windows(2) {
            merged.merge(&hist_of(&samples[w[0]..w[1]]));
        }
        prop_assert_eq!(&merged, &bulk);
        prop_assert_eq!(merged.len(), bulk.len());
        prop_assert_eq!(merged.mean(), bulk.mean());
        prop_assert_eq!(merged.min(), bulk.min());
        prop_assert_eq!(merged.max(), bulk.max());
        prop_assert_eq!(merged.buckets(), bulk.buckets());
    }

    // Commutativity: a ⊕ b == b ⊕ a.
    #[test]
    fn histogram_merge_commutes(
        a in prop::collection::vec(dyadic(), 0..200),
        b in prop::collection::vec(dyadic(), 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.mean(), ba.mean());
    }

    // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn histogram_merge_associates(
        a in prop::collection::vec(dyadic(), 0..150),
        b in prop::collection::vec(dyadic(), 0..150),
        c in prop::collection::vec(dyadic(), 0..150),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.mean(), right.mean());
    }

    // The empty histogram is the identity on either side.
    #[test]
    fn empty_histogram_is_the_merge_identity(
        samples in prop::collection::vec(dyadic(), 0..200),
    ) {
        let h = hist_of(&samples);
        let mut left = StreamingHistogram::new();
        left.merge(&h);
        let mut right = h.clone();
        right.merge(&StreamingHistogram::new());
        prop_assert_eq!(&left, &h);
        prop_assert_eq!(&right, &h);
        prop_assert_eq!(left.min(), h.min());
        prop_assert_eq!(left.max(), h.max());
    }

    // ResponseStats in both modes: partition merge ≡ bulk. Exact mode
    // concatenates samples, so quantiles over the merged collector equal
    // the bulk collector's; histogram mode inherits the bucket algebra.
    #[test]
    fn response_stats_partition_merge_equals_bulk(
        samples in prop::collection::vec(dyadic(), 1..250),
        cut in 0usize..250,
        exact in any::<bool>(),
    ) {
        let cut = cut % (samples.len() + 1);
        let bulk = stats_of(&samples, exact);
        let mut merged = stats_of(&samples[..cut], exact);
        merged.merge(&stats_of(&samples[cut..], exact));
        prop_assert_eq!(merged.len(), bulk.len());
        prop_assert_eq!(merged.mean(), bulk.mean());
        prop_assert_eq!(merged.max(), bulk.max());
        if !exact {
            // Histogram collectors compare bit-exactly as values.
            prop_assert_eq!(&merged, &bulk);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(
                merged.clone().quantile(q),
                bulk.clone().quantile(q),
                "q={}", q
            );
        }
    }

    // A histogram-mode collector absorbs an exact-mode one by re-recording
    // its samples — the upgrade path the merge uses when a shard ran in
    // exact mode but the global collector is a histogram.
    #[test]
    fn histogram_stats_absorb_exact_stats(
        a in prop::collection::vec(dyadic(), 0..200),
        b in prop::collection::vec(dyadic(), 0..200),
    ) {
        let mut merged = stats_of(&a, false);
        merged.merge(&stats_of(&b, true));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let bulk = stats_of(&all, false);
        prop_assert_eq!(&merged, &bulk);
        prop_assert_eq!(merged.mean(), bulk.mean());
    }
}
