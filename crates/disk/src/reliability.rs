//! Duty-cycle accounting and a start/stop wear model.
//!
//! §5.1 of the paper argues that saving power *without* frequent spin-downs
//! matters because "low frequently spinning down and up … can prevent the
//! mean-time-to-failure of disks from dramatically decreasing". Desktop
//! drives are rated for a finite number of start/stop cycles (50 000 for the
//! ST3500630AS class); this module tracks cycles and converts them into a
//! rated-life consumption estimate so experiments can report reliability
//! impact alongside energy.

use serde::{Deserialize, Serialize};

/// Rated start/stop cycles for a desktop-class SATA drive (Seagate 7200.10
/// product manual ballpark).
pub const DEFAULT_RATED_START_STOP_CYCLES: u64 = 50_000;

/// Tracks start/stop cycles for one disk over an observation window.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DutyCycleCounter {
    spin_downs: u64,
    spin_ups: u64,
    observed_seconds: f64,
}

impl DutyCycleCounter {
    /// New counter with nothing observed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed spin-down.
    pub fn record_spin_down(&mut self) {
        self.spin_downs += 1;
    }

    /// Record a completed spin-up.
    pub fn record_spin_up(&mut self) {
        self.spin_ups += 1;
    }

    /// Record that the counters cover `seconds` of (additional) wall time.
    pub fn extend_observation(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "observation window cannot shrink");
        self.observed_seconds += seconds;
    }

    /// Completed spin-downs.
    pub fn spin_downs(&self) -> u64 {
        self.spin_downs
    }

    /// Completed spin-ups.
    pub fn spin_ups(&self) -> u64 {
        self.spin_ups
    }

    /// Covered wall time in seconds.
    pub fn observed_seconds(&self) -> f64 {
        self.observed_seconds
    }

    /// Full start/stop cycles: a cycle is one spin-down plus its matching
    /// spin-up, so the completed-cycle count is the smaller of the two.
    pub fn full_cycles(&self) -> u64 {
        self.spin_downs.min(self.spin_ups)
    }

    /// Cycles per hour over the observation window (0 if no time observed).
    pub fn cycles_per_hour(&self) -> f64 {
        if self.observed_seconds > 0.0 {
            self.full_cycles() as f64 / (self.observed_seconds / 3600.0)
        } else {
            0.0
        }
    }

    /// Estimated years until the rated cycle budget is exhausted at the
    /// observed rate. `None` when no cycles were observed (infinite life
    /// from the start/stop wear perspective).
    pub fn projected_years_to_rated_limit(&self, rated_cycles: u64) -> Option<f64> {
        let per_hour = self.cycles_per_hour();
        if per_hour <= 0.0 {
            return None;
        }
        let hours = rated_cycles as f64 / per_hour;
        Some(hours / (24.0 * 365.25))
    }

    /// Fraction of the rated cycle budget consumed so far.
    pub fn rated_life_consumed(&self, rated_cycles: u64) -> f64 {
        if rated_cycles == 0 {
            return if self.full_cycles() > 0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.full_cycles() as f64 / rated_cycles as f64
    }

    /// Merge another counter (fleet aggregation).
    pub fn merge(&mut self, other: &DutyCycleCounter) {
        self.spin_downs += other.spin_downs;
        self.spin_ups += other.spin_ups;
        self.observed_seconds += other.observed_seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(downs: u64, ups: u64, hours: f64) -> DutyCycleCounter {
        let mut c = DutyCycleCounter::new();
        for _ in 0..downs {
            c.record_spin_down();
        }
        for _ in 0..ups {
            c.record_spin_up();
        }
        c.extend_observation(hours * 3600.0);
        c
    }

    #[test]
    fn full_cycles_is_min_of_directions() {
        assert_eq!(counter(5, 4, 1.0).full_cycles(), 4);
        assert_eq!(counter(4, 5, 1.0).full_cycles(), 4);
        assert_eq!(counter(0, 0, 1.0).full_cycles(), 0);
    }

    #[test]
    fn cycles_per_hour() {
        let c = counter(10, 10, 2.0);
        assert!((c.cycles_per_hour() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn no_observation_no_rate() {
        let c = counter(3, 3, 0.0);
        assert_eq!(c.cycles_per_hour(), 0.0);
        assert_eq!(c.projected_years_to_rated_limit(50_000), None);
    }

    #[test]
    fn projection_matches_hand_computation() {
        // 1 cycle/hour → 50 000 hours → ≈ 5.7 years
        let c = counter(2, 2, 2.0);
        let years = c.projected_years_to_rated_limit(50_000).unwrap();
        assert!((years - 50_000.0 / (24.0 * 365.25)).abs() < 1e-9);
    }

    #[test]
    fn frequent_cycling_shortens_projected_life() {
        let gentle = counter(1, 1, 10.0);
        let harsh = counter(100, 100, 10.0);
        let g = gentle.projected_years_to_rated_limit(50_000).unwrap();
        let h = harsh.projected_years_to_rated_limit(50_000).unwrap();
        assert!(h < g / 50.0);
    }

    #[test]
    fn rated_life_consumed_fraction() {
        let c = counter(500, 500, 1.0);
        assert!((c.rated_life_consumed(50_000) - 0.01).abs() < 1e-12);
        assert_eq!(counter(0, 0, 1.0).rated_life_consumed(0), 0.0);
        assert_eq!(counter(1, 1, 1.0).rated_life_consumed(0), f64::INFINITY);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = counter(1, 2, 1.0);
        a.merge(&counter(3, 4, 2.0));
        assert_eq!(a.spin_downs(), 4);
        assert_eq!(a.spin_ups(), 6);
        assert!((a.observed_seconds() - 3.0 * 3600.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "observation window cannot shrink")]
    fn negative_observation_panics() {
        let mut c = DutyCycleCounter::new();
        c.extend_observation(-1.0);
    }
}
