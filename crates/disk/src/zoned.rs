//! Zoned (multi-rate) transfer model — the paper's §6 "more detailed
//! modeling of the disk storage system", following Zedlewski et al.'s
//! observation that sustained transfer rate varies ~2× between the outer
//! and inner cylinders of a drive.
//!
//! A [`ZonedModel`] divides the LBA space into zones, each covering a
//! fraction of the capacity at a constant rate (outer zones first, fastest).
//! [`ZonedModel::transfer_time`] integrates a transfer that may span zones,
//! so allocation studies can price *where* on the platter a file lives. The
//! flat 72 MB/s of Table 2 is the single-zone special case (tested
//! equivalent).

use serde::{Deserialize, Serialize};

use crate::spec::DiskSpec;

/// One zone: a capacity share and its sustained rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// Fraction of the disk's capacity in this zone, (0, 1].
    pub capacity_fraction: f64,
    /// Sustained transfer rate in the zone, bytes/second.
    pub rate_bps: f64,
}

/// A multi-zone transfer-rate model over a drive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZonedModel {
    capacity_bytes: u64,
    /// Zone boundaries in bytes (cumulative), len = zones + 1, starting 0.
    boundaries: Vec<u64>,
    rates: Vec<f64>,
}

impl ZonedModel {
    /// Build from explicit zones (outermost first).
    ///
    /// # Panics
    /// If zones are empty, fractions don't sum to ≈ 1, any fraction or rate
    /// is non-positive, or rates are not non-increasing (outer zones must
    /// be at least as fast as inner ones).
    pub fn new(capacity_bytes: u64, zones: &[Zone]) -> Self {
        assert!(!zones.is_empty(), "need at least one zone");
        let total: f64 = zones.iter().map(|z| z.capacity_fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "zone fractions must sum to 1, got {total}"
        );
        let mut boundaries = Vec::with_capacity(zones.len() + 1);
        boundaries.push(0u64);
        let mut acc = 0.0;
        let mut last_rate = f64::INFINITY;
        let mut rates = Vec::with_capacity(zones.len());
        for z in zones {
            assert!(z.capacity_fraction > 0.0, "zone fraction must be positive");
            assert!(z.rate_bps > 0.0, "zone rate must be positive");
            assert!(
                z.rate_bps <= last_rate + 1e-9,
                "zones must be ordered fastest (outer) first"
            );
            last_rate = z.rate_bps;
            acc += z.capacity_fraction;
            boundaries.push((acc * capacity_bytes as f64).round() as u64);
            rates.push(z.rate_bps);
        }
        *boundaries.last_mut().expect("non-empty") = capacity_bytes;
        ZonedModel {
            capacity_bytes,
            boundaries,
            rates,
        }
    }

    /// A single-zone model equivalent to the spec's flat rate.
    pub fn flat(spec: &DiskSpec) -> Self {
        ZonedModel::new(
            spec.capacity_bytes,
            &[Zone {
                capacity_fraction: 1.0,
                rate_bps: spec.transfer_rate_bps,
            }],
        )
    }

    /// A typical 4-zone profile for the spec's drive: the *outer* zone runs
    /// ~15 % above the nominal (sustained-average) rate, the inner zone
    /// ~35 % below, roughly matching vendor zone tables.
    pub fn typical_four_zone(spec: &DiskSpec) -> Self {
        let r = spec.transfer_rate_bps;
        ZonedModel::new(
            spec.capacity_bytes,
            &[
                Zone {
                    capacity_fraction: 0.30,
                    rate_bps: 1.15 * r,
                },
                Zone {
                    capacity_fraction: 0.30,
                    rate_bps: 1.05 * r,
                },
                Zone {
                    capacity_fraction: 0.25,
                    rate_bps: 0.90 * r,
                },
                Zone {
                    capacity_fraction: 0.15,
                    rate_bps: 0.65 * r,
                },
            ],
        )
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.rates.len()
    }

    /// The instantaneous rate at byte offset `offset` (clamped to the last
    /// zone at the very end of the disk).
    pub fn rate_at(&self, offset: u64) -> f64 {
        let idx = self
            .boundaries
            .partition_point(|&b| b <= offset)
            .saturating_sub(1)
            .min(self.rates.len() - 1);
        self.rates[idx]
    }

    /// Time to transfer `bytes` starting at byte offset `start`, crossing
    /// zone boundaries as needed.
    ///
    /// # Panics
    /// If the transfer runs past the end of the disk.
    pub fn transfer_time(&self, start: u64, bytes: u64) -> f64 {
        assert!(
            start + bytes <= self.capacity_bytes,
            "transfer [{start}, {}) beyond capacity {}",
            start + bytes,
            self.capacity_bytes
        );
        let mut t = 0.0;
        let mut pos = start;
        let end = start + bytes;
        while pos < end {
            let zone = self
                .boundaries
                .partition_point(|&b| b <= pos)
                .saturating_sub(1)
                .min(self.rates.len() - 1);
            let zone_end = self.boundaries[zone + 1];
            let chunk = end.min(zone_end) - pos;
            t += chunk as f64 / self.rates[zone];
            pos += chunk;
        }
        t
    }

    /// Mean sustained rate over the whole surface (capacity / full-read
    /// time) — useful for calibrating a zone table against a nominal rate.
    pub fn mean_rate_bps(&self) -> f64 {
        self.capacity_bytes as f64 / self.transfer_time(0, self.capacity_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GB;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn flat_model_matches_service_timer() {
        let m = ZonedModel::flat(&spec());
        let t = m.transfer_time(0, 544_000_000);
        assert!((t - 544.0e6 / 72.0e6).abs() < 1e-9);
        assert_eq!(m.zones(), 1);
        assert!((m.mean_rate_bps() - 72.0e6).abs() < 1.0);
    }

    #[test]
    fn outer_zone_is_faster_than_inner() {
        let m = ZonedModel::typical_four_zone(&spec());
        let bytes = GB;
        let outer = m.transfer_time(0, bytes);
        let inner = m.transfer_time(spec().capacity_bytes - bytes, bytes);
        assert!(
            inner > outer * 1.5,
            "inner {inner} not ≫ outer {outer} for the 4-zone profile"
        );
    }

    #[test]
    fn transfer_across_boundary_integrates_both_rates() {
        let m = ZonedModel::new(
            1_000,
            &[
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 100.0,
                },
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 50.0,
                },
            ],
        );
        // 200 bytes starting 100 before the boundary: 100 @ 100 B/s + 100 @ 50 B/s
        let t = m.transfer_time(400, 200);
        assert!((t - (1.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn rate_at_respects_boundaries() {
        let m = ZonedModel::new(
            1_000,
            &[
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 100.0,
                },
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 50.0,
                },
            ],
        );
        assert_eq!(m.rate_at(0), 100.0);
        assert_eq!(m.rate_at(499), 100.0);
        assert_eq!(m.rate_at(500), 50.0);
        assert_eq!(m.rate_at(999), 50.0);
    }

    #[test]
    fn full_surface_read_equals_zone_sum() {
        let m = ZonedModel::typical_four_zone(&spec());
        let cap = spec().capacity_bytes as f64;
        let r = spec().transfer_rate_bps;
        let expect = 0.30 * cap / (1.15 * r)
            + 0.30 * cap / (1.05 * r)
            + 0.25 * cap / (0.90 * r)
            + 0.15 * cap / (0.65 * r);
        let got = m.transfer_time(0, spec().capacity_bytes);
        assert!((got - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn typical_profile_mean_rate_near_nominal() {
        // The 4-zone profile averages within ~5 % of the Table 2 rate, so
        // swapping it in changes per-file times, not fleet-level energy.
        let m = ZonedModel::typical_four_zone(&spec());
        let mean = m.mean_rate_bps();
        assert!(
            (mean - 72.0e6).abs() / 72.0e6 < 0.06,
            "mean zoned rate {mean}"
        );
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let m = ZonedModel::flat(&spec());
        assert_eq!(m.transfer_time(123, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn overrun_rejected() {
        let m = ZonedModel::flat(&spec());
        let _ = m.transfer_time(spec().capacity_bytes - 10, 11);
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn bad_fractions_rejected() {
        let _ = ZonedModel::new(
            1_000,
            &[Zone {
                capacity_fraction: 0.7,
                rate_bps: 10.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "fastest (outer) first")]
    fn unsorted_zones_rejected() {
        let _ = ZonedModel::new(
            1_000,
            &[
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 50.0,
                },
                Zone {
                    capacity_fraction: 0.5,
                    rate_bps: 100.0,
                },
            ],
        );
    }
}
