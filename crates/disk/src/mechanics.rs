//! Request service-time model.
//!
//! The paper's simulation serves whole files: a request for file `f` of size
//! `s` occupies the disk for `seek + rotation + s / transfer_rate` seconds
//! (§4: "the mean size of files … is 544 MB, which incurred about 7.56 sec of
//! service time when the disk transmission rate is 72 MBps" — i.e. the
//! transfer component dominates). Partial reads are modelled by scaling the
//! byte count.

use serde::{Deserialize, Serialize};

use crate::spec::DiskSpec;

/// What kind of request is being serviced. The paper focuses on reads;
/// writes are modelled with the same mechanics (and the same active power),
/// matching its "write to a spinning disk" policy discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RequestKind {
    /// Read the bytes of a file.
    Read,
    /// Write the bytes of a file.
    Write,
}

/// Breakdown of one request's service time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceBreakdown {
    /// Head positioning time.
    pub seek_s: f64,
    /// Rotational latency.
    pub rotation_s: f64,
    /// Media transfer time.
    pub transfer_s: f64,
}

impl ServiceBreakdown {
    /// Total service time.
    pub fn total(&self) -> f64 {
        self.seek_s + self.rotation_s + self.transfer_s
    }
}

/// Computes service times for a given drive.
///
/// Stateless and cheap to copy; wraps a [`DiskSpec`] reference-free so it can
/// be embedded in simulator actors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceTimer {
    seek_s: f64,
    rotation_s: f64,
    transfer_rate_bps: f64,
}

impl ServiceTimer {
    /// Build from a drive spec.
    pub fn new(spec: &DiskSpec) -> Self {
        ServiceTimer {
            seek_s: spec.avg_seek_s,
            rotation_s: spec.avg_rotation_s,
            transfer_rate_bps: spec.transfer_rate_bps,
        }
    }

    /// Service-time breakdown for transferring `bytes` bytes.
    pub fn breakdown(&self, bytes: u64) -> ServiceBreakdown {
        ServiceBreakdown {
            seek_s: self.seek_s,
            rotation_s: self.rotation_s,
            transfer_s: bytes as f64 / self.transfer_rate_bps,
        }
    }

    /// Total service time for transferring `bytes` bytes.
    ///
    /// This is the paper's `µ_i = f(s_i)`.
    pub fn service_time(&self, bytes: u64) -> f64 {
        self.breakdown(bytes).total()
    }

    /// Service time ignoring positioning overheads — the transfer-only model
    /// the paper uses when it quotes "544 MB ⇒ 7.56 s at 72 MB/s" and when it
    /// defines the load `l_i = r_i · s_i` normalised by transfer rate.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_rate_bps
    }

    /// The positioning overhead (seek + rotation) independent of size.
    pub fn positioning_overhead(&self) -> f64 {
        self.seek_s + self.rotation_s
    }

    /// Transfer rate in bytes per second.
    pub fn transfer_rate_bps(&self) -> f64 {
        self.transfer_rate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MB;

    fn timer() -> ServiceTimer {
        ServiceTimer::new(&DiskSpec::seagate_st3500630as())
    }

    #[test]
    fn paper_example_544mb_is_7_56s_transfer() {
        // §5.1: 544 MB at 72 MB/s ≈ 7.56 s
        let t = timer().transfer_time(544 * MB);
        assert!((t - 7.5555).abs() < 0.01, "transfer time was {t}");
    }

    #[test]
    fn service_time_includes_positioning() {
        let t = timer();
        let total = t.service_time(544 * MB);
        let transfer = t.transfer_time(544 * MB);
        assert!((total - transfer - (8.5e-3 + 4.16e-3)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let t = timer();
        for bytes in [0u64, 1, 188 * MB, 20_000 * MB] {
            let b = t.breakdown(bytes);
            assert!((b.total() - t.service_time(bytes)).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_byte_request_costs_positioning_only() {
        let t = timer();
        assert!((t.service_time(0) - t.positioning_overhead()).abs() < 1e-15);
    }

    #[test]
    fn service_time_is_monotone_in_size() {
        let t = timer();
        let mut last = 0.0;
        for bytes in [1u64, MB, 10 * MB, 100 * MB, 1000 * MB] {
            let s = t.service_time(bytes);
            assert!(s > last);
            last = s;
        }
    }

    #[test]
    fn faster_disk_serves_faster() {
        let slow = ServiceTimer::new(&DiskSpec::archival_5400());
        let fast = ServiceTimer::new(&DiskSpec::enterprise_15k());
        assert!(fast.service_time(500 * MB) < slow.service_time(500 * MB));
    }
}
