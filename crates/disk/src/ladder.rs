//! The N-level power-state ladder: an ordered list of power-saving levels
//! a drive can descend through, generalising the paper's Figure-1 two-state
//! (Idle ⇄ Standby) machine to the multi-state models of the classical DPM
//! literature (Irani, Shukla & Gupta's lower-envelope strategies).
//!
//! Level 0 is always the full-speed operational level (the paper's `Idle`):
//! platters spinning, requests serviceable immediately, no transition cost.
//! Levels `1..` are progressively deeper power-saving levels — active idle
//! / low-RPM / standby on real drives — each with its own resident power
//! draw, an *entry* transition (descending one step from the level above)
//! and an *exit* transition (waking directly back to level 0; disks do not
//! wake level-by-level).
//!
//! ```text
//! level 0 (idle) ── entry(1) ──▶ level 1 ── entry(2) ──▶ level 2 …
//!       ▲                          │                        │
//!       └────────── exit(1) ───────┘                        │
//!       └────────── exit(2) ────────────────────────────────┘
//! ```
//!
//! ## Validation: the lower-envelope condition
//!
//! A ladder is only useful when every level is *non-dominated*: the cost
//! lines `C_l(t) = E_l + P_l·t` (transition overhead of reaching-and-waking
//! from level `l`, plus resident draw over an idle gap of length `t`) must
//! appear on the lower envelope in depth order, i.e. the pairwise
//! intersection times must be strictly increasing with depth. A level that
//! never wins on the envelope would never be chosen by an optimal policy —
//! [`PowerLadder::validate`] rejects it as a spec error. This condition is
//! exactly what makes per-level break-even thresholds monotone (deeper
//! levels ⇒ longer break-even; see `breakeven` and its property tests).

use serde::{Deserialize, Serialize};

use crate::spec::DiskSpec;

/// One rung of the power-state ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLevel {
    /// Short stable name (`"idle"`, `"lowrpm"`, `"standby"`, …) used in
    /// reports and energy tables.
    pub name: String,
    /// Power draw while resident at this level, watts.
    pub power_w: f64,
    /// Time to descend into this level from the level above, seconds
    /// (0 for level 0, which is never entered by descent).
    pub entry_time_s: f64,
    /// Power drawn during the descent into this level, watts.
    pub entry_power_w: f64,
    /// Time to wake from this level back to level 0, seconds (0 for
    /// level 0).
    pub exit_time_s: f64,
    /// Power drawn while waking from this level, watts.
    pub exit_power_w: f64,
    /// Service-rate factor for levels that can still serve requests
    /// (e.g. a low-RPM level on a multi-speed drive), in (0, 1]. The
    /// replay engine models all saving levels as non-operational (it
    /// always wakes to level 0 before serving, matching the paper's
    /// model), so today this field only participates in validation; it is
    /// the declared hook for operational-level service modelling.
    pub service_rate_factor: f64,
}

impl PowerLevel {
    /// The full-speed operational level (level 0) for a given idle power.
    pub fn operational(idle_power_w: f64) -> Self {
        PowerLevel {
            name: "idle".to_owned(),
            power_w: idle_power_w,
            entry_time_s: 0.0,
            entry_power_w: 0.0,
            exit_time_s: 0.0,
            exit_power_w: 0.0,
            service_rate_factor: 1.0,
        }
    }

    /// Energy (joules) of this level's entry transition.
    pub fn entry_energy_j(&self) -> f64 {
        self.entry_time_s * self.entry_power_w
    }

    /// Energy (joules) of this level's exit transition.
    pub fn exit_energy_j(&self) -> f64 {
        self.exit_time_s * self.exit_power_w
    }
}

/// Errors produced while validating a [`PowerLadder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LadderError {
    /// The ladder has no levels at all.
    Empty,
    /// The ladder has no power-saving levels (only level 0). Model a
    /// drive that never saves power with `ThresholdPolicy::Never`, not a
    /// one-level ladder — every ladder consumer (break-even analysis,
    /// descent policies) assumes at least one saving level exists.
    NoSavingLevels,
    /// The ladder has more levels than the engine's `u8` level indices
    /// (and any physical drive) can use.
    TooDeep {
        /// Number of levels supplied.
        levels: usize,
    },
    /// A level field that must be finite and within range was not.
    BadField {
        /// Level index.
        level: usize,
        /// Field name.
        field: &'static str,
    },
    /// Resident power must strictly decrease with depth, otherwise the
    /// deeper level can never save energy.
    PowerNotDecreasing {
        /// The offending level (draws ≥ the level above).
        level: usize,
    },
    /// A level is dominated: its cost line never appears on the lower
    /// envelope, so no optimal policy would ever rest there (its pairwise
    /// break-even is not longer than the shallower level's).
    DominatedLevel {
        /// The offending level.
        level: usize,
    },
}

impl std::fmt::Display for LadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderError::Empty => write!(f, "power ladder has no levels"),
            LadderError::NoSavingLevels => {
                write!(
                    f,
                    "power ladder needs at least one saving level below level 0 \
                     (use ThresholdPolicy::Never for a drive that never sleeps)"
                )
            }
            LadderError::TooDeep { levels } => {
                write!(f, "power ladder has {levels} levels (max 16)")
            }
            LadderError::BadField { level, field } => {
                write!(f, "ladder level {level} field `{field}` out of range")
            }
            LadderError::PowerNotDecreasing { level } => {
                write!(
                    f,
                    "ladder level {level} does not draw less than the level above"
                )
            }
            LadderError::DominatedLevel { level } => {
                write!(
                    f,
                    "ladder level {level} is dominated (its break-even is not \
                     longer than the shallower level's) — it would never be used"
                )
            }
        }
    }
}

impl std::error::Error for LadderError {}

/// Maximum ladder depth (level indices are `u8`, and no drive exposes
/// anywhere near this many states).
pub const MAX_LEVELS: usize = 16;

/// An ordered, validated list of power levels; index 0 is full-speed idle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerLadder {
    levels: Vec<PowerLevel>,
}

impl PowerLadder {
    /// Build and validate a ladder. `levels[0]` must be the operational
    /// level; deeper levels must draw strictly less power and satisfy the
    /// lower-envelope (non-domination) condition.
    pub fn new(levels: Vec<PowerLevel>) -> Result<Self, LadderError> {
        let ladder = PowerLadder { levels };
        ladder.validate()?;
        Ok(ladder)
    }

    /// The canonical two-state ladder of the paper's Figure 1, derived
    /// from a spec's scalar fields: level 0 = Idle, level 1 = Standby with
    /// the spin-down transition as entry and the spin-up transition as
    /// exit. Running a simulation with this ladder set explicitly is
    /// bit-identical to running with no ladder at all.
    pub fn two_state(spec: &DiskSpec) -> Self {
        PowerLadder {
            levels: vec![
                PowerLevel::operational(spec.idle_power_w),
                PowerLevel {
                    name: "standby".to_owned(),
                    power_w: spec.standby_power_w,
                    entry_time_s: spec.spin_down_time_s,
                    entry_power_w: spec.spin_down_power_w,
                    exit_time_s: spec.spin_up_time_s,
                    exit_power_w: spec.spin_up_power_w,
                    service_rate_factor: 1.0,
                },
            ],
        }
    }

    /// A three-level ladder inserting a low-RPM level between idle and
    /// standby, derived proportionally from the spec's constants so every
    /// preset drive produces a valid (non-dominated) ladder:
    ///
    /// - low-RPM draw = standby + 38 % of the idle−standby span (real
    ///   multi-speed drives sit roughly here — e.g. ~4 W between the Table
    ///   2 drive's 9.3 W idle and 0.8 W standby);
    /// - entering low-RPM takes 30 % of the full spin-down time at idle
    ///   power (the platters stay spinning, just slower);
    /// - waking from low-RPM takes 40 % of the full spin-up time at 62.5 %
    ///   of the spin-up power (no full motor start).
    pub fn with_low_rpm(spec: &DiskSpec) -> Self {
        let two = Self::two_state(spec);
        let low = PowerLevel {
            name: "lowrpm".to_owned(),
            power_w: spec.standby_power_w + 0.38 * (spec.idle_power_w - spec.standby_power_w),
            entry_time_s: 0.3 * spec.spin_down_time_s,
            entry_power_w: spec.idle_power_w,
            exit_time_s: 0.4 * spec.spin_up_time_s,
            exit_power_w: 0.625 * spec.spin_up_power_w,
            service_rate_factor: 1.0,
        };
        PowerLadder {
            levels: vec![two.levels[0].clone(), low, two.levels[1].clone()],
        }
    }

    /// Validate the invariants the state machine and policies rely on.
    pub fn validate(&self) -> Result<(), LadderError> {
        if self.levels.is_empty() {
            return Err(LadderError::Empty);
        }
        if self.levels.len() == 1 {
            return Err(LadderError::NoSavingLevels);
        }
        if self.levels.len() > MAX_LEVELS {
            return Err(LadderError::TooDeep {
                levels: self.levels.len(),
            });
        }
        for (i, level) in self.levels.iter().enumerate() {
            let fields = [
                ("power_w", level.power_w, i == 0),
                ("entry_time_s", level.entry_time_s, i == 0),
                ("entry_power_w", level.entry_power_w, true),
                ("exit_time_s", level.exit_time_s, i == 0),
                ("exit_power_w", level.exit_power_w, true),
            ];
            for (field, v, zero_ok) in fields {
                let lo_ok = if zero_ok { v >= 0.0 } else { v > 0.0 };
                if !v.is_finite() || !lo_ok {
                    return Err(LadderError::BadField { level: i, field });
                }
            }
            if !level.service_rate_factor.is_finite()
                || level.service_rate_factor <= 0.0
                || level.service_rate_factor > 1.0
            {
                return Err(LadderError::BadField {
                    level: i,
                    field: "service_rate_factor",
                });
            }
            if i > 0 && level.power_w >= self.levels[i - 1].power_w {
                return Err(LadderError::PowerNotDecreasing { level: i });
            }
        }
        // Lower-envelope condition: pairwise intersection times strictly
        // increasing with depth (see module docs). The intersection of the
        // cost lines of levels l-1 and l is the pairwise break-even
        //   T_l = ΔE_l / ΔP_l
        // with ΔE_l the extra reach-and-wake overhead of level l over
        // level l-1 and ΔP_l the power saved by resting one level deeper.
        let mut last = 0.0;
        for l in 1..self.levels.len() {
            let t = self.pairwise_break_even_s(l);
            if t <= last {
                return Err(LadderError::DominatedLevel { level: l });
            }
            last = t;
        }
        Ok(())
    }

    /// Number of levels, including level 0.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True when the ladder has no levels at all (never the case for a
    /// validated ladder; companion of [`PowerLadder::len`]).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The deepest level index.
    pub fn deepest(&self) -> u8 {
        (self.levels.len() - 1) as u8
    }

    /// The level at `index`.
    ///
    /// # Panics
    /// If the index is out of range (an engine bug, not a config error).
    pub fn level(&self, index: u8) -> &PowerLevel {
        &self.levels[index as usize]
    }

    /// All levels, shallow to deep.
    pub fn levels(&self) -> &[PowerLevel] {
        &self.levels
    }

    /// Extra reach-and-wake energy overhead (joules) of level `l` over
    /// level `l − 1`: the entry transition into `l` plus the difference in
    /// exit costs.
    fn delta_overhead_j(&self, l: usize) -> f64 {
        self.levels[l].entry_energy_j() + self.levels[l].exit_energy_j()
            - self.levels[l - 1].exit_energy_j()
    }

    /// The pairwise break-even time between consecutive levels `l − 1` and
    /// `l`: the residency at `l` needed to recoup the extra transition
    /// overhead. These are exactly the lower-envelope intersection times,
    /// and strictly increase with depth for any valid ladder.
    pub fn pairwise_break_even_s(&self, l: usize) -> f64 {
        assert!(l >= 1 && l < self.levels.len(), "level {l} out of range");
        self.delta_overhead_j(l) / (self.levels[l - 1].power_w - self.levels[l].power_w)
    }

    /// Total reach-and-wake overhead (joules) of descending from level 0
    /// to level `to` and waking from there: every entry transition on the
    /// way down plus the exit transition from `to`.
    pub fn descent_overhead_j(&self, to: u8) -> f64 {
        let to = to as usize;
        assert!(to < self.levels.len(), "level {to} out of range");
        let entries: f64 = self.levels[1..=to]
            .iter()
            .map(PowerLevel::entry_energy_j)
            .sum();
        entries + self.levels[to].exit_energy_j()
    }
}

/// A `Copy`, serialisable handle naming a ladder preset — the sweep-grid
/// dimension (`SweepSpec.ladder`) and the `experiments --ladder` CLI value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LadderChoice {
    /// The canonical two-state Idle ⇄ Standby ladder (the paper's model;
    /// leaves [`DiskSpec::ladder`] unset, so runs are bit-identical to the
    /// pre-ladder engine).
    #[default]
    TwoState,
    /// Three levels: idle / low-RPM / standby
    /// ([`PowerLadder::with_low_rpm`]).
    ThreeState,
}

impl LadderChoice {
    /// Every choice, shallow to deep.
    pub fn all() -> Vec<LadderChoice> {
        vec![LadderChoice::TwoState, LadderChoice::ThreeState]
    }

    /// The explicit ladder for `spec`, or `None` for the canonical
    /// two-state default (derived from the spec's scalar fields).
    pub fn build(&self, spec: &DiskSpec) -> Option<PowerLadder> {
        match self {
            LadderChoice::TwoState => None,
            LadderChoice::ThreeState => Some(PowerLadder::with_low_rpm(spec)),
        }
    }

    /// Apply this choice to a spec (sets or clears [`DiskSpec::ladder`]).
    pub fn apply(&self, spec: &mut DiskSpec) {
        spec.ladder = self.build(spec);
    }

    /// Short stable label for figures and CSV notes.
    pub fn label(&self) -> &'static str {
        match self {
            LadderChoice::TwoState => "2state",
            LadderChoice::ThreeState => "3state",
        }
    }

    /// Parse a CLI value (`2`, `two`, `2state`, `3`, `three`, `3state`).
    pub fn parse(s: &str) -> Option<LadderChoice> {
        match s {
            "2" | "two" | "2state" => Some(LadderChoice::TwoState),
            "3" | "three" | "3state" => Some(LadderChoice::ThreeState),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn two_state_ladder_mirrors_the_scalar_fields() {
        let l = PowerLadder::two_state(&spec());
        assert_eq!(l.len(), 2);
        assert_eq!(l.deepest(), 1);
        assert_eq!(l.level(0).power_w, 9.3);
        assert_eq!(l.level(1).power_w, 0.8);
        assert_eq!(l.level(1).entry_time_s, 10.0);
        assert_eq!(l.level(1).entry_power_w, 9.3);
        assert_eq!(l.level(1).exit_time_s, 15.0);
        assert_eq!(l.level(1).exit_power_w, 24.0);
        l.validate().expect("canonical ladder valid");
        // The descent overhead is the paper's 453 J and the pairwise
        // break-even the paper's 53.3 s.
        assert!((l.descent_overhead_j(1) - 453.0).abs() < 1e-9);
        assert!((l.pairwise_break_even_s(1) - 53.29).abs() < 0.05);
    }

    #[test]
    fn three_state_presets_validate_for_every_drive() {
        for s in [
            DiskSpec::seagate_st3500630as(),
            DiskSpec::enterprise_15k(),
            DiskSpec::archival_5400(),
        ] {
            let l = PowerLadder::with_low_rpm(&s);
            l.validate().unwrap_or_else(|e| panic!("{}: {e}", s.model));
            assert_eq!(l.len(), 3);
            // Envelope order: low-RPM pays off before standby does.
            assert!(l.pairwise_break_even_s(1) < l.pairwise_break_even_s(2));
        }
    }

    #[test]
    fn dominated_level_is_rejected() {
        // A middle level with an enormous wake cost is dominated: going
        // straight to standby is always at least as good.
        let mut levels = PowerLadder::with_low_rpm(&spec()).levels().to_vec();
        levels[1].exit_time_s = 1000.0;
        let err = PowerLadder::new(levels).unwrap_err();
        assert_eq!(err, LadderError::DominatedLevel { level: 2 });
    }

    #[test]
    fn non_decreasing_power_is_rejected() {
        let mut levels = PowerLadder::two_state(&spec()).levels().to_vec();
        levels[1].power_w = 9.3;
        assert_eq!(
            PowerLadder::new(levels).unwrap_err(),
            LadderError::PowerNotDecreasing { level: 1 }
        );
    }

    #[test]
    fn bad_fields_are_rejected() {
        let mut levels = PowerLadder::two_state(&spec()).levels().to_vec();
        levels[1].entry_time_s = 0.0;
        assert!(matches!(
            PowerLadder::new(levels).unwrap_err(),
            LadderError::BadField {
                level: 1,
                field: "entry_time_s"
            }
        ));
        let mut levels = PowerLadder::two_state(&spec()).levels().to_vec();
        levels[0].service_rate_factor = 1.5;
        assert!(matches!(
            PowerLadder::new(levels).unwrap_err(),
            LadderError::BadField {
                level: 0,
                field: "service_rate_factor"
            }
        ));
        assert_eq!(PowerLadder::new(vec![]).unwrap_err(), LadderError::Empty);
        // A level-0-only ladder is rejected up front: downstream consumers
        // (break-even analysis, descent policies) assume a saving level.
        assert_eq!(
            PowerLadder::new(vec![PowerLevel::operational(9.3)]).unwrap_err(),
            LadderError::NoSavingLevels
        );
    }

    #[test]
    fn descent_overhead_accumulates_entries() {
        let l = PowerLadder::with_low_rpm(&spec());
        let e1 = l.level(1).entry_energy_j() + l.level(1).exit_energy_j();
        let e2 =
            l.level(1).entry_energy_j() + l.level(2).entry_energy_j() + l.level(2).exit_energy_j();
        assert!((l.descent_overhead_j(1) - e1).abs() < 1e-12);
        assert!((l.descent_overhead_j(2) - e2).abs() < 1e-12);
        assert!(l.descent_overhead_j(2) > l.descent_overhead_j(1));
    }

    #[test]
    fn ladder_choice_builds_and_labels() {
        let s = spec();
        assert_eq!(LadderChoice::default(), LadderChoice::TwoState);
        assert!(LadderChoice::TwoState.build(&s).is_none());
        assert_eq!(LadderChoice::ThreeState.build(&s).unwrap().len(), 3);
        assert_eq!(LadderChoice::TwoState.label(), "2state");
        assert_eq!(LadderChoice::parse("3"), Some(LadderChoice::ThreeState));
        assert_eq!(LadderChoice::parse("two"), Some(LadderChoice::TwoState));
        assert_eq!(LadderChoice::parse("x"), None);
        let mut s2 = s.clone();
        LadderChoice::ThreeState.apply(&mut s2);
        assert_eq!(s2.ladder.as_ref().unwrap().len(), 3);
        LadderChoice::TwoState.apply(&mut s2);
        assert!(s2.ladder.is_none());
    }

    #[test]
    fn too_deep_ladder_is_rejected() {
        // 17 levels with valid monotone values still trips the depth cap.
        let mut levels = vec![PowerLevel::operational(100.0)];
        for i in 1..=16usize {
            levels.push(PowerLevel {
                name: format!("l{i}"),
                power_w: 100.0 - i as f64 * 5.0,
                entry_time_s: 1.0,
                entry_power_w: 1.0,
                exit_time_s: i as f64 * 40.0,
                exit_power_w: 100.0,
                service_rate_factor: 1.0,
            });
        }
        assert!(matches!(
            PowerLadder::new(levels).unwrap_err(),
            LadderError::TooDeep { levels: 17 }
        ));
    }
}
