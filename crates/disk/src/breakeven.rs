//! Break-even ("idleness threshold") analysis.
//!
//! The paper (following Pinheiro & Bianchini) sets the idleness threshold "to
//! be equal to the time that the disk has to be in the standby mode in order
//! to save the same amount of power that will be consumed by spinning it down
//! to standby mode and subsequently spinning it up to the active mode".
//!
//! Concretely: transitioning costs
//! `E_over = t_down · P_down + t_up · P_up` joules, and every second in
//! standby saves `P_idle − P_standby` watts relative to idling. The
//! break-even standby duration is therefore
//!
//! ```text
//! T_be = (t_down · P_down + t_up · P_up) / (P_idle − P_standby)
//! ```
//!
//! For the Table 2 drive: `(10·9.3 + 15·24) / (9.3 − 0.8) = 453 / 8.5 =
//! 53.29 s` — the paper's 53.3 s. That this falls out of the model is the
//! main cross-check that our power constants are wired correctly.

use crate::ladder::PowerLadder;
use crate::spec::DiskSpec;

/// Energy overhead (joules) of one spin-down/spin-up cycle, excluding any
/// time actually spent in standby. For a drive with an explicit ladder
/// this is the full descent to (and wake from) the deepest level.
pub fn transition_energy_overhead(spec: &DiskSpec) -> f64 {
    match &spec.ladder {
        Some(ladder) => ladder.descent_overhead_j(ladder.deepest()),
        None => {
            spec.spin_down_time_s * spec.spin_down_power_w
                + spec.spin_up_time_s * spec.spin_up_power_w
        }
    }
}

/// The break-even idleness threshold in seconds (see module docs).
///
/// A disk idle for longer than this should have been spun down; the paper
/// uses this value (53.3 s for Table 2) as the default idleness threshold.
/// Generalised over the ladder, this is
/// [`break_even_threshold_between`]`(spec, 0, deepest)` — for the
/// canonical two-state ladder, exactly the paper's formula.
pub fn break_even_threshold(spec: &DiskSpec) -> f64 {
    match &spec.ladder {
        Some(_) => break_even_threshold_between(spec, 0, spec.deepest_level()),
        None => transition_energy_overhead(spec) / (spec.idle_power_w - spec.standby_power_w),
    }
}

/// Extra transition energy (joules) of descending from resident level
/// `from` down to level `to` and eventually waking from there, over
/// staying at `from` and waking from `from`: every entry transition on the
/// way down plus the *difference* in exit costs. For `(0, deepest)` on the
/// two-state ladder this is [`transition_energy_overhead`].
pub fn transition_energy_between(spec: &DiskSpec, from: u8, to: u8) -> f64 {
    assert!(from < to, "descend requires from < to (got {from} → {to})");
    let ladder = spec.power_ladder();
    assert!(
        (to as usize) < ladder.len(),
        "level {to} beyond the ladder's deepest level {}",
        ladder.deepest()
    );
    ladder.descent_overhead_j(to) - ladder.descent_overhead_j(from)
}

/// The break-even residency (seconds) that makes descending from level
/// `from` to level `to` pay off: the extra transition energy divided by
/// the power saved per second of residency at `to` instead of `from`.
///
/// Subsumes [`break_even_threshold`] as the `(0, deepest)` case for the
/// two-state ladder. Valid (lower-envelope) ladders guarantee this is
/// strictly increasing in `to` for any fixed `from` — deeper levels take
/// longer to pay off (property-tested in `tests/properties.rs`).
pub fn break_even_threshold_between(spec: &DiskSpec, from: u8, to: u8) -> f64 {
    let ladder = spec.power_ladder();
    transition_energy_between(spec, from, to)
        / (ladder.level(from).power_w - ladder.level(to).power_w)
}

/// The deterministic lower-envelope descent schedule for a drive: for each
/// saving level `l ≥ 1`, the absolute idle time (seconds since the idle
/// period began) at which the classical multi-state strategy descends into
/// `l` — the intersection times of the per-level cost lines
/// (`T_l = ΔE_l / ΔP_l`, Irani, Shukla & Gupta). Strictly increasing for
/// any valid ladder; `schedule[l - 1]` is level `l`'s descent time.
pub fn envelope_descent_times(ladder: &PowerLadder) -> Vec<f64> {
    (1..ladder.len())
        .map(|l| ladder.pairwise_break_even_s(l))
        .collect()
}

/// Net energy saved (joules; negative = wasted) by spinning down for an idle
/// gap of `gap_s` seconds instead of idling through it.
///
/// Models the gap as: spin down (t_down), stay in standby for the remainder,
/// spin up (t_up) — the spin-up is charged to the gap even if it overruns it,
/// which matches how a request arriving at the end of the gap experiences the
/// disk. For gaps shorter than `t_down + t_up` the standby residency is zero.
pub fn spin_down_gain(spec: &DiskSpec, gap_s: f64) -> f64 {
    let idle_cost = spec.idle_power_w * gap_s;
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let standby_s = (gap_s - transit).max(0.0);
    let sleep_cost = transition_energy_overhead(spec) + standby_s * spec.standby_power_w;
    idle_cost - sleep_cost
}

/// The gap length (seconds) above which [`spin_down_gain`] becomes positive.
///
/// This is the quantity an *offline* optimal power manager thresholds on
/// (see [`crate::reliability`] and the DPM analysis in `spindown-analysis`).
/// It differs from [`break_even_threshold`] in that it accounts for the idle
/// power that would have been drawn during the transition times themselves.
pub fn offline_break_even_gap(spec: &DiskSpec) -> f64 {
    // Solve idle_cost == sleep_cost. Two regimes:
    //  gap ≤ transit:   P_idle · gap = E_over              → gap = E_over / P_idle
    //  gap > transit:   P_idle · gap = E_over + (gap − transit) · P_standby
    let e_over = transition_energy_overhead(spec);
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let short = e_over / spec.idle_power_w;
    if short <= transit {
        short
    } else {
        (e_over - transit * spec.standby_power_w) / (spec.idle_power_w - spec.standby_power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn paper_threshold_is_53_3s() {
        let t = break_even_threshold(&spec());
        assert!(
            (t - 53.3).abs() < 0.05,
            "expected the paper's 53.3 s, got {t:.4}"
        );
    }

    #[test]
    fn transition_overhead_is_453_joules() {
        let e = transition_energy_overhead(&spec());
        assert!((e - 453.0).abs() < 1e-9);
    }

    #[test]
    fn gain_is_negative_for_short_gaps() {
        assert!(spin_down_gain(&spec(), 5.0) < 0.0);
        assert!(spin_down_gain(&spec(), 25.0) < 0.0);
    }

    #[test]
    fn gain_is_positive_for_long_gaps() {
        assert!(spin_down_gain(&spec(), 600.0) > 0.0);
        assert!(spin_down_gain(&spec(), 7200.0) > 0.0);
    }

    #[test]
    fn gain_crosses_zero_at_offline_break_even() {
        let g = offline_break_even_gap(&spec());
        assert!(spin_down_gain(&spec(), g - 1.0) < 0.0);
        assert!(spin_down_gain(&spec(), g + 1.0) > 0.0);
        assert!(spin_down_gain(&spec(), g).abs() < 1e-6);
    }

    #[test]
    fn offline_break_even_close_to_paper_threshold() {
        // The offline gap accounts for idle power during the transitions, so
        // it is a bit shorter than the "standby residency" threshold.
        let offline = offline_break_even_gap(&spec());
        let paper = break_even_threshold(&spec());
        assert!(offline < paper);
        assert!(paper - offline < spec().spin_down_time_s + spec().spin_up_time_s);
    }

    #[test]
    fn gain_is_monotone_in_gap_length() {
        let s = spec();
        let mut last = f64::NEG_INFINITY;
        for gap in [0.0, 10.0, 26.0, 53.0, 100.0, 1000.0] {
            let g = spin_down_gain(&s, gap);
            assert!(g >= last, "gain not monotone at gap={gap}");
            last = g;
        }
    }

    #[test]
    fn between_subsumes_the_two_state_threshold() {
        let s = spec();
        // Without an explicit ladder the generalised form reproduces the
        // paper's formula exactly (same arithmetic, same order).
        assert_eq!(
            break_even_threshold_between(&s, 0, 1),
            break_even_threshold(&s)
        );
        assert_eq!(transition_energy_between(&s, 0, 1), 453.0);
    }

    #[test]
    fn deeper_levels_have_longer_break_evens() {
        let mut s = spec();
        s.ladder = Some(crate::ladder::PowerLadder::with_low_rpm(&s));
        let t01 = break_even_threshold_between(&s, 0, 1);
        let t02 = break_even_threshold_between(&s, 0, 2);
        let t12 = break_even_threshold_between(&s, 1, 2);
        assert!(
            t01 < t02,
            "low-RPM must pay off before standby: {t01} vs {t02}"
        );
        assert!(t12 > 0.0);
        // With an explicit ladder the aggregate threshold is the (0,
        // deepest) case.
        assert_eq!(break_even_threshold(&s), t02);
    }

    #[test]
    fn envelope_times_are_the_pairwise_break_evens() {
        let mut s = spec();
        s.ladder = Some(crate::ladder::PowerLadder::with_low_rpm(&s));
        let lad = s.power_ladder();
        let times = envelope_descent_times(&lad);
        assert_eq!(times.len(), 2);
        assert!(times[0] < times[1], "envelope order: {times:?}");
        assert_eq!(times[0], lad.pairwise_break_even_s(1));
        assert_eq!(times[1], lad.pairwise_break_even_s(2));
        // Two-state ladder: the single envelope time is the paper's 53.3 s.
        let two = spec().power_ladder();
        let t = envelope_descent_times(&two);
        assert_eq!(t.len(), 1);
        assert!((t[0] - 53.29).abs() < 0.05);
    }

    #[test]
    fn short_gap_regime_of_offline_break_even() {
        // A drive whose overhead is so small the break-even lands inside the
        // transition window exercises the first regime.
        let tiny = DiskSpec {
            spin_up_power_w: 0.1,
            spin_down_power_w: 0.1,
            ..spec()
        };
        let g = offline_break_even_gap(&tiny);
        assert!(g <= tiny.spin_down_time_s + tiny.spin_up_time_s);
        assert!((spin_down_gain(&tiny, g)).abs() < 1e-9);
    }
}
