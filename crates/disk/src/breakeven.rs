//! Break-even ("idleness threshold") analysis.
//!
//! The paper (following Pinheiro & Bianchini) sets the idleness threshold "to
//! be equal to the time that the disk has to be in the standby mode in order
//! to save the same amount of power that will be consumed by spinning it down
//! to standby mode and subsequently spinning it up to the active mode".
//!
//! Concretely: transitioning costs
//! `E_over = t_down · P_down + t_up · P_up` joules, and every second in
//! standby saves `P_idle − P_standby` watts relative to idling. The
//! break-even standby duration is therefore
//!
//! ```text
//! T_be = (t_down · P_down + t_up · P_up) / (P_idle − P_standby)
//! ```
//!
//! For the Table 2 drive: `(10·9.3 + 15·24) / (9.3 − 0.8) = 453 / 8.5 =
//! 53.29 s` — the paper's 53.3 s. That this falls out of the model is the
//! main cross-check that our power constants are wired correctly.

use crate::spec::DiskSpec;

/// Energy overhead (joules) of one spin-down/spin-up cycle, excluding any
/// time actually spent in standby.
pub fn transition_energy_overhead(spec: &DiskSpec) -> f64 {
    spec.spin_down_time_s * spec.spin_down_power_w + spec.spin_up_time_s * spec.spin_up_power_w
}

/// The break-even idleness threshold in seconds (see module docs).
///
/// A disk idle for longer than this should have been spun down; the paper
/// uses this value (53.3 s for Table 2) as the default idleness threshold.
pub fn break_even_threshold(spec: &DiskSpec) -> f64 {
    transition_energy_overhead(spec) / (spec.idle_power_w - spec.standby_power_w)
}

/// Net energy saved (joules; negative = wasted) by spinning down for an idle
/// gap of `gap_s` seconds instead of idling through it.
///
/// Models the gap as: spin down (t_down), stay in standby for the remainder,
/// spin up (t_up) — the spin-up is charged to the gap even if it overruns it,
/// which matches how a request arriving at the end of the gap experiences the
/// disk. For gaps shorter than `t_down + t_up` the standby residency is zero.
pub fn spin_down_gain(spec: &DiskSpec, gap_s: f64) -> f64 {
    let idle_cost = spec.idle_power_w * gap_s;
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let standby_s = (gap_s - transit).max(0.0);
    let sleep_cost = transition_energy_overhead(spec) + standby_s * spec.standby_power_w;
    idle_cost - sleep_cost
}

/// The gap length (seconds) above which [`spin_down_gain`] becomes positive.
///
/// This is the quantity an *offline* optimal power manager thresholds on
/// (see [`crate::reliability`] and the DPM analysis in `spindown-analysis`).
/// It differs from [`break_even_threshold`] in that it accounts for the idle
/// power that would have been drawn during the transition times themselves.
pub fn offline_break_even_gap(spec: &DiskSpec) -> f64 {
    // Solve idle_cost == sleep_cost. Two regimes:
    //  gap ≤ transit:   P_idle · gap = E_over              → gap = E_over / P_idle
    //  gap > transit:   P_idle · gap = E_over + (gap − transit) · P_standby
    let e_over = transition_energy_overhead(spec);
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let short = e_over / spec.idle_power_w;
    if short <= transit {
        short
    } else {
        (e_over - transit * spec.standby_power_w) / (spec.idle_power_w - spec.standby_power_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn paper_threshold_is_53_3s() {
        let t = break_even_threshold(&spec());
        assert!(
            (t - 53.3).abs() < 0.05,
            "expected the paper's 53.3 s, got {t:.4}"
        );
    }

    #[test]
    fn transition_overhead_is_453_joules() {
        let e = transition_energy_overhead(&spec());
        assert!((e - 453.0).abs() < 1e-9);
    }

    #[test]
    fn gain_is_negative_for_short_gaps() {
        assert!(spin_down_gain(&spec(), 5.0) < 0.0);
        assert!(spin_down_gain(&spec(), 25.0) < 0.0);
    }

    #[test]
    fn gain_is_positive_for_long_gaps() {
        assert!(spin_down_gain(&spec(), 600.0) > 0.0);
        assert!(spin_down_gain(&spec(), 7200.0) > 0.0);
    }

    #[test]
    fn gain_crosses_zero_at_offline_break_even() {
        let g = offline_break_even_gap(&spec());
        assert!(spin_down_gain(&spec(), g - 1.0) < 0.0);
        assert!(spin_down_gain(&spec(), g + 1.0) > 0.0);
        assert!(spin_down_gain(&spec(), g).abs() < 1e-6);
    }

    #[test]
    fn offline_break_even_close_to_paper_threshold() {
        // The offline gap accounts for idle power during the transitions, so
        // it is a bit shorter than the "standby residency" threshold.
        let offline = offline_break_even_gap(&spec());
        let paper = break_even_threshold(&spec());
        assert!(offline < paper);
        assert!(paper - offline < spec().spin_down_time_s + spec().spin_up_time_s);
    }

    #[test]
    fn gain_is_monotone_in_gap_length() {
        let s = spec();
        let mut last = f64::NEG_INFINITY;
        for gap in [0.0, 10.0, 26.0, 53.0, 100.0, 1000.0] {
            let g = spin_down_gain(&s, gap);
            assert!(g >= last, "gain not monotone at gap={gap}");
            last = g;
        }
    }

    #[test]
    fn short_gap_regime_of_offline_break_even() {
        // A drive whose overhead is so small the break-even lands inside the
        // transition window exercises the first regime.
        let tiny = DiskSpec {
            spin_up_power_w: 0.1,
            spin_down_power_w: 0.1,
            ..spec()
        };
        let g = offline_break_even_gap(&tiny);
        assert!(g <= tiny.spin_down_time_s + tiny.spin_up_time_s);
        assert!((spin_down_gain(&tiny, g)).abs() < 1e-9);
    }
}
