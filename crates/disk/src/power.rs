//! Disk power states (Figure 1 of the paper) and their power draws.

use serde::{Deserialize, Serialize};

use crate::spec::DiskSpec;

/// The power states a drive can be in, following Figure 1 of the paper.
///
/// `Active` covers read/write data transfer; `Seek` is head movement (briefly
/// higher power than transfer on most drives); `Idle` is platters spinning
/// with no command in flight; `Standby` is spun down; `SpinningUp` /
/// `SpinningDown` are the transitions, which take a fixed amount of time and
/// draw their own power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Transferring data (read or write).
    Active,
    /// Moving the head to the target cylinder.
    Seek,
    /// Platters spinning, no work.
    Idle,
    /// Spun down; only the electronics draw power.
    Standby,
    /// Transitioning standby → idle; takes [`DiskSpec::spin_up_time`].
    SpinningUp,
    /// Transitioning idle → standby; takes [`DiskSpec::spin_down_time`].
    SpinningDown,
}

impl PowerState {
    /// All states, in declaration order. Useful for table-driven tests and
    /// for iterating energy breakdowns.
    pub const ALL: [PowerState; 6] = [
        PowerState::Active,
        PowerState::Seek,
        PowerState::Idle,
        PowerState::Standby,
        PowerState::SpinningUp,
        PowerState::SpinningDown,
    ];

    /// Whether the platters are at full rotational speed in this state
    /// (i.e. the disk could begin servicing a request without spinning up).
    pub fn is_spun_up(self) -> bool {
        matches!(
            self,
            PowerState::Active | PowerState::Seek | PowerState::Idle
        )
    }

    /// Whether this is one of the two transitional states.
    pub fn is_transitional(self) -> bool {
        matches!(self, PowerState::SpinningUp | PowerState::SpinningDown)
    }

    /// Short lowercase label, stable across versions (used in reports).
    pub fn label(self) -> &'static str {
        match self {
            PowerState::Active => "active",
            PowerState::Seek => "seek",
            PowerState::Idle => "idle",
            PowerState::Standby => "standby",
            PowerState::SpinningUp => "spinup",
            PowerState::SpinningDown => "spindown",
        }
    }
}

/// Power draw (watts) of `state` for a drive described by `spec`.
pub fn power_of(spec: &DiskSpec, state: PowerState) -> f64 {
    match state {
        PowerState::Active => spec.active_power_w,
        PowerState::Seek => spec.seek_power_w,
        PowerState::Idle => spec.idle_power_w,
        PowerState::Standby => spec.standby_power_w,
        PowerState::SpinningUp => spec.spin_up_power_w,
        PowerState::SpinningDown => spec.spin_down_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DiskSpec;

    #[test]
    fn paper_power_values_match_table2() {
        let spec = DiskSpec::seagate_st3500630as();
        assert_eq!(power_of(&spec, PowerState::Idle), 9.3);
        assert_eq!(power_of(&spec, PowerState::Standby), 0.8);
        assert_eq!(power_of(&spec, PowerState::Active), 13.0);
        assert_eq!(power_of(&spec, PowerState::Seek), 12.6);
        assert_eq!(power_of(&spec, PowerState::SpinningUp), 24.0);
        assert_eq!(power_of(&spec, PowerState::SpinningDown), 9.3);
    }

    #[test]
    fn standby_draws_least_power() {
        let spec = DiskSpec::seagate_st3500630as();
        for state in PowerState::ALL {
            if state != PowerState::Standby {
                assert!(
                    power_of(&spec, state) > power_of(&spec, PowerState::Standby),
                    "{state:?} should draw more than standby"
                );
            }
        }
    }

    #[test]
    fn spun_up_classification() {
        assert!(PowerState::Active.is_spun_up());
        assert!(PowerState::Seek.is_spun_up());
        assert!(PowerState::Idle.is_spun_up());
        assert!(!PowerState::Standby.is_spun_up());
        assert!(!PowerState::SpinningUp.is_spun_up());
        assert!(!PowerState::SpinningDown.is_spun_up());
    }

    #[test]
    fn transitional_classification() {
        let transitional: Vec<_> = PowerState::ALL
            .into_iter()
            .filter(|s| s.is_transitional())
            .collect();
        assert_eq!(
            transitional,
            vec![PowerState::SpinningUp, PowerState::SpinningDown]
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = PowerState::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), PowerState::ALL.len());
    }
}
