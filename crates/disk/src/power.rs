//! Disk power states (Figure 1 of the paper, generalised to the N-level
//! power-state ladder) and their power draws.

use serde::{Deserialize, Serialize};

use crate::spec::DiskSpec;

/// The power states a drive can be in.
///
/// `Active` covers read/write data transfer; `Seek` is head movement
/// (briefly higher power than transfer on most drives); `Idle` is the
/// ladder's level 0 — platters at full speed with no command in flight.
/// The remaining three variants carry a ladder level `l ≥ 1`:
/// `Sleeping(l)` is resident at power-saving level `l`, `Descending(l)` is
/// the entry transition into level `l` (from level `l − 1`), and
/// `Waking(l)` is the exit transition from level `l` back to `Idle`.
///
/// For the canonical two-state ladder (the paper's Figure 1) the legacy
/// names are provided as associated constants: [`PowerState::Standby`] is
/// `Sleeping(1)`, [`PowerState::SpinningDown`] is `Descending(1)` and
/// [`PowerState::SpinningUp`] is `Waking(1)`. They compare, match and
/// print exactly as the old enum variants did, so two-state code reads
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Transferring data (read or write).
    Active,
    /// Moving the head to the target cylinder.
    Seek,
    /// Ladder level 0: platters spinning at full speed, no work.
    Idle,
    /// Resident at power-saving ladder level `l ≥ 1`.
    Sleeping(u8),
    /// Entry transition into level `l` from level `l − 1`; takes the
    /// level's `entry_time_s`.
    Descending(u8),
    /// Exit transition from level `l` back to [`PowerState::Idle`]; takes
    /// the level's `exit_time_s`.
    Waking(u8),
}

#[allow(non_upper_case_globals)]
impl PowerState {
    /// The canonical two-state ladder's spun-down level (`Sleeping(1)`).
    pub const Standby: PowerState = PowerState::Sleeping(1);
    /// The canonical two-state spin-up transition (`Waking(1)`).
    pub const SpinningUp: PowerState = PowerState::Waking(1);
    /// The canonical two-state spin-down transition (`Descending(1)`).
    pub const SpinningDown: PowerState = PowerState::Descending(1);

    /// The states of the canonical two-state ladder, in the order the
    /// original fixed enum declared them. Kept for two-state table-driven
    /// tests; ladder-aware code should iterate
    /// [`states_of`](crate::power::states_of) instead, which covers every
    /// level of an N-level ladder.
    pub const ALL: [PowerState; 6] = [
        PowerState::Active,
        PowerState::Seek,
        PowerState::Idle,
        PowerState::Standby,
        PowerState::SpinningUp,
        PowerState::SpinningDown,
    ];

    /// Whether the platters are at full rotational speed in this state
    /// (i.e. the disk could begin servicing a request without waking).
    pub fn is_spun_up(self) -> bool {
        matches!(
            self,
            PowerState::Active | PowerState::Seek | PowerState::Idle
        )
    }

    /// Whether this is a transitional (entry or exit) state.
    pub fn is_transitional(self) -> bool {
        matches!(self, PowerState::Waking(_) | PowerState::Descending(_))
    }

    /// The ladder level this state is resident at or transitioning
    /// to/from; `None` for the operational states (`Active`/`Seek`/`Idle`
    /// are all level 0 but carry no saving level).
    pub fn level(self) -> Option<u8> {
        match self {
            PowerState::Sleeping(l) | PowerState::Descending(l) | PowerState::Waking(l) => Some(l),
            _ => None,
        }
    }

    /// Short lowercase label, stable across versions (used in reports).
    /// Two-state ladder states keep the original labels (`standby`,
    /// `spinup`, `spindown`); deeper levels append their index
    /// (`sleep2`, `enter2`, `wake2`, …).
    pub fn label(self) -> String {
        match self {
            PowerState::Active => "active".to_owned(),
            PowerState::Seek => "seek".to_owned(),
            PowerState::Idle => "idle".to_owned(),
            PowerState::Sleeping(1) => "standby".to_owned(),
            PowerState::Waking(1) => "spinup".to_owned(),
            PowerState::Descending(1) => "spindown".to_owned(),
            PowerState::Sleeping(l) => format!("sleep{l}"),
            PowerState::Waking(l) => format!("wake{l}"),
            PowerState::Descending(l) => format!("enter{l}"),
        }
    }
}

/// Every state of a `k`-level ladder (levels 0..k−1), operational states
/// first, then per-level `(Sleeping, Descending, Waking)` triples shallow
/// to deep — the table-driven iteration order of
/// [`EnergyBreakdown`](crate::energy::EnergyBreakdown).
pub fn states_of(levels: usize) -> Vec<PowerState> {
    let mut v = vec![PowerState::Active, PowerState::Seek, PowerState::Idle];
    for l in 1..levels {
        let l = l as u8;
        v.push(PowerState::Sleeping(l));
        v.push(PowerState::Descending(l));
        v.push(PowerState::Waking(l));
    }
    v
}

/// Power draw (watts) of `state` for a drive described by `spec`.
///
/// Level-carrying states read the spec's explicit [`DiskSpec::ladder`]
/// when one is set; otherwise they fall back to the scalar two-state
/// fields (level 1 only — deeper levels without an explicit ladder are an
/// engine bug).
pub fn power_of(spec: &DiskSpec, state: PowerState) -> f64 {
    match state {
        PowerState::Active => spec.active_power_w,
        PowerState::Seek => spec.seek_power_w,
        PowerState::Idle => spec.idle_power_w,
        PowerState::Sleeping(l) => match &spec.ladder {
            Some(ladder) => ladder.level(l).power_w,
            None => {
                debug_assert_eq!(l, 1, "level {l} without an explicit ladder");
                spec.standby_power_w
            }
        },
        PowerState::Descending(l) => match &spec.ladder {
            Some(ladder) => ladder.level(l).entry_power_w,
            None => {
                debug_assert_eq!(l, 1, "level {l} without an explicit ladder");
                spec.spin_down_power_w
            }
        },
        PowerState::Waking(l) => match &spec.ladder {
            Some(ladder) => ladder.level(l).exit_power_w,
            None => {
                debug_assert_eq!(l, 1, "level {l} without an explicit ladder");
                spec.spin_up_power_w
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::PowerLadder;
    use crate::spec::DiskSpec;

    #[test]
    fn paper_power_values_match_table2() {
        let spec = DiskSpec::seagate_st3500630as();
        assert_eq!(power_of(&spec, PowerState::Idle), 9.3);
        assert_eq!(power_of(&spec, PowerState::Standby), 0.8);
        assert_eq!(power_of(&spec, PowerState::Active), 13.0);
        assert_eq!(power_of(&spec, PowerState::Seek), 12.6);
        assert_eq!(power_of(&spec, PowerState::SpinningUp), 24.0);
        assert_eq!(power_of(&spec, PowerState::SpinningDown), 9.3);
    }

    #[test]
    fn legacy_aliases_are_the_level_1_states() {
        assert_eq!(PowerState::Standby, PowerState::Sleeping(1));
        assert_eq!(PowerState::SpinningUp, PowerState::Waking(1));
        assert_eq!(PowerState::SpinningDown, PowerState::Descending(1));
    }

    #[test]
    fn explicit_ladder_drives_the_level_states() {
        let mut spec = DiskSpec::seagate_st3500630as();
        spec.ladder = Some(PowerLadder::with_low_rpm(&spec));
        let lad = spec.ladder.clone().unwrap();
        assert_eq!(
            power_of(&spec, PowerState::Sleeping(1)),
            lad.level(1).power_w
        );
        assert_eq!(
            power_of(&spec, PowerState::Descending(2)),
            lad.level(2).entry_power_w
        );
        assert_eq!(
            power_of(&spec, PowerState::Waking(2)),
            lad.level(2).exit_power_w
        );
        // Deepest level of the 3-ladder matches the scalar standby fields
        // (the preset reuses them for its deepest level).
        assert_eq!(power_of(&spec, PowerState::Sleeping(2)), 0.8);
    }

    #[test]
    fn standby_draws_least_power() {
        let spec = DiskSpec::seagate_st3500630as();
        for state in PowerState::ALL {
            if state != PowerState::Standby {
                assert!(
                    power_of(&spec, state) > power_of(&spec, PowerState::Standby),
                    "{state:?} should draw more than standby"
                );
            }
        }
    }

    #[test]
    fn spun_up_classification() {
        assert!(PowerState::Active.is_spun_up());
        assert!(PowerState::Seek.is_spun_up());
        assert!(PowerState::Idle.is_spun_up());
        assert!(!PowerState::Standby.is_spun_up());
        assert!(!PowerState::SpinningUp.is_spun_up());
        assert!(!PowerState::SpinningDown.is_spun_up());
        assert!(!PowerState::Sleeping(2).is_spun_up());
    }

    #[test]
    fn transitional_classification() {
        let transitional: Vec<_> = PowerState::ALL
            .into_iter()
            .filter(|s| s.is_transitional())
            .collect();
        assert_eq!(
            transitional,
            vec![PowerState::SpinningUp, PowerState::SpinningDown]
        );
        assert!(PowerState::Descending(3).is_transitional());
        assert!(!PowerState::Sleeping(3).is_transitional());
    }

    #[test]
    fn level_extraction() {
        assert_eq!(PowerState::Idle.level(), None);
        assert_eq!(PowerState::Active.level(), None);
        assert_eq!(PowerState::Sleeping(2).level(), Some(2));
        assert_eq!(PowerState::Standby.level(), Some(1));
    }

    #[test]
    fn labels_are_unique_across_a_deep_ladder() {
        let mut labels: Vec<_> = states_of(4).iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 3 + 3 * 3);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3 + 3 * 3);
        // Two-state labels are the original ones.
        assert_eq!(PowerState::Standby.label(), "standby");
        assert_eq!(PowerState::SpinningUp.label(), "spinup");
        assert_eq!(PowerState::SpinningDown.label(), "spindown");
    }

    #[test]
    fn states_of_two_levels_matches_legacy_all() {
        let mut two: Vec<_> = states_of(2);
        let mut all = PowerState::ALL.to_vec();
        two.sort_by_key(|s| format!("{s:?}"));
        all.sort_by_key(|s| format!("{s:?}"));
        assert_eq!(two, all);
    }
}
