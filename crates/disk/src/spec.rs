//! Static drive descriptions ([`DiskSpec`]) and a validating builder.
//!
//! The canonical instance is [`DiskSpec::seagate_st3500630as`], Table 2 of
//! the paper. A couple of additional presets are provided for sensitivity
//! studies (a fast enterprise-class drive and an archival low-RPM drive).

use serde::{Deserialize, Serialize};

use crate::ladder::{LadderError, PowerLadder};
use crate::GB;

/// Errors produced while validating a [`DiskSpecBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A field that must be strictly positive was zero or negative.
    NonPositive(&'static str),
    /// A field that must be finite was NaN or infinite.
    NotFinite(&'static str),
    /// Standby power must be strictly below idle power, otherwise spinning
    /// down can never save energy and the break-even threshold is undefined.
    StandbyNotBelowIdle,
    /// An explicit power-state ladder failed its own validation.
    Ladder(LadderError),
    /// An explicit ladder's level 0 must draw exactly the spec's idle
    /// power — the scalar fields and the ladder describe the same drive.
    LadderIdleMismatch,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NonPositive(field) => {
                write!(f, "disk spec field `{field}` must be > 0")
            }
            SpecError::NotFinite(field) => {
                write!(f, "disk spec field `{field}` must be finite")
            }
            SpecError::StandbyNotBelowIdle => {
                write!(f, "standby power must be strictly below idle power")
            }
            SpecError::Ladder(e) => write!(f, "power ladder invalid: {e}"),
            SpecError::LadderIdleMismatch => {
                write!(f, "ladder level 0 power must equal idle_power_w")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Static characteristics of a hard drive.
///
/// Field values for the default spec come from Table 2 of the paper
/// (Seagate ST3500630AS, 7200 rpm SATA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskSpec {
    /// Human-readable model name.
    pub model: String,
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Sustained transfer rate in bytes/second (the paper's "disk load").
    pub transfer_rate_bps: f64,
    /// Average seek time in seconds.
    pub avg_seek_s: f64,
    /// Average rotational latency in seconds (half a revolution).
    pub avg_rotation_s: f64,
    /// Power draw while transferring data, watts.
    pub active_power_w: f64,
    /// Power draw while seeking, watts.
    pub seek_power_w: f64,
    /// Power draw while idle (spinning, no command), watts.
    pub idle_power_w: f64,
    /// Power draw in standby (spun down), watts.
    pub standby_power_w: f64,
    /// Power draw during spin-up, watts.
    pub spin_up_power_w: f64,
    /// Power draw during spin-down, watts.
    pub spin_down_power_w: f64,
    /// Time to spin up from standby to idle, seconds.
    pub spin_up_time_s: f64,
    /// Time to spin down from idle to standby, seconds.
    pub spin_down_time_s: f64,
    /// Optional explicit power-state ladder. `None` (the default, and what
    /// every preset ships) means the canonical two-state ladder derived
    /// from the scalar fields above — bit-identical to the pre-ladder
    /// engine. Set a deeper ladder (e.g. [`PowerLadder::with_low_rpm`])
    /// to model multi-level (partial-RPM) spin-downs; level 0 must then
    /// draw exactly `idle_power_w`.
    pub ladder: Option<PowerLadder>,
}

impl DiskSpec {
    /// The paper's drive: Seagate ST3500630AS (Table 2).
    ///
    /// 500 GB, 72 MB/s, 8.5 ms avg seek, 4.16 ms avg rotation, and the power
    /// figures of Figure 1 / Table 2. Its derived break-even threshold is the
    /// paper's 53.3 s (see [`crate::breakeven`]).
    pub fn seagate_st3500630as() -> Self {
        DiskSpec {
            model: "Seagate ST3500630AS".to_owned(),
            capacity_bytes: 500 * GB,
            transfer_rate_bps: 72.0e6,
            avg_seek_s: 8.5e-3,
            avg_rotation_s: 4.16e-3,
            active_power_w: 13.0,
            seek_power_w: 12.6,
            idle_power_w: 9.3,
            standby_power_w: 0.8,
            spin_up_power_w: 24.0,
            spin_down_power_w: 9.3,
            spin_up_time_s: 15.0,
            spin_down_time_s: 10.0,
            ladder: None,
        }
    }

    /// A synthetic fast enterprise drive (shorter seek, higher transfer rate,
    /// higher power) for sensitivity studies.
    pub fn enterprise_15k() -> Self {
        DiskSpec {
            model: "Synthetic Enterprise 15k".to_owned(),
            capacity_bytes: 300 * GB,
            transfer_rate_bps: 120.0e6,
            avg_seek_s: 3.5e-3,
            avg_rotation_s: 2.0e-3,
            active_power_w: 17.0,
            seek_power_w: 16.5,
            idle_power_w: 12.0,
            standby_power_w: 1.2,
            spin_up_power_w: 30.0,
            spin_down_power_w: 12.0,
            spin_up_time_s: 10.0,
            spin_down_time_s: 8.0,
            ladder: None,
        }
    }

    /// A synthetic archival drive (low RPM, low power, slow spin-up) for
    /// sensitivity studies — MAID/Pergamum-style deployments.
    pub fn archival_5400() -> Self {
        DiskSpec {
            model: "Synthetic Archival 5400".to_owned(),
            capacity_bytes: 1000 * GB,
            transfer_rate_bps: 45.0e6,
            avg_seek_s: 12.0e-3,
            avg_rotation_s: 5.55e-3,
            active_power_w: 8.0,
            seek_power_w: 7.8,
            idle_power_w: 5.0,
            standby_power_w: 0.4,
            spin_up_power_w: 18.0,
            spin_down_power_w: 5.0,
            spin_up_time_s: 20.0,
            spin_down_time_s: 12.0,
            ladder: None,
        }
    }

    /// Start building a custom spec from this one.
    pub fn to_builder(&self) -> DiskSpecBuilder {
        DiskSpecBuilder { spec: self.clone() }
    }

    /// Capacity in bytes as `f64` (convenience for normalised packing).
    pub fn capacity_bytes_f64(&self) -> f64 {
        self.capacity_bytes as f64
    }

    /// The drive's power-state ladder: the explicit one when set,
    /// otherwise the canonical two-state ladder derived from the scalar
    /// fields ([`PowerLadder::two_state`]).
    pub fn power_ladder(&self) -> PowerLadder {
        match &self.ladder {
            Some(ladder) => ladder.clone(),
            None => PowerLadder::two_state(self),
        }
    }

    /// Deepest ladder level index (1 for the canonical two-state ladder).
    pub fn deepest_level(&self) -> u8 {
        match &self.ladder {
            Some(ladder) => ladder.deepest(),
            None => 1,
        }
    }

    /// Entry-transition duration into level `l` (the spin-down time for
    /// the canonical two-state ladder's level 1), seconds.
    pub fn level_entry_time_s(&self, l: u8) -> f64 {
        match &self.ladder {
            Some(ladder) => ladder.level(l).entry_time_s,
            None => {
                debug_assert_eq!(l, 1, "level {l} without an explicit ladder");
                self.spin_down_time_s
            }
        }
    }

    /// Exit-transition (wake) duration from level `l` back to idle,
    /// seconds (the spin-up time for the two-state ladder's level 1).
    pub fn level_exit_time_s(&self, l: u8) -> f64 {
        match &self.ladder {
            Some(ladder) => ladder.level(l).exit_time_s,
            None => {
                debug_assert_eq!(l, 1, "level {l} without an explicit ladder");
                self.spin_up_time_s
            }
        }
    }

    /// Replace the ladder (builder-style convenience; `None` restores the
    /// canonical two-state default).
    pub fn with_ladder(mut self, ladder: Option<PowerLadder>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Validate the invariants the rest of the crate relies on.
    pub fn validate(&self) -> Result<(), SpecError> {
        let positives: [(&'static str, f64); 10] = [
            ("transfer_rate_bps", self.transfer_rate_bps),
            ("avg_seek_s", self.avg_seek_s),
            ("avg_rotation_s", self.avg_rotation_s),
            ("active_power_w", self.active_power_w),
            ("seek_power_w", self.seek_power_w),
            ("idle_power_w", self.idle_power_w),
            ("spin_up_power_w", self.spin_up_power_w),
            ("spin_down_power_w", self.spin_down_power_w),
            ("spin_up_time_s", self.spin_up_time_s),
            ("spin_down_time_s", self.spin_down_time_s),
        ];
        for (name, v) in positives {
            if !v.is_finite() {
                return Err(SpecError::NotFinite(name));
            }
            if v <= 0.0 {
                return Err(SpecError::NonPositive(name));
            }
        }
        if !self.standby_power_w.is_finite() {
            return Err(SpecError::NotFinite("standby_power_w"));
        }
        if self.standby_power_w < 0.0 {
            return Err(SpecError::NonPositive("standby_power_w"));
        }
        if self.capacity_bytes == 0 {
            return Err(SpecError::NonPositive("capacity_bytes"));
        }
        if self.standby_power_w >= self.idle_power_w {
            return Err(SpecError::StandbyNotBelowIdle);
        }
        if let Some(ladder) = &self.ladder {
            ladder.validate().map_err(SpecError::Ladder)?;
            if ladder.level(0).power_w != self.idle_power_w {
                return Err(SpecError::LadderIdleMismatch);
            }
        }
        Ok(())
    }
}

impl Default for DiskSpec {
    fn default() -> Self {
        DiskSpec::seagate_st3500630as()
    }
}

/// Fluent builder over [`DiskSpec`] with validation at `build()` time.
#[derive(Debug, Clone, Default)]
pub struct DiskSpecBuilder {
    spec: DiskSpec,
}

macro_rules! builder_setter {
    ($(#[$doc:meta])* $name:ident: $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.spec.$name = value;
            self
        }
    };
}

impl DiskSpecBuilder {
    /// Start from the paper's drive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the model name.
    pub fn model(mut self, value: impl Into<String>) -> Self {
        self.spec.model = value.into();
        self
    }

    builder_setter!(
        /// Usable capacity in bytes.
        capacity_bytes: u64
    );
    builder_setter!(
        /// Sustained transfer rate, bytes/second.
        transfer_rate_bps: f64
    );
    builder_setter!(
        /// Average seek time, seconds.
        avg_seek_s: f64
    );
    builder_setter!(
        /// Average rotational latency, seconds.
        avg_rotation_s: f64
    );
    builder_setter!(
        /// Active (transfer) power, watts.
        active_power_w: f64
    );
    builder_setter!(
        /// Seek power, watts.
        seek_power_w: f64
    );
    builder_setter!(
        /// Idle power, watts.
        idle_power_w: f64
    );
    builder_setter!(
        /// Standby power, watts.
        standby_power_w: f64
    );
    builder_setter!(
        /// Spin-up power, watts.
        spin_up_power_w: f64
    );
    builder_setter!(
        /// Spin-down power, watts.
        spin_down_power_w: f64
    );
    builder_setter!(
        /// Spin-up time, seconds.
        spin_up_time_s: f64
    );
    builder_setter!(
        /// Spin-down time, seconds.
        spin_down_time_s: f64
    );
    builder_setter!(
        /// Explicit power-state ladder (`None` = canonical two-state,
        /// derived from the scalar fields).
        ladder: Option<PowerLadder>
    );

    /// Validate and produce the spec.
    pub fn build(self) -> Result<DiskSpec, SpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        DiskSpec::default().validate().expect("Table 2 spec valid");
        DiskSpec::enterprise_15k().validate().expect("valid");
        DiskSpec::archival_5400().validate().expect("valid");
    }

    #[test]
    fn table2_values() {
        let s = DiskSpec::seagate_st3500630as();
        assert_eq!(s.capacity_bytes, 500 * GB);
        assert_eq!(s.transfer_rate_bps, 72.0e6);
        assert_eq!(s.avg_seek_s, 8.5e-3);
        assert_eq!(s.avg_rotation_s, 4.16e-3);
        assert_eq!(s.spin_up_time_s, 15.0);
        assert_eq!(s.spin_down_time_s, 10.0);
    }

    #[test]
    fn builder_roundtrip() {
        let custom = DiskSpecBuilder::new()
            .model("custom")
            .capacity_bytes(42 * GB)
            .transfer_rate_bps(100.0e6)
            .build()
            .unwrap();
        assert_eq!(custom.model, "custom");
        assert_eq!(custom.capacity_bytes, 42 * GB);
        assert_eq!(custom.transfer_rate_bps, 100.0e6);
        // untouched fields come from Table 2
        assert_eq!(custom.idle_power_w, 9.3);
    }

    #[test]
    fn builder_rejects_zero_transfer_rate() {
        let err = DiskSpecBuilder::new()
            .transfer_rate_bps(0.0)
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::NonPositive("transfer_rate_bps"));
    }

    #[test]
    fn builder_rejects_nan() {
        let err = DiskSpecBuilder::new()
            .avg_seek_s(f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::NotFinite("avg_seek_s"));
    }

    #[test]
    fn builder_rejects_standby_at_or_above_idle() {
        let err = DiskSpecBuilder::new()
            .standby_power_w(9.3)
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::StandbyNotBelowIdle);
    }

    #[test]
    fn builder_rejects_zero_capacity() {
        let err = DiskSpecBuilder::new()
            .capacity_bytes(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::NonPositive("capacity_bytes"));
    }

    #[test]
    fn explicit_ladder_validates_through_the_builder() {
        let base = DiskSpec::seagate_st3500630as();
        let ok = DiskSpecBuilder::new()
            .ladder(Some(PowerLadder::with_low_rpm(&base)))
            .build()
            .unwrap();
        assert_eq!(ok.deepest_level(), 2);
        assert_eq!(ok.power_ladder().len(), 3);
        // Level-0 power must match the scalar idle power: a ladder built
        // for a different drive (archival, 5 W idle) cannot describe the
        // Table 2 drive (9.3 W idle).
        let err = DiskSpecBuilder::new()
            .ladder(Some(PowerLadder::with_low_rpm(&DiskSpec::archival_5400())))
            .build()
            .unwrap_err();
        assert_eq!(err, SpecError::LadderIdleMismatch);
    }

    #[test]
    fn derived_ladder_helpers_match_the_scalars() {
        let s = DiskSpec::seagate_st3500630as();
        assert!(s.ladder.is_none());
        assert_eq!(s.deepest_level(), 1);
        assert_eq!(s.level_entry_time_s(1), 10.0);
        assert_eq!(s.level_exit_time_s(1), 15.0);
        let lad = s.power_ladder();
        assert_eq!(lad.len(), 2);
        assert_eq!(lad.level(1).power_w, s.standby_power_w);
    }

    #[test]
    fn error_display_is_informative() {
        assert_eq!(
            SpecError::StandbyNotBelowIdle.to_string(),
            "standby power must be strictly below idle power"
        );
        assert!(SpecError::NonPositive("x").to_string().contains('x'));
        assert!(SpecError::NotFinite("y").to_string().contains('y'));
    }
}
