//! A validated disk power-state machine over the N-level power ladder.
//!
//! [`DiskStateMachine`] enforces the legal transition graph — Figure 1 of
//! the paper, generalised per-level:
//!
//! ```text
//! Idle ⇄ {Seek, Active}                 (instantaneous command handling)
//! Idle → Descending(1) → Sleeping(1)    (takes level 1's entry_time_s)
//! Sleeping(l) → Descending(l+1) → Sleeping(l+1)   (descend one level)
//! Sleeping(l) → Waking(l) → Idle        (takes level l's exit_time_s)
//! ```
//!
//! plus `Seek → Active` (positioning then transfer). Disks wake directly
//! from any level to Idle but descend one level at a time. Transitional
//! states can only be exited after their full duration has elapsed —
//! violating either rule is a bug in the caller (the simulator) and is
//! reported as a [`TransitionError`]. Energy is integrated through an
//! embedded [`EnergyAccountant`].
//!
//! For the canonical two-state ladder the graph and the public
//! convenience API ([`DiskStateMachine::begin_spin_down`] /
//! [`DiskStateMachine::begin_spin_up`]) behave exactly as the original
//! fixed Idle ⇄ Standby machine.

use crate::energy::{AccountingError, EnergyAccountant, EnergyBreakdown};
use crate::power::PowerState;
use crate::spec::DiskSpec;

/// Errors from illegal state-machine use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransitionError {
    /// The requested edge does not exist in the transition graph.
    IllegalEdge {
        /// State the disk was in.
        from: PowerState,
        /// State requested.
        to: PowerState,
    },
    /// A transitional state was exited before its fixed duration elapsed.
    TransitionNotElapsed {
        /// The transitional state being exited.
        state: PowerState,
        /// Seconds remaining.
        remaining: f64,
    },
    /// A level-carrying state referenced a level the drive's ladder does
    /// not have.
    LevelOutOfRange {
        /// The requested state.
        state: PowerState,
        /// The ladder's deepest level.
        deepest: u8,
    },
    /// Underlying accounting failure (time went backwards etc.).
    Accounting(AccountingError),
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionError::IllegalEdge { from, to } => {
                write!(f, "illegal disk state transition {from:?} -> {to:?}")
            }
            TransitionError::TransitionNotElapsed { state, remaining } => {
                write!(f, "{state:?} exited {remaining:.3}s early")
            }
            TransitionError::LevelOutOfRange { state, deepest } => {
                write!(f, "{state:?} beyond the ladder's deepest level {deepest}")
            }
            TransitionError::Accounting(e) => write!(f, "accounting error: {e}"),
        }
    }
}

impl std::error::Error for TransitionError {}

impl From<AccountingError> for TransitionError {
    fn from(e: AccountingError) -> Self {
        TransitionError::Accounting(e)
    }
}

/// A single disk's power-state machine with embedded energy accounting.
#[derive(Debug, Clone)]
pub struct DiskStateMachine {
    spec: DiskSpec,
    deepest: u8,
    state: PowerState,
    state_entered_at: f64,
    accountant: EnergyAccountant,
    spin_downs: u64,
    spin_ups: u64,
}

impl DiskStateMachine {
    /// Create a machine at time `start`, initially `Idle` (spun up, the
    /// state disks boot into).
    pub fn new(spec: DiskSpec, start: f64) -> Self {
        let deepest = spec.deepest_level();
        let accountant = EnergyAccountant::new(spec.clone(), start, PowerState::Idle);
        DiskStateMachine {
            spec,
            deepest,
            state: PowerState::Idle,
            state_entered_at: start,
            accountant,
            spin_downs: 0,
            spin_ups: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// Time the current state was entered.
    pub fn state_entered_at(&self) -> f64 {
        self.state_entered_at
    }

    /// Number of completed descent transitions (entries into any sleeping
    /// level) so far. For the two-state ladder this is exactly the number
    /// of completed spin-downs.
    pub fn spin_downs(&self) -> u64 {
        self.spin_downs
    }

    /// Number of completed wake transitions so far.
    pub fn spin_ups(&self) -> u64 {
        self.spin_ups
    }

    /// The drive spec this machine models.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The deepest ladder level of this drive.
    pub fn deepest_level(&self) -> u8 {
        self.deepest
    }

    /// When the in-flight transitional state (if any) completes.
    pub fn transition_completes_at(&self) -> Option<f64> {
        match self.state {
            PowerState::Descending(l) => {
                Some(self.state_entered_at + self.spec.level_entry_time_s(l))
            }
            PowerState::Waking(l) => Some(self.state_entered_at + self.spec.level_exit_time_s(l)),
            _ => None,
        }
    }

    fn edge_is_legal(from: PowerState, to: PowerState) -> bool {
        use PowerState::*;
        match (from, to) {
            (Idle, Seek)
            | (Idle, Active)
            | (Seek, Active)
            | (Seek, Idle)
            | (Active, Idle)
            | (Active, Seek) => true,
            // Descend one level at a time; the first descent starts at
            // Idle (level 0).
            (Idle, Descending(1)) => true,
            (Sleeping(l), Descending(m)) => m == l + 1,
            (Descending(l), Sleeping(m)) => l == m,
            // Wake directly from any level back to Idle.
            (Sleeping(l), Waking(m)) => l == m,
            (Waking(_), Idle) => true,
            // A failed spin-up: the drive could not come ready and falls
            // back to the level it was waking from. The attempted exit
            // transition's time and energy have already been charged.
            (Waking(l), Sleeping(m)) => l == m,
            _ => false,
        }
    }

    /// Move to `next` at time `now`, validating the edge, the ladder depth
    /// and transitional durations, and charging energy for the state being
    /// left.
    pub fn transition(&mut self, now: f64, next: PowerState) -> Result<(), TransitionError> {
        if let Some(l) = next.level() {
            if l == 0 || l > self.deepest {
                return Err(TransitionError::LevelOutOfRange {
                    state: next,
                    deepest: self.deepest,
                });
            }
        }
        if !Self::edge_is_legal(self.state, next) {
            return Err(TransitionError::IllegalEdge {
                from: self.state,
                to: next,
            });
        }
        if let Some(done_at) = self.transition_completes_at() {
            // Allow tiny float slack: the simulator schedules completion
            // events at exactly `done_at`.
            if now + 1e-9 < done_at {
                return Err(TransitionError::TransitionNotElapsed {
                    state: self.state,
                    remaining: done_at - now,
                });
            }
        }
        self.accountant.transition(now, next)?;
        match next {
            // A failed wake falling back to its sleep level is not a new
            // descent — only entries from a Descending transition count.
            PowerState::Sleeping(_) if !matches!(self.state, PowerState::Waking(_)) => {
                self.spin_downs += 1
            }
            PowerState::Idle if matches!(self.state, PowerState::Waking(_)) => self.spin_ups += 1,
            _ => {}
        }
        self.state = next;
        self.state_entered_at = now;
        Ok(())
    }

    /// Convenience: begin descending one level (from `Idle` into level 1,
    /// or from `Sleeping(l)` into level `l + 1`). Returns the completion
    /// time.
    pub fn begin_descend(&mut self, now: f64) -> Result<f64, TransitionError> {
        let target = match self.state {
            PowerState::Idle => 1,
            PowerState::Sleeping(l) => l + 1,
            other => {
                return Err(TransitionError::IllegalEdge {
                    from: other,
                    to: PowerState::Descending(1),
                })
            }
        };
        self.transition(now, PowerState::Descending(target))?;
        Ok(now + self.spec.level_entry_time_s(target))
    }

    /// Convenience: begin spinning down (must currently be `Idle`). Returns
    /// the completion time. For the two-state ladder this is the whole
    /// descent; deeper ladders continue with [`Self::begin_descend`].
    pub fn begin_spin_down(&mut self, now: f64) -> Result<f64, TransitionError> {
        if self.state != PowerState::Idle {
            return Err(TransitionError::IllegalEdge {
                from: self.state,
                to: PowerState::SpinningDown,
            });
        }
        self.begin_descend(now)
    }

    /// Convenience: begin waking (must currently be sleeping at some
    /// level). Returns the completion time.
    pub fn begin_spin_up(&mut self, now: f64) -> Result<f64, TransitionError> {
        let level = match self.state {
            PowerState::Sleeping(l) => l,
            other => {
                return Err(TransitionError::IllegalEdge {
                    from: other,
                    to: PowerState::SpinningUp,
                })
            }
        };
        self.transition(now, PowerState::Waking(level))?;
        Ok(now + self.spec.level_exit_time_s(level))
    }

    /// Convenience: a spin-up attempt fails at its completion time — the
    /// drive could not come ready and falls back to the sleep level it was
    /// waking from (must currently be `Waking(l)`; `now` must be at or
    /// past the transition's completion). The attempted exit transition's
    /// time and energy remain charged; neither cycle counter moves.
    /// Returns the level the drive fell back to.
    pub fn fail_spin_up(&mut self, now: f64) -> Result<u8, TransitionError> {
        let level = match self.state {
            PowerState::Waking(l) => l,
            other => {
                return Err(TransitionError::IllegalEdge {
                    from: other,
                    to: PowerState::Sleeping(1),
                })
            }
        };
        self.transition(now, PowerState::Sleeping(level))?;
        Ok(level)
    }

    /// Close the books at `now` and return the energy breakdown.
    pub fn finish(mut self, now: f64) -> Result<EnergyBreakdown, TransitionError> {
        self.accountant.finish(now)?;
        Ok(self.accountant.into_breakdown())
    }

    /// Peek at the accumulated breakdown without finishing.
    pub fn breakdown_so_far(&self) -> &EnergyBreakdown {
        self.accountant.breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::PowerLadder;

    fn machine() -> DiskStateMachine {
        DiskStateMachine::new(DiskSpec::seagate_st3500630as(), 0.0)
    }

    fn three_level_machine() -> DiskStateMachine {
        let mut spec = DiskSpec::seagate_st3500630as();
        spec.ladder = Some(PowerLadder::with_low_rpm(&spec));
        DiskStateMachine::new(spec, 0.0)
    }

    #[test]
    fn starts_idle() {
        let m = machine();
        assert_eq!(m.state(), PowerState::Idle);
        assert_eq!(m.spin_ups(), 0);
        assert_eq!(m.spin_downs(), 0);
        assert_eq!(m.deepest_level(), 1);
    }

    #[test]
    fn full_power_cycle() {
        let mut m = machine();
        let down_done = m.begin_spin_down(100.0).unwrap();
        assert_eq!(down_done, 110.0);
        m.transition(down_done, PowerState::Standby).unwrap();
        assert_eq!(m.spin_downs(), 1);
        let up_done = m.begin_spin_up(500.0).unwrap();
        assert_eq!(up_done, 515.0);
        m.transition(up_done, PowerState::Idle).unwrap();
        assert_eq!(m.spin_ups(), 1);
        let b = m.finish(600.0).unwrap();
        assert!((b.total_seconds() - 600.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Standby) - 390.0).abs() < 1e-9);
    }

    #[test]
    fn three_level_descent_and_direct_wake() {
        let mut m = three_level_machine();
        let lad = m.spec().power_ladder();
        assert_eq!(m.deepest_level(), 2);
        // Idle → low-RPM.
        let d1 = m.begin_descend(100.0).unwrap();
        assert!((d1 - (100.0 + lad.level(1).entry_time_s)).abs() < 1e-12);
        m.transition(d1, PowerState::Sleeping(1)).unwrap();
        assert_eq!(m.spin_downs(), 1);
        // Low-RPM → standby.
        let d2 = m.begin_descend(200.0).unwrap();
        assert!((d2 - (200.0 + lad.level(2).entry_time_s)).abs() < 1e-12);
        m.transition(d2, PowerState::Sleeping(2)).unwrap();
        assert_eq!(m.spin_downs(), 2);
        // Wake straight from the deepest level.
        let up = m.begin_spin_up(500.0).unwrap();
        assert!((up - (500.0 + lad.level(2).exit_time_s)).abs() < 1e-12);
        m.transition(up, PowerState::Idle).unwrap();
        assert_eq!(m.spin_ups(), 1);
        let b = m.finish(600.0).unwrap();
        assert!((b.total_seconds() - 600.0).abs() < 1e-9);
        assert!(b.seconds_in(PowerState::Sleeping(1)) > 0.0);
        assert!(b.seconds_in(PowerState::Sleeping(2)) > 0.0);
    }

    #[test]
    fn wake_from_intermediate_level() {
        let mut m = three_level_machine();
        let d1 = m.begin_descend(10.0).unwrap();
        m.transition(d1, PowerState::Sleeping(1)).unwrap();
        let up = m.begin_spin_up(50.0).unwrap();
        let exit = m.spec().power_ladder().level(1).exit_time_s;
        assert!((up - (50.0 + exit)).abs() < 1e-12);
        m.transition(up, PowerState::Idle).unwrap();
        assert_eq!(m.spin_ups(), 1);
    }

    #[test]
    fn cannot_skip_levels_descending() {
        let mut m = three_level_machine();
        let err = m.transition(1.0, PowerState::Descending(2)).unwrap_err();
        assert!(matches!(err, TransitionError::IllegalEdge { .. }));
    }

    #[test]
    fn levels_beyond_the_ladder_are_rejected() {
        let mut m = machine();
        let err = m.transition(1.0, PowerState::Descending(2)).unwrap_err();
        assert_eq!(
            err,
            TransitionError::LevelOutOfRange {
                state: PowerState::Descending(2),
                deepest: 1
            }
        );
        // A two-state machine cannot descend below its single level.
        let d = m.begin_spin_down(10.0).unwrap();
        m.transition(d, PowerState::Standby).unwrap();
        assert!(m.begin_descend(100.0).is_err());
    }

    #[test]
    fn service_cycle_idle_seek_active_idle() {
        let mut m = machine();
        m.transition(1.0, PowerState::Seek).unwrap();
        m.transition(1.0085, PowerState::Active).unwrap();
        m.transition(8.0, PowerState::Idle).unwrap();
        let b = m.finish(10.0).unwrap();
        assert!((b.seconds_in(PowerState::Seek) - 0.0085).abs() < 1e-12);
        assert!((b.seconds_in(PowerState::Active) - (8.0 - 1.0085)).abs() < 1e-12);
    }

    #[test]
    fn illegal_edges_rejected() {
        let mut m = machine();
        // Idle cannot jump straight to Standby.
        let err = m.transition(1.0, PowerState::Standby).unwrap_err();
        assert_eq!(
            err,
            TransitionError::IllegalEdge {
                from: PowerState::Idle,
                to: PowerState::Standby
            }
        );
        // Idle cannot "spin up".
        assert!(m.transition(1.0, PowerState::SpinningUp).is_err());
    }

    #[test]
    fn cannot_cut_spin_down_short() {
        let mut m = machine();
        m.begin_spin_down(0.0).unwrap();
        let err = m.transition(5.0, PowerState::Standby).unwrap_err();
        match err {
            TransitionError::TransitionNotElapsed { state, remaining } => {
                assert_eq!(state, PowerState::SpinningDown);
                assert!((remaining - 5.0).abs() < 1e-9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cannot_cut_spin_up_short() {
        let mut m = machine();
        m.begin_spin_down(0.0).unwrap();
        m.transition(10.0, PowerState::Standby).unwrap();
        m.begin_spin_up(20.0).unwrap();
        assert!(m.transition(30.0, PowerState::Idle).is_err());
        assert!(m.transition(35.0, PowerState::Idle).is_ok());
    }

    #[test]
    fn spin_down_requires_idle() {
        let mut m = machine();
        m.transition(0.0, PowerState::Active).unwrap();
        assert!(m.begin_spin_down(1.0).is_err());
    }

    #[test]
    fn transition_completion_times() {
        let mut m = machine();
        assert_eq!(m.transition_completes_at(), None);
        m.begin_spin_down(7.0).unwrap();
        assert_eq!(m.transition_completes_at(), Some(17.0));
    }

    #[test]
    fn breakdown_so_far_is_live() {
        let mut m = machine();
        m.transition(10.0, PowerState::Active).unwrap();
        assert!((m.breakdown_so_far().seconds_in(PowerState::Idle) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn failed_spin_up_falls_back_to_the_sleep_level() {
        let mut m = machine();
        m.begin_spin_down(0.0).unwrap();
        m.transition(10.0, PowerState::Standby).unwrap();
        let up = m.begin_spin_up(100.0).unwrap();
        // Failing early is still a transition-duration violation…
        assert!(m.fail_spin_up(100.0 + 1.0).is_err());
        // …but at the scheduled completion the drive may fall back.
        assert_eq!(m.fail_spin_up(up).unwrap(), 1);
        assert_eq!(m.state(), PowerState::Standby);
        // The failed attempt counts neither a spin-up nor a fresh descent…
        assert_eq!(m.spin_ups(), 0);
        assert_eq!(m.spin_downs(), 1);
        // …but its wake-transition time was charged at transition power.
        assert!(m.breakdown_so_far().seconds_in(PowerState::Waking(1)) > 0.0);
        // A second attempt can succeed.
        let up2 = m.begin_spin_up(up + 5.0).unwrap();
        m.transition(up2, PowerState::Idle).unwrap();
        assert_eq!(m.spin_ups(), 1);
    }

    #[test]
    fn fail_spin_up_requires_a_waking_state() {
        let mut m = machine();
        assert!(m.fail_spin_up(1.0).is_err());
        m.begin_spin_down(0.0).unwrap();
        assert!(m.fail_spin_up(10.0).is_err());
    }

    #[test]
    fn cycle_counters_only_count_completions() {
        let mut m = machine();
        m.begin_spin_down(0.0).unwrap();
        // mid-flight: no completed spin-down yet
        assert_eq!(m.spin_downs(), 0);
        m.transition(10.0, PowerState::Standby).unwrap();
        assert_eq!(m.spin_downs(), 1);
        m.begin_spin_up(10.0).unwrap();
        assert_eq!(m.spin_ups(), 0);
        m.transition(25.0, PowerState::Idle).unwrap();
        assert_eq!(m.spin_ups(), 1);
    }
}
