//! Exact energy accounting: piecewise-constant integration of power over
//! time, broken down per [`PowerState`].
//!
//! The simulator drives an [`EnergyAccountant`] per disk: every time the disk
//! changes state it calls [`EnergyAccountant::transition`], and at the end of
//! the run [`EnergyAccountant::finish`]. Invariants (monotone time, total
//! duration conservation) are enforced and unit-tested — the power-saving
//! numbers of Figures 2, 4 and 5 all flow through this module.

use serde::{Deserialize, Serialize};

use crate::power::{power_of, PowerState};
use crate::spec::DiskSpec;

/// Per-state time and energy totals for one disk (or an aggregate).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Seconds spent in each state, indexed as [`PowerState::ALL`].
    seconds: [f64; 6],
    /// Joules consumed in each state, indexed as [`PowerState::ALL`].
    joules: [f64; 6],
}

impl EnergyBreakdown {
    fn index(state: PowerState) -> usize {
        PowerState::ALL
            .iter()
            .position(|&s| s == state)
            .expect("state present in ALL")
    }

    /// Seconds spent in `state`.
    pub fn seconds_in(&self, state: PowerState) -> f64 {
        self.seconds[Self::index(state)]
    }

    /// Joules consumed in `state`.
    pub fn joules_in(&self, state: PowerState) -> f64 {
        self.joules[Self::index(state)]
    }

    /// Total wall-clock seconds covered.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total joules consumed.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Mean power over the covered interval, watts. Zero if no time covered.
    pub fn mean_power_w(&self) -> f64 {
        let t = self.total_seconds();
        if t > 0.0 {
            self.total_joules() / t
        } else {
            0.0
        }
    }

    /// Merge another breakdown into this one (for fleet-level aggregates).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for i in 0..6 {
            self.seconds[i] += other.seconds[i];
            self.joules[i] += other.joules[i];
        }
    }

    fn add(&mut self, state: PowerState, seconds: f64, joules: f64) {
        let i = Self::index(state);
        self.seconds[i] += seconds;
        self.joules[i] += joules;
    }
}

/// Errors from misuse of the accountant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountingError {
    /// `transition`/`finish` called with a timestamp earlier than the last.
    TimeWentBackwards,
    /// The accountant was already finished.
    AlreadyFinished,
}

impl std::fmt::Display for AccountingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountingError::TimeWentBackwards => write!(f, "time went backwards"),
            AccountingError::AlreadyFinished => write!(f, "accountant already finished"),
        }
    }
}

impl std::error::Error for AccountingError {}

/// Integrates a disk's power draw over time.
#[derive(Debug, Clone)]
pub struct EnergyAccountant {
    spec: DiskSpec,
    state: PowerState,
    since: f64,
    breakdown: EnergyBreakdown,
    finished: bool,
}

impl EnergyAccountant {
    /// Start accounting at time `start` with the disk in `initial` state.
    pub fn new(spec: DiskSpec, start: f64, initial: PowerState) -> Self {
        EnergyAccountant {
            spec,
            state: initial,
            since: start,
            breakdown: EnergyBreakdown::default(),
            finished: false,
        }
    }

    /// The state currently being integrated.
    pub fn current_state(&self) -> PowerState {
        self.state
    }

    /// Record that at time `now` the disk entered `next`.
    ///
    /// Time spent since the previous transition is charged to the previous
    /// state at that state's power draw.
    pub fn transition(&mut self, now: f64, next: PowerState) -> Result<(), AccountingError> {
        self.charge(now)?;
        self.state = next;
        Ok(())
    }

    /// Close the books at time `now`. Subsequent calls fail.
    pub fn finish(&mut self, now: f64) -> Result<(), AccountingError> {
        self.charge(now)?;
        self.finished = true;
        Ok(())
    }

    fn charge(&mut self, now: f64) -> Result<(), AccountingError> {
        if self.finished {
            return Err(AccountingError::AlreadyFinished);
        }
        if now < self.since {
            return Err(AccountingError::TimeWentBackwards);
        }
        let dt = now - self.since;
        if dt > 0.0 {
            let p = power_of(&self.spec, self.state);
            self.breakdown.add(self.state, dt, p * dt);
        }
        self.since = now;
        Ok(())
    }

    /// The totals accumulated so far (complete only after [`Self::finish`]).
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Consume the accountant, returning its breakdown.
    pub fn into_breakdown(self) -> EnergyBreakdown {
        self.breakdown
    }
}

/// Energy a disk would use staying in a single state for `seconds`.
pub fn constant_state_energy(spec: &DiskSpec, state: PowerState, seconds: f64) -> f64 {
    power_of(spec, state) * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn idle_hour_consumes_expected_joules() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(3600.0).unwrap();
        let b = acc.breakdown();
        assert!((b.total_joules() - 9.3 * 3600.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Idle) - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn transition_sequence_partitions_time() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.transition(53.3, PowerState::SpinningDown).unwrap();
        acc.transition(63.3, PowerState::Standby).unwrap();
        acc.transition(1000.0, PowerState::SpinningUp).unwrap();
        acc.transition(1015.0, PowerState::Active).unwrap();
        acc.finish(1020.0).unwrap();
        let b = acc.breakdown();
        assert!((b.total_seconds() - 1020.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Idle) - 53.3).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::SpinningDown) - 10.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Standby) - (1000.0 - 63.3)).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::SpinningUp) - 15.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Active) - 5.0).abs() < 1e-9);
        // energy = Σ seconds × state power
        let expected = 53.3 * 9.3 + 10.0 * 9.3 + (1000.0 - 63.3) * 0.8 + 15.0 * 24.0 + 5.0 * 13.0;
        assert!((b.total_joules() - expected).abs() < 1e-6);
    }

    #[test]
    fn zero_length_transitions_are_free() {
        let mut acc = EnergyAccountant::new(spec(), 5.0, PowerState::Idle);
        acc.transition(5.0, PowerState::Seek).unwrap();
        acc.transition(5.0, PowerState::Active).unwrap();
        acc.finish(5.0).unwrap();
        assert_eq!(acc.breakdown().total_joules(), 0.0);
        assert_eq!(acc.breakdown().total_seconds(), 0.0);
    }

    #[test]
    fn time_going_backwards_is_rejected() {
        let mut acc = EnergyAccountant::new(spec(), 10.0, PowerState::Idle);
        let err = acc.transition(9.0, PowerState::Standby).unwrap_err();
        assert_eq!(err, AccountingError::TimeWentBackwards);
    }

    #[test]
    fn double_finish_is_rejected() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(1.0).unwrap();
        assert_eq!(
            acc.finish(2.0).unwrap_err(),
            AccountingError::AlreadyFinished
        );
    }

    #[test]
    fn merge_accumulates_fleet_totals() {
        let mut a = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        a.finish(100.0).unwrap();
        let mut b = EnergyAccountant::new(spec(), 0.0, PowerState::Standby);
        b.finish(100.0).unwrap();
        let mut fleet = a.into_breakdown();
        fleet.merge(&b.into_breakdown());
        assert!((fleet.total_seconds() - 200.0).abs() < 1e-9);
        assert!((fleet.total_joules() - (9.3 + 0.8) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_of_idle_is_idle_power() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(123.0).unwrap();
        assert!((acc.breakdown().mean_power_w() - 9.3).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_mean_power_is_zero() {
        assert_eq!(EnergyBreakdown::default().mean_power_w(), 0.0);
    }

    #[test]
    fn constant_state_energy_helper() {
        assert!((constant_state_energy(&spec(), PowerState::Standby, 10.0) - 8.0).abs() < 1e-12);
    }
}
