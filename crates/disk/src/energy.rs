//! Exact energy accounting: piecewise-constant integration of power over
//! time, broken down per [`PowerState`].
//!
//! The simulator drives an [`EnergyAccountant`] per disk: every time the disk
//! changes state it calls [`EnergyAccountant::transition`], and at the end of
//! the run [`EnergyAccountant::finish`]. Invariants (monotone time, total
//! duration conservation) are enforced and unit-tested — the power-saving
//! numbers of Figures 2, 4 and 5 all flow through this module.
//!
//! The breakdown is **table-driven over the power-state ladder**: slots are
//! allocated on demand for whatever states a run actually visits (three
//! operational slots plus a `(Sleeping, Descending, Waking)` triple per
//! ladder level), so adding levels to a ladder can never silently drop
//! energy — per-state totals always sum exactly to the run total, however
//! deep the ladder ([`EnergyBreakdown::per_state`] iterates every slot).

use serde::{Deserialize, Serialize};

use crate::power::{power_of, states_of, PowerState};
use crate::spec::DiskSpec;

/// Slot index of a state in the breakdown tables: operational states
/// first, then one `(Sleeping, Descending, Waking)` triple per level.
/// For the canonical two-state ladder this is exactly the six slots (and
/// ordering) of the original fixed-size breakdown.
fn slot(state: PowerState) -> usize {
    match state {
        PowerState::Active => 0,
        PowerState::Seek => 1,
        PowerState::Idle => 2,
        PowerState::Sleeping(l) => 3 * l as usize,
        PowerState::Descending(l) => 3 * l as usize + 1,
        PowerState::Waking(l) => 3 * l as usize + 2,
    }
}

/// Inverse of [`slot`]: the state a slot index belongs to.
fn state_of_slot(i: usize) -> PowerState {
    match i {
        0 => PowerState::Active,
        1 => PowerState::Seek,
        2 => PowerState::Idle,
        _ => {
            let l = (i / 3) as u8;
            match i % 3 {
                0 => PowerState::Sleeping(l),
                1 => PowerState::Descending(l),
                _ => PowerState::Waking(l),
            }
        }
    }
}

/// Per-state time and energy totals for one disk (or an aggregate).
///
/// Grows on demand to cover every ladder level a run visits; states never
/// visited report zero.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Seconds spent in each state, indexed by [`slot`].
    seconds: Vec<f64>,
    /// Joules consumed in each state, indexed by [`slot`].
    joules: Vec<f64>,
}

impl EnergyBreakdown {
    /// Seconds spent in `state`.
    pub fn seconds_in(&self, state: PowerState) -> f64 {
        self.seconds.get(slot(state)).copied().unwrap_or(0.0)
    }

    /// Joules consumed in `state`.
    pub fn joules_in(&self, state: PowerState) -> f64 {
        self.joules.get(slot(state)).copied().unwrap_or(0.0)
    }

    /// Total wall-clock seconds covered.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total joules consumed.
    pub fn total_joules(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Mean power over the covered interval, watts. Zero if no time covered.
    pub fn mean_power_w(&self) -> f64 {
        let t = self.total_seconds();
        if t > 0.0 {
            self.total_joules() / t
        } else {
            0.0
        }
    }

    /// Every `(state, seconds, joules)` row this breakdown has a slot for,
    /// in slot order — the table-driven iteration whose seconds/joules sum
    /// *exactly* to [`Self::total_seconds`]/[`Self::total_joules`] (both
    /// are computed by summing the same slots in the same order), however
    /// many ladder levels are in play.
    pub fn per_state(&self) -> Vec<(PowerState, f64, f64)> {
        (0..self.seconds.len())
            .map(|i| (state_of_slot(i), self.seconds[i], self.joules[i]))
            .collect()
    }

    /// The deepest ladder level this breakdown has slots for (0 when only
    /// operational states were visited).
    pub fn deepest_level(&self) -> u8 {
        if self.seconds.len() <= 3 {
            0
        } else {
            ((self.seconds.len() - 1) / 3) as u8
        }
    }

    /// Every state of a `levels`-deep ladder with this breakdown's totals,
    /// including never-visited states (reported as zero) — the full table
    /// for reports that want one row per ladder state.
    pub fn per_state_of_ladder(&self, levels: usize) -> Vec<(PowerState, f64, f64)> {
        states_of(levels)
            .into_iter()
            .map(|s| (s, self.seconds_in(s), self.joules_in(s)))
            .collect()
    }

    /// Merge another breakdown into this one (for fleet-level aggregates).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        if other.seconds.len() > self.seconds.len() {
            self.seconds.resize(other.seconds.len(), 0.0);
            self.joules.resize(other.joules.len(), 0.0);
        }
        for (i, (&s, &j)) in other.seconds.iter().zip(&other.joules).enumerate() {
            self.seconds[i] += s;
            self.joules[i] += j;
        }
    }

    fn add(&mut self, state: PowerState, seconds: f64, joules: f64) {
        let i = slot(state);
        if i >= self.seconds.len() {
            self.seconds.resize(i + 1, 0.0);
            self.joules.resize(i + 1, 0.0);
        }
        self.seconds[i] += seconds;
        self.joules[i] += joules;
    }
}

/// Errors from misuse of the accountant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccountingError {
    /// `transition`/`finish` called with a timestamp earlier than the last.
    TimeWentBackwards,
    /// The accountant was already finished.
    AlreadyFinished,
}

impl std::fmt::Display for AccountingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccountingError::TimeWentBackwards => write!(f, "time went backwards"),
            AccountingError::AlreadyFinished => write!(f, "accountant already finished"),
        }
    }
}

impl std::error::Error for AccountingError {}

/// Integrates a disk's power draw over time.
#[derive(Debug, Clone)]
pub struct EnergyAccountant {
    spec: DiskSpec,
    state: PowerState,
    since: f64,
    breakdown: EnergyBreakdown,
    finished: bool,
}

impl EnergyAccountant {
    /// Start accounting at time `start` with the disk in `initial` state.
    pub fn new(spec: DiskSpec, start: f64, initial: PowerState) -> Self {
        EnergyAccountant {
            spec,
            state: initial,
            since: start,
            breakdown: EnergyBreakdown::default(),
            finished: false,
        }
    }

    /// The state currently being integrated.
    pub fn current_state(&self) -> PowerState {
        self.state
    }

    /// Record that at time `now` the disk entered `next`.
    ///
    /// Time spent since the previous transition is charged to the previous
    /// state at that state's power draw.
    pub fn transition(&mut self, now: f64, next: PowerState) -> Result<(), AccountingError> {
        self.charge(now)?;
        self.state = next;
        Ok(())
    }

    /// Close the books at time `now`. Subsequent calls fail.
    pub fn finish(&mut self, now: f64) -> Result<(), AccountingError> {
        self.charge(now)?;
        self.finished = true;
        Ok(())
    }

    fn charge(&mut self, now: f64) -> Result<(), AccountingError> {
        if self.finished {
            return Err(AccountingError::AlreadyFinished);
        }
        if now < self.since {
            return Err(AccountingError::TimeWentBackwards);
        }
        let dt = now - self.since;
        if dt > 0.0 {
            let p = power_of(&self.spec, self.state);
            self.breakdown.add(self.state, dt, p * dt);
        }
        self.since = now;
        Ok(())
    }

    /// The totals accumulated so far (complete only after [`Self::finish`]).
    pub fn breakdown(&self) -> &EnergyBreakdown {
        &self.breakdown
    }

    /// Consume the accountant, returning its breakdown.
    pub fn into_breakdown(self) -> EnergyBreakdown {
        self.breakdown
    }
}

/// Energy a disk would use staying in a single state for `seconds`.
pub fn constant_state_energy(spec: &DiskSpec, state: PowerState, seconds: f64) -> f64 {
    power_of(spec, state) * seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ladder::PowerLadder;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn idle_hour_consumes_expected_joules() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(3600.0).unwrap();
        let b = acc.breakdown();
        assert!((b.total_joules() - 9.3 * 3600.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Idle) - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn transition_sequence_partitions_time() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.transition(53.3, PowerState::SpinningDown).unwrap();
        acc.transition(63.3, PowerState::Standby).unwrap();
        acc.transition(1000.0, PowerState::SpinningUp).unwrap();
        acc.transition(1015.0, PowerState::Active).unwrap();
        acc.finish(1020.0).unwrap();
        let b = acc.breakdown();
        assert!((b.total_seconds() - 1020.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Idle) - 53.3).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::SpinningDown) - 10.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Standby) - (1000.0 - 63.3)).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::SpinningUp) - 15.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Active) - 5.0).abs() < 1e-9);
        // energy = Σ seconds × state power
        let expected = 53.3 * 9.3 + 10.0 * 9.3 + (1000.0 - 63.3) * 0.8 + 15.0 * 24.0 + 5.0 * 13.0;
        assert!((b.total_joules() - expected).abs() < 1e-6);
    }

    #[test]
    fn ladder_levels_account_separately_and_sum_exactly() {
        let mut s = spec();
        s.ladder = Some(PowerLadder::with_low_rpm(&s));
        let lad = s.ladder.clone().unwrap();
        let mut acc = EnergyAccountant::new(s, 0.0, PowerState::Idle);
        // Idle 20 s, enter low-RPM, rest 100 s, enter standby, rest 200 s,
        // wake from standby.
        acc.transition(20.0, PowerState::Descending(1)).unwrap();
        let t1 = 20.0 + lad.level(1).entry_time_s;
        acc.transition(t1, PowerState::Sleeping(1)).unwrap();
        acc.transition(t1 + 100.0, PowerState::Descending(2))
            .unwrap();
        let t2 = t1 + 100.0 + lad.level(2).entry_time_s;
        acc.transition(t2, PowerState::Sleeping(2)).unwrap();
        acc.transition(t2 + 200.0, PowerState::Waking(2)).unwrap();
        let t3 = t2 + 200.0 + lad.level(2).exit_time_s;
        acc.transition(t3, PowerState::Idle).unwrap();
        acc.finish(t3 + 5.0).unwrap();
        let b = acc.breakdown();
        assert!((b.seconds_in(PowerState::Sleeping(1)) - 100.0).abs() < 1e-9);
        assert!((b.seconds_in(PowerState::Sleeping(2)) - 200.0).abs() < 1e-9);
        assert!((b.joules_in(PowerState::Sleeping(1)) - 100.0 * lad.level(1).power_w).abs() < 1e-9);
        assert!(
            (b.joules_in(PowerState::Descending(2)) - lad.level(2).entry_energy_j()).abs() < 1e-9
        );
        assert!((b.joules_in(PowerState::Waking(2)) - lad.level(2).exit_energy_j()).abs() < 1e-9);
        // The table-driven iteration covers every slot: its sums equal the
        // totals bit-for-bit (same slots, same order — nothing dropped).
        let rows = b.per_state();
        let sum_s: f64 = rows.iter().map(|(_, s, _)| s).sum();
        let sum_j: f64 = rows.iter().map(|(_, _, j)| j).sum();
        assert_eq!(sum_s, b.total_seconds());
        assert_eq!(sum_j, b.total_joules());
        assert_eq!(b.deepest_level(), 2);
        // The full-ladder table reports zero for never-visited states.
        let table = b.per_state_of_ladder(3);
        assert_eq!(table.len(), 3 + 3 * 2);
        let wake1 = table
            .iter()
            .find(|(s, _, _)| *s == PowerState::Waking(1))
            .unwrap();
        assert_eq!(wake1.1, 0.0);
    }

    #[test]
    fn zero_length_transitions_are_free() {
        let mut acc = EnergyAccountant::new(spec(), 5.0, PowerState::Idle);
        acc.transition(5.0, PowerState::Seek).unwrap();
        acc.transition(5.0, PowerState::Active).unwrap();
        acc.finish(5.0).unwrap();
        assert_eq!(acc.breakdown().total_joules(), 0.0);
        assert_eq!(acc.breakdown().total_seconds(), 0.0);
    }

    #[test]
    fn time_going_backwards_is_rejected() {
        let mut acc = EnergyAccountant::new(spec(), 10.0, PowerState::Idle);
        let err = acc.transition(9.0, PowerState::Standby).unwrap_err();
        assert_eq!(err, AccountingError::TimeWentBackwards);
    }

    #[test]
    fn double_finish_is_rejected() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(1.0).unwrap();
        assert_eq!(
            acc.finish(2.0).unwrap_err(),
            AccountingError::AlreadyFinished
        );
    }

    #[test]
    fn merge_accumulates_fleet_totals() {
        let mut a = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        a.finish(100.0).unwrap();
        let mut b = EnergyAccountant::new(spec(), 0.0, PowerState::Standby);
        b.finish(100.0).unwrap();
        let mut fleet = a.into_breakdown();
        fleet.merge(&b.into_breakdown());
        assert!((fleet.total_seconds() - 200.0).abs() < 1e-9);
        assert!((fleet.total_joules() - (9.3 + 0.8) * 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_grows_to_the_deeper_ladder() {
        let mut shallow = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        shallow.finish(50.0).unwrap();
        let mut s3 = spec();
        s3.ladder = Some(PowerLadder::with_low_rpm(&s3));
        let mut deep = EnergyAccountant::new(s3, 0.0, PowerState::Sleeping(2));
        deep.finish(10.0).unwrap();
        let mut fleet = shallow.into_breakdown();
        fleet.merge(&deep.into_breakdown());
        assert!((fleet.seconds_in(PowerState::Idle) - 50.0).abs() < 1e-12);
        assert!((fleet.seconds_in(PowerState::Sleeping(2)) - 10.0).abs() < 1e-12);
        assert!((fleet.total_seconds() - 60.0).abs() < 1e-12);
        // …and the other way round.
        let mut s3b = spec();
        s3b.ladder = Some(PowerLadder::with_low_rpm(&s3b));
        let mut deep2 = EnergyAccountant::new(s3b, 0.0, PowerState::Sleeping(2));
        deep2.finish(10.0).unwrap();
        let mut fleet2 = deep2.into_breakdown();
        let mut shallow2 = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        shallow2.finish(50.0).unwrap();
        fleet2.merge(&shallow2.into_breakdown());
        assert_eq!(fleet2.total_seconds(), fleet.total_seconds());
    }

    #[test]
    fn mean_power_of_idle_is_idle_power() {
        let mut acc = EnergyAccountant::new(spec(), 0.0, PowerState::Idle);
        acc.finish(123.0).unwrap();
        assert!((acc.breakdown().mean_power_w() - 9.3).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_mean_power_is_zero() {
        assert_eq!(EnergyBreakdown::default().mean_power_w(), 0.0);
        assert!(EnergyBreakdown::default().per_state().is_empty());
        assert_eq!(EnergyBreakdown::default().deepest_level(), 0);
    }

    #[test]
    fn constant_state_energy_helper() {
        assert!((constant_state_energy(&spec(), PowerState::Standby, 10.0) - 8.0).abs() < 1e-12);
    }
}
