#![warn(missing_docs)]
//! # spindown-disk
//!
//! A hard-disk power, timing and reliability model, built around the disk
//! characteristics used in Otoo, Rotem & Tsao, *Analysis of Trade-Off Between
//! Power Saving and Response Time in Disk Storage Systems* (IPPS 2009),
//! Table 2 (a Seagate ST3500630AS), and the disk power modelling literature it
//! builds on (Zedlewski et al., FAST '03).
//!
//! The crate provides:
//!
//! - [`DiskSpec`] — the static description of a drive (capacity, transfer
//!   rate, seek/rotation times, per-state power draws, spin-up/down costs).
//! - [`PowerState`] / [`power::power_of`] — the power-state taxonomy of
//!   Figure 1 of the paper, generalised over the ladder.
//! - [`PowerLadder`] / [`ladder`] — the validated N-level power-state
//!   ladder (idle / low-RPM / standby …), with the paper's two-state
//!   machine as the canonical default.
//! - [`mechanics`] — request service-time model (seek + rotational latency +
//!   transfer).
//! - [`DiskStateMachine`] — a validated state machine that enforces legal
//!   power-state transitions and their durations.
//! - [`EnergyAccountant`] — exact piecewise-constant integration of power
//!   over time.
//! - [`breakeven`] — the break-even ("idleness threshold") computation; for
//!   Table 2 it reproduces the paper's 53.3 s.
//! - [`reliability`] — duty-cycle counters and a start/stop wear model.
//! - [`zoned`] — multi-zone transfer rates (the §6 "more detailed disk
//!   modeling" extension).
//!
//! All times are in seconds (`f64`), powers in watts, energies in joules and
//! sizes in bytes unless stated otherwise.

pub mod breakeven;
pub mod energy;
pub mod ladder;
pub mod mechanics;
pub mod power;
pub mod reliability;
pub mod spec;
pub mod state;
pub mod zoned;

pub use breakeven::{
    break_even_threshold, break_even_threshold_between, envelope_descent_times,
    transition_energy_between, transition_energy_overhead,
};
pub use energy::EnergyAccountant;
pub use ladder::{LadderChoice, LadderError, PowerLadder, PowerLevel};
pub use mechanics::{RequestKind, ServiceTimer};
pub use power::PowerState;
pub use reliability::DutyCycleCounter;
pub use spec::{DiskSpec, DiskSpecBuilder, SpecError};
pub use state::{DiskStateMachine, TransitionError};
pub use zoned::{Zone, ZonedModel};

/// Bytes in a megabyte (decimal, as used by disk vendors and the paper:
/// 72 MB/s means 72 × 10⁶ bytes per second).
pub const MB: u64 = 1_000_000;
/// Bytes in a gigabyte (decimal).
pub const GB: u64 = 1_000_000_000;
/// Bytes in a terabyte (decimal).
pub const TB: u64 = 1_000_000_000_000;
