//! Property-based tests for the drive model: energy integration against a
//! brute-force reference, state-machine legality under random walks, and
//! break-even analysis consistency.

use proptest::prelude::*;
use spindown_disk::breakeven::{offline_break_even_gap, spin_down_gain};
use spindown_disk::energy::EnergyAccountant;
use spindown_disk::ladder::{PowerLadder, PowerLevel};
use spindown_disk::mechanics::ServiceTimer;
use spindown_disk::power::{power_of, PowerState};
use spindown_disk::{
    break_even_threshold, break_even_threshold_between, DiskSpec, DiskSpecBuilder, DiskStateMachine,
};

fn state_strategy() -> impl Strategy<Value = PowerState> {
    prop_oneof![
        Just(PowerState::Active),
        Just(PowerState::Seek),
        Just(PowerState::Idle),
        Just(PowerState::Standby),
        Just(PowerState::SpinningUp),
        Just(PowerState::SpinningDown),
    ]
}

/// A spec with randomized but physically sensible parameters.
fn spec_strategy() -> impl Strategy<Value = DiskSpec> {
    (
        1.0f64..30.0,  // idle power
        0.01f64..0.99, // standby as fraction of idle
        1.0f64..40.0,  // spin-up power
        1.0f64..30.0,  // spin-down power
        1.0f64..30.0,  // spin-up time
        1.0f64..20.0,  // spin-down time
    )
        .prop_map(|(idle, standby_frac, up_w, down_w, up_s, down_s)| {
            DiskSpecBuilder::new()
                .idle_power_w(idle)
                .standby_power_w(idle * standby_frac)
                .spin_up_power_w(up_w)
                .spin_down_power_w(down_w)
                .spin_up_time_s(up_s)
                .spin_down_time_s(down_s)
                .build()
                .expect("randomized spec valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accountant_matches_brute_force(
        segments in prop::collection::vec((0.0f64..100.0, state_strategy()), 1..40)
    ) {
        let spec = DiskSpec::seagate_st3500630as();
        let mut acc = EnergyAccountant::new(spec.clone(), 0.0, PowerState::Idle);
        let mut t = 0.0;
        let mut expected = 0.0;
        let mut current = PowerState::Idle;
        for (dt, next) in segments {
            expected += power_of(&spec, current) * dt;
            t += dt;
            acc.transition(t, next).unwrap();
            current = next;
        }
        acc.finish(t).unwrap();
        prop_assert!((acc.breakdown().total_joules() - expected).abs() < 1e-6);
        prop_assert!((acc.breakdown().total_seconds() - t).abs() < 1e-6);
    }

    #[test]
    fn state_machine_energy_never_below_standby_floor(
        idle_gaps in prop::collection::vec(30.0f64..500.0, 1..20)
    ) {
        // A disk that repeatedly sleeps through gaps must still consume at
        // least the standby floor and at most the idle ceiling.
        let spec = DiskSpec::seagate_st3500630as();
        let mut m = DiskStateMachine::new(spec.clone(), 0.0);
        let mut t = 0.0;
        for gap in &idle_gaps {
            let down = m.begin_spin_down(t).unwrap();
            m.transition(down, PowerState::Standby).unwrap();
            let wake = down + gap;
            let up = m.begin_spin_up(wake).unwrap();
            m.transition(up, PowerState::Idle).unwrap();
            t = up;
        }
        let b = m.finish(t).unwrap();
        let total = b.total_seconds();
        prop_assert!(b.total_joules() >= spec.standby_power_w * total - 1e-6);
        prop_assert!(b.total_joules() <= spec.spin_up_power_w * total + 1e-6);
        prop_assert_eq!(b.seconds_in(PowerState::Active), 0.0);
    }

    #[test]
    fn break_even_is_where_gain_changes_sign(spec in spec_strategy()) {
        let g = offline_break_even_gap(&spec);
        prop_assert!(g > 0.0);
        prop_assert!(spin_down_gain(&spec, g * 0.9) < 1e-9);
        prop_assert!(spin_down_gain(&spec, g * 1.1) > -1e-9);
    }

    #[test]
    fn break_even_threshold_positive_and_shrinks_with_sleep_depth(spec in spec_strategy()) {
        let t = break_even_threshold(&spec);
        prop_assert!(t > 0.0 && t.is_finite());
        // A deeper standby (lower standby power) can only shorten the
        // break-even time.
        let mut deeper = spec.clone();
        deeper.standby_power_w *= 0.5;
        prop_assert!(break_even_threshold(&deeper) <= t + 1e-12);
    }

    #[test]
    fn service_time_is_additive_in_bytes(a in 0u64..10_000_000_000, b in 0u64..10_000_000_000) {
        let timer = ServiceTimer::new(&DiskSpec::seagate_st3500630as());
        // transfer component is linear; positioning is charged once per call
        let lhs = timer.transfer_time(a) + timer.transfer_time(b);
        let rhs = timer.transfer_time(a + b);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn spin_down_gain_monotone_in_gap(spec in spec_strategy(), g1 in 0.0f64..5_000.0, g2 in 0.0f64..5_000.0) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        prop_assert!(spin_down_gain(&spec, lo) <= spin_down_gain(&spec, hi) + 1e-9);
    }

    #[test]
    fn illegal_transitions_always_rejected(from in state_strategy(), to in state_strategy()) {
        // Build a machine coaxed into `from`, then attempt `to` and verify
        // acceptance matches the documented edge set. (The legacy state
        // names are associated consts of the ladder-general enum now, so
        // the edge table is written with tuple equality, not patterns —
        // an unqualified `Standby` in a pattern would *bind*, not match.)
        let spec = DiskSpec::seagate_st3500630as();
        let mut m = DiskStateMachine::new(spec.clone(), 0.0);
        let mut t = 0.0;
        // Drive into `from` through legal edges.
        let reached = if from == PowerState::Idle {
            true
        } else if from == PowerState::Seek {
            m.transition(t, PowerState::Seek).is_ok()
        } else if from == PowerState::Active {
            m.transition(t, PowerState::Active).is_ok()
        } else if from == PowerState::SpinningDown {
            m.begin_spin_down(t).is_ok()
        } else if from == PowerState::Standby {
            let d = m.begin_spin_down(t).unwrap();
            t = d;
            m.transition(t, PowerState::Standby).is_ok()
        } else {
            // SpinningUp
            let d = m.begin_spin_down(t).unwrap();
            t = d;
            m.transition(t, PowerState::Standby).unwrap();
            m.begin_spin_up(t).is_ok()
        };
        prop_assert!(reached);
        let legal_edges = [
            (PowerState::Idle, PowerState::Seek),
            (PowerState::Idle, PowerState::Active),
            (PowerState::Idle, PowerState::SpinningDown),
            (PowerState::Seek, PowerState::Active),
            (PowerState::Seek, PowerState::Idle),
            (PowerState::Active, PowerState::Idle),
            (PowerState::Active, PowerState::Seek),
            (PowerState::SpinningDown, PowerState::Standby),
            (PowerState::Standby, PowerState::SpinningUp),
            (PowerState::SpinningUp, PowerState::Idle),
            // Failed spin-up: the drive falls back to the level it was
            // waking from (SpinningUp = Waking(1), Standby = Sleeping(1)).
            (PowerState::SpinningUp, PowerState::Standby),
        ];
        let legal = legal_edges.contains(&(from, to));
        // Attempt at a time far enough in the future that transitional
        // durations are satisfied.
        let attempt = m.transition(t + 1_000.0, to);
        prop_assert_eq!(attempt.is_ok(), legal, "edge {:?}->{:?}", from, to);
    }

    // Satellite invariant of the ladder refactor: for any *valid* ladder
    // (one that passes the lower-envelope validation), per-level
    // break-even thresholds are strictly monotone — descending to a
    // deeper level always takes longer to pay off, from any starting
    // level.
    #[test]
    fn deeper_levels_have_monotone_break_evens(
        spec in spec_strategy(),
        power_frac in 0.05f64..0.95,
        entry_frac in 0.1f64..0.9,
        exit_frac in 0.1f64..0.9,
        exit_power_frac in 0.3f64..1.0,
    ) {
        let two = PowerLadder::two_state(&spec);
        let low = PowerLevel {
            name: "lowrpm".to_owned(),
            power_w: spec.standby_power_w
                + power_frac * (spec.idle_power_w - spec.standby_power_w),
            entry_time_s: entry_frac * spec.spin_down_time_s,
            entry_power_w: spec.idle_power_w,
            exit_time_s: exit_frac * spec.spin_up_time_s,
            exit_power_w: exit_power_frac * spec.spin_up_power_w,
            service_rate_factor: 1.0,
        };
        let candidate = vec![
            two.levels()[0].clone(),
            low,
            two.levels()[1].clone(),
        ];
        // Only ladders that pass validation make any monotonicity promise
        // — dominated middle levels are rejected up front.
        let Ok(ladder) = PowerLadder::new(candidate) else {
            return Ok(());
        };
        let spec = spec.clone().with_ladder(Some(ladder.clone()));
        for from in 0..ladder.deepest() {
            let mut last = 0.0;
            for to in (from + 1)..=ladder.deepest() {
                let t = break_even_threshold_between(&spec, from, to);
                prop_assert!(
                    t.is_finite() && t > last,
                    "T({from},{to}) = {t} not past {last}"
                );
                last = t;
            }
        }
        // The envelope descent schedule is strictly increasing too.
        let times = spindown_disk::envelope_descent_times(&ladder);
        prop_assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
        // And the (0, deepest) case is the drive's aggregate threshold.
        prop_assert_eq!(
            break_even_threshold_between(&spec, 0, ladder.deepest()),
            break_even_threshold(&spec)
        );
    }
}
