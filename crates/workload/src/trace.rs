//! Request traces: generation, statistics and serialisation.
//!
//! A [`Trace`] is a time-ordered list of file requests plus the horizon of
//! the observation window — exactly what the paper's dispatcher consumes.
//! Traces can be synthesised ([`Trace::poisson`], [`Trace::batched`]) or
//! loaded from/saved to a simple CSV format (`time,file_id` per line) and
//! JSON, so real logs can be replayed when available.

use std::io::{BufRead, Write};

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::{generate_bursts, BatchConfig, PoissonProcess};
use crate::catalog::{FileCatalog, FileId};
use crate::zipf::ZipfDistribution;

/// One read request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time, seconds from trace start.
    pub time: f64,
    /// Target file.
    pub file: FileId,
}

/// A time-ordered request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    requests: Vec<Request>,
    horizon: f64,
}

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed CSV line (line number, content).
    Malformed(usize, String),
    /// Requests out of order at the given line.
    OutOfOrder(usize),
    /// A request (at the given line) past the horizon a streaming reader
    /// was opened with. Streaming replays fix the horizon up front, so —
    /// unlike [`Trace::read_csv`], which grows the horizon to fit — late
    /// rows are an error rather than a silent extension.
    BeyondHorizon(usize),
    /// A shared view of another error. `TraceIoError` holds an
    /// `std::io::Error` and so cannot be `Clone`; when one reader thread
    /// feeds many consumers (the sharded CSV demux), the single underlying
    /// failure is wrapped in an [`std::sync::Arc`] and every consumer
    /// observes it through this variant.
    Shared(std::sync::Arc<TraceIoError>),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Malformed(line, text) => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
            TraceIoError::OutOfOrder(line) => {
                write!(f, "trace not time-ordered at line {line}")
            }
            TraceIoError::BeyondHorizon(line) => {
                write!(
                    f,
                    "request at line {line} is past the declared streaming horizon"
                )
            }
            TraceIoError::Shared(inner) => inner.fmt(f),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Shared(inner) => Some(inner.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl Trace {
    /// Build from a pre-sorted request list.
    ///
    /// # Panics
    /// If requests are not time-ordered, times are negative/not finite, or
    /// the horizon is before the last request.
    pub fn new(requests: Vec<Request>, horizon: f64) -> Self {
        assert!(horizon >= 0.0 && horizon.is_finite());
        let mut last = 0.0_f64;
        for (i, r) in requests.iter().enumerate() {
            assert!(
                r.time.is_finite() && r.time >= 0.0,
                "request {i} has bad time {}",
                r.time
            );
            assert!(r.time >= last, "requests out of order at index {i}");
            last = r.time;
        }
        assert!(
            horizon >= last,
            "horizon {horizon} before last request {last}"
        );
        Trace { requests, horizon }
    }

    /// Poisson trace: arrivals at `rate`/s until `horizon`, each targeting a
    /// file drawn by catalog popularity. This is the Table 1 workload.
    pub fn poisson(catalog: &FileCatalog, rate: f64, horizon: f64, seed: u64) -> Self {
        assert!(!catalog.is_empty(), "cannot generate against empty catalog");
        let mut process = PoissonProcess::new(rate, seed);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(1));
        // Popularity sampling uses the catalog's own p_i (files are already
        // in popularity order for paper catalogs, but we do not rely on it).
        let cdf = popularity_cdf(catalog);
        let requests = process
            .arrivals_until(horizon)
            .into_iter()
            .map(|time| Request {
                time,
                file: sample_by_cdf(&cdf, &mut rng),
            })
            .collect();
        Trace::new(requests, horizon)
    }

    /// Bursty trace (§3.2): bursts arrive Poisson; each burst requests a run
    /// of files with *adjacent sizes* ("a batch of files of similar sizes
    /// all at once"). The run's anchor file is drawn by popularity.
    pub fn batched(catalog: &FileCatalog, cfg: &BatchConfig, horizon: f64, seed: u64) -> Self {
        assert!(!catalog.is_empty(), "cannot generate against empty catalog");
        let bursts = generate_bursts(cfg, horizon, seed);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(2));
        let cdf = popularity_cdf(catalog);
        // Order file ids by size so a burst can walk adjacent sizes.
        let mut by_size: Vec<FileId> = catalog.iter().map(|f| f.id).collect();
        by_size.sort_by_key(|id| catalog.file(*id).size_bytes);
        let mut rank_of = vec![0usize; catalog.len()];
        for (rank, id) in by_size.iter().enumerate() {
            rank_of[id.index()] = rank;
        }
        let mut requests = Vec::new();
        for burst in bursts {
            let anchor = sample_by_cdf(&cdf, &mut rng);
            let start_rank = rank_of[anchor.index()];
            for k in 0..burst.count {
                let rank = (start_rank + k).min(by_size.len() - 1);
                let time = burst.start + k as f64 * cfg.intra_batch_gap_s;
                if time < horizon {
                    requests.push(Request {
                        time,
                        file: by_size[rank],
                    });
                }
            }
        }
        requests.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace::new(requests, horizon)
    }

    /// The requests, time-ordered.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Observation-window length, seconds.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Mean arrival rate over the horizon (requests per second).
    pub fn mean_rate(&self) -> f64 {
        if self.horizon > 0.0 {
            self.requests.len() as f64 / self.horizon
        } else {
            0.0
        }
    }

    /// Per-file request counts, indexed by file id, over `n_files` files.
    pub fn per_file_counts(&self, n_files: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n_files];
        for r in &self.requests {
            counts[r.file.index()] += 1;
        }
        counts
    }

    /// Number of distinct files referenced.
    pub fn distinct_files(&self) -> usize {
        let mut ids: Vec<u32> = self.requests.iter().map(|r| r.file.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// The sub-trace with `t0 ≤ time < t1`, re-based so the window starts
    /// at 0 (useful for warm-up trimming and piecewise replay).
    ///
    /// # Panics
    /// If the window is empty or not within the horizon.
    pub fn window(&self, t0: f64, t1: f64) -> Trace {
        assert!(
            t0 >= 0.0 && t1 > t0 && t1 <= self.horizon + 1e-9,
            "bad window"
        );
        let requests = self
            .requests
            .iter()
            .filter(|r| r.time >= t0 && r.time < t1)
            .map(|r| Request {
                time: r.time - t0,
                file: r.file,
            })
            .collect();
        Trace::new(requests, t1 - t0)
    }

    /// Merge two traces over the same catalog into one time-ordered trace;
    /// the horizon is the larger of the two.
    pub fn merge(&self, other: &Trace) -> Trace {
        let mut requests: Vec<Request> = self
            .requests
            .iter()
            .chain(other.requests.iter())
            .copied()
            .collect();
        requests.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace::new(requests, self.horizon.max(other.horizon))
    }

    /// Scale all request times by `factor` (e.g. compress 30 days into a
    /// shorter simulated window while keeping the request mix).
    pub fn time_scaled(&self, factor: f64) -> Trace {
        assert!(factor > 0.0 && factor.is_finite());
        let requests = self
            .requests
            .iter()
            .map(|r| Request {
                time: r.time * factor,
                file: r.file,
            })
            .collect();
        Trace::new(requests, self.horizon * factor)
    }

    /// Write as CSV: a header line, then `time,file_id` rows.
    pub fn write_csv<W: Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "time_s,file_id")?;
        for r in &self.requests {
            writeln!(w, "{:.6},{}", r.time, r.file.0)?;
        }
        Ok(())
    }

    /// Read the CSV format produced by [`Self::write_csv`]. The horizon is
    /// the last request time (or 0 for an empty trace) unless a larger one
    /// is supplied.
    pub fn read_csv<R: BufRead>(r: R, horizon: Option<f64>) -> Result<Self, TraceIoError> {
        let mut requests: Vec<Request> = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() || (lineno == 0 && text.starts_with("time")) {
                continue;
            }
            let mut parts = text.split(',');
            let (Some(t), Some(f)) = (parts.next(), parts.next()) else {
                return Err(TraceIoError::Malformed(lineno + 1, text.to_owned()));
            };
            let time: f64 = t
                .trim()
                .parse()
                .map_err(|_| TraceIoError::Malformed(lineno + 1, text.to_owned()))?;
            let id: u32 = f
                .trim()
                .parse()
                .map_err(|_| TraceIoError::Malformed(lineno + 1, text.to_owned()))?;
            // `"nan"` and `"-5"` both parse as f64, so they slip past the
            // parse error above — reject them here as malformed rather than
            // letting them reach the `Trace::new` ordering asserts.
            if !time.is_finite() || time < 0.0 {
                return Err(TraceIoError::Malformed(lineno + 1, text.to_owned()));
            }
            if let Some(prev) = requests.last() {
                if time < prev.time {
                    return Err(TraceIoError::OutOfOrder(lineno + 1));
                }
            }
            requests.push(Request {
                time,
                file: FileId(id),
            });
        }
        let last = requests.last().map(|r| r.time).unwrap_or(0.0);
        Ok(Trace::new(requests, horizon.unwrap_or(last).max(last)))
    }
}

pub(crate) fn popularity_cdf(catalog: &FileCatalog) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = catalog
        .iter()
        .map(|f| {
            acc += f.popularity;
            acc
        })
        .collect();
    if let Some(last) = cdf.last_mut() {
        *last = 1.0;
    }
    cdf
}

pub(crate) fn sample_by_cdf<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> FileId {
    let u: f64 = rng.random();
    let idx = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
    FileId(idx as u32)
}

/// Empirical popularity skew check used in tests and the NERSC generator:
/// fits `log(count) = a − b·log(rank)` over files with non-zero counts and
/// returns the slope `b` (positive for Zipf-like data).
pub fn popularity_slope(counts: &[u64]) -> f64 {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let points: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return 0.0;
    }
    -(n * sxy - sx * sy) / denom
}

/// Sample file ids by popularity through a [`ZipfDistribution`] directly —
/// useful when a catalog is in popularity-rank order (paper catalogs are).
pub fn sample_rank_as_file<R: Rng + ?Sized>(zipf: &ZipfDistribution, rng: &mut R) -> FileId {
    FileId((zipf.sample(rng) - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MB;

    fn small_catalog() -> FileCatalog {
        FileCatalog::paper_table1(100, 0)
    }

    #[test]
    fn poisson_trace_rate_and_order() {
        let c = small_catalog();
        let t = Trace::poisson(&c, 5.0, 2000.0, 42);
        assert!((t.mean_rate() - 5.0).abs() < 0.3, "rate {}", t.mean_rate());
        for w in t.requests().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert_eq!(t.horizon(), 2000.0);
    }

    #[test]
    fn poisson_trace_respects_popularity() {
        let c = small_catalog();
        let t = Trace::poisson(&c, 50.0, 2000.0, 1);
        let counts = t.per_file_counts(c.len());
        // file 0 (most popular) should beat file 99 (least popular) clearly
        assert!(
            counts[0] > counts[99] * 2,
            "{} vs {}",
            counts[0],
            counts[99]
        );
    }

    #[test]
    fn trace_is_seed_deterministic() {
        let c = small_catalog();
        assert_eq!(
            Trace::poisson(&c, 3.0, 500.0, 9),
            Trace::poisson(&c, 3.0, 500.0, 9)
        );
        assert_ne!(
            Trace::poisson(&c, 3.0, 500.0, 9),
            Trace::poisson(&c, 3.0, 500.0, 10)
        );
    }

    #[test]
    fn batched_trace_targets_similar_sizes() {
        let c = small_catalog();
        let cfg = BatchConfig {
            burst_rate: 0.2,
            min_batch: 4,
            max_batch: 4,
            intra_batch_gap_s: 0.0,
        };
        let t = Trace::batched(&c, &cfg, 5000.0, 3);
        assert!(!t.is_empty());
        // Order files by size; a burst must reference a contiguous run of
        // size ranks (that is the §3.2 "similar sizes" semantics).
        let mut by_size: Vec<FileId> = c.iter().map(|f| f.id).collect();
        by_size.sort_by_key(|id| c.file(*id).size_bytes);
        let mut rank_of = vec![0usize; c.len()];
        for (rank, id) in by_size.iter().enumerate() {
            rank_of[id.index()] = rank;
        }
        let reqs = t.requests();
        let mut i = 0;
        while i < reqs.len() {
            let mut j = i;
            while j < reqs.len() && reqs[j].time == reqs[i].time {
                j += 1;
            }
            if j - i >= 2 {
                let mut ranks: Vec<usize> =
                    reqs[i..j].iter().map(|r| rank_of[r.file.index()]).collect();
                ranks.sort_unstable();
                for w in ranks.windows(2) {
                    assert!(w[1] - w[0] <= 1, "burst ranks not adjacent: {ranks:?}");
                }
            }
            i = j;
        }
    }

    #[test]
    fn csv_roundtrip() {
        let c = small_catalog();
        let t = Trace::poisson(&c, 2.0, 100.0, 5);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(std::io::Cursor::new(&buf), Some(100.0)).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in back.requests().iter().zip(t.requests()) {
            assert_eq!(a.file, b.file);
            assert!((a.time - b.time).abs() < 1e-5);
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        let bad = "time_s,file_id\n1.0,3\nnot-a-number,4\n";
        let err = Trace::read_csv(std::io::Cursor::new(bad), None).unwrap_err();
        assert!(matches!(err, TraceIoError::Malformed(3, _)));
    }

    #[test]
    fn csv_rejects_out_of_order() {
        let bad = "time_s,file_id\n5.0,1\n4.0,2\n";
        let err = Trace::read_csv(std::io::Cursor::new(bad), None).unwrap_err();
        assert!(matches!(err, TraceIoError::OutOfOrder(3)));
    }

    #[test]
    fn time_scaling() {
        let t = Trace::new(
            vec![
                Request {
                    time: 1.0,
                    file: FileId(0),
                },
                Request {
                    time: 2.0,
                    file: FileId(1),
                },
            ],
            4.0,
        );
        let s = t.time_scaled(0.5);
        assert_eq!(s.requests()[0].time, 0.5);
        assert_eq!(s.requests()[1].time, 1.0);
        assert_eq!(s.horizon(), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn window_rebases_and_filters() {
        let t = Trace::new(
            vec![
                Request {
                    time: 1.0,
                    file: FileId(0),
                },
                Request {
                    time: 5.0,
                    file: FileId(1),
                },
                Request {
                    time: 9.0,
                    file: FileId(2),
                },
            ],
            10.0,
        );
        let w = t.window(4.0, 9.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.requests()[0].file, FileId(1));
        assert!((w.requests()[0].time - 1.0).abs() < 1e-12);
        assert_eq!(w.horizon(), 5.0);
    }

    #[test]
    #[should_panic(expected = "bad window")]
    fn window_beyond_horizon_rejected() {
        let t = Trace::new(vec![], 10.0);
        let _ = t.window(5.0, 20.0);
    }

    #[test]
    fn merge_interleaves_in_time_order() {
        let a = Trace::new(
            vec![
                Request {
                    time: 1.0,
                    file: FileId(0),
                },
                Request {
                    time: 5.0,
                    file: FileId(0),
                },
            ],
            6.0,
        );
        let b = Trace::new(
            vec![Request {
                time: 3.0,
                file: FileId(1),
            }],
            12.0,
        );
        let m = a.merge(&b);
        assert_eq!(m.len(), 3);
        let times: Vec<f64> = m.requests().iter().map(|r| r.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(m.horizon(), 12.0);
    }

    #[test]
    fn distinct_files_counts_unique_ids() {
        let t = Trace::new(
            vec![
                Request {
                    time: 0.0,
                    file: FileId(1),
                },
                Request {
                    time: 1.0,
                    file: FileId(1),
                },
                Request {
                    time: 2.0,
                    file: FileId(7),
                },
            ],
            2.0,
        );
        assert_eq!(t.distinct_files(), 2);
    }

    #[test]
    fn popularity_slope_detects_zipf() {
        // counts ∝ 1/rank → slope ≈ 1
        let counts: Vec<u64> = (1..=200u64).map(|r| 10_000 / r).collect();
        let slope = popularity_slope(&counts);
        assert!((slope - 1.0).abs() < 0.1, "slope {slope}");
        // uniform counts → slope ≈ 0
        let flat = vec![50u64; 200];
        assert!(popularity_slope(&flat).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "requests out of order")]
    fn unordered_requests_rejected() {
        let _ = Trace::new(
            vec![
                Request {
                    time: 2.0,
                    file: FileId(0),
                },
                Request {
                    time: 1.0,
                    file: FileId(0),
                },
            ],
            2.0,
        );
    }

    #[test]
    fn empty_trace_mean_rate() {
        let t = Trace::new(vec![], 0.0);
        assert_eq!(t.mean_rate(), 0.0);
        let _ = MB; // keep the import used in all cfgs
    }
}
