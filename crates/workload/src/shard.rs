//! Splitting one arrival stream into per-shard streams.
//!
//! The sharded replay engine partitions the fleet by disk id: global disk
//! `d` belongs to shard `d % shards`. After allocation every request's
//! target disk is a pure function of its file, so the arrival stream
//! splits the same way — this module provides the two splitters the
//! engine uses:
//!
//! - [`ShardedTraceView`] — a skip-scanning [`TraceSource`] over an
//!   in-memory request slice. Zero-copy: `S` views share the one slice,
//!   each yielding only its shard's requests. Used for [`Trace`]-backed
//!   and pre-materialised replays.
//! - [`demux`] — a single-reader fan-out for streaming sources
//!   ([`crate::CsvTraceSource`] especially): one pump thread drains the
//!   source once, routing requests into bounded per-shard channels in
//!   [`Request`]-chunk batches; each shard consumes a [`ShardReceiver`],
//!   which is itself a [`TraceSource`]. The file is scanned exactly once
//!   however many shards run.
//!
//! Routing is deterministic and identical between the two splitters:
//! requests for unmapped files go to shard 0, which surfaces the same
//! unmapped-file error the unsharded engine would raise.
//!
//! [`Trace`]: crate::Trace

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;

use crate::source::TraceSource;
use crate::trace::{Request, TraceIoError};

/// Requests per channel batch: large enough to amortise channel overhead,
/// small enough that per-shard buffering stays a few pages.
const CHUNK: usize = 4096;
/// Bounded channel depth, in batches. With every consumer guaranteed to
/// drain or drop its receiver, a small bound caps memory without risking
/// deadlock.
const DEPTH: usize = 4;

/// The shard a request for `file` routes to, given the file→disk map and
/// the shard count: the target disk's `disk % shards`. Files outside the
/// map (or mapped to [`usize::MAX`], the engine's unmapped sentinel) route
/// to shard 0 so exactly one shard raises the unmapped-file error the
/// unsharded engine would.
#[inline]
pub fn route_shard(file_to_disk: &[usize], shards: usize, file: usize) -> usize {
    match file_to_disk.get(file) {
        Some(&disk) if disk != usize::MAX => disk % shards,
        _ => 0,
    }
}

/// A skip-scanning [`TraceSource`] over a shared in-memory request slice:
/// yields exactly the requests routed to one shard, in trace order. `S`
/// views over the same slice partition it exactly.
#[derive(Debug, Clone)]
pub struct ShardedTraceView<'a> {
    requests: &'a [Request],
    file_to_disk: &'a [usize],
    shards: usize,
    shard: usize,
    horizon: f64,
    next: usize,
}

impl<'a> ShardedTraceView<'a> {
    /// View of shard `shard` of `shards` over `requests` (time-ordered,
    /// horizon `horizon`), routed through `file_to_disk`.
    pub fn new(
        requests: &'a [Request],
        horizon: f64,
        file_to_disk: &'a [usize],
        shards: usize,
        shard: usize,
    ) -> Self {
        assert!(shards > 0 && shard < shards, "shard {shard} of {shards}");
        let mut view = ShardedTraceView {
            requests,
            file_to_disk,
            shards,
            shard,
            horizon,
            next: 0,
        };
        view.skip_foreign();
        view
    }

    /// Advance `next` past requests belonging to other shards.
    fn skip_foreign(&mut self) {
        while let Some(r) = self.requests.get(self.next) {
            if route_shard(self.file_to_disk, self.shards, r.file.0 as usize) == self.shard {
                break;
            }
            self.next += 1;
        }
    }
}

impl TraceSource for ShardedTraceView<'_> {
    #[inline]
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        Ok(self.requests.get(self.next).map(|r| r.time))
    }

    #[inline]
    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        let r = self.requests.get(self.next).copied();
        if r.is_some() {
            self.next += 1;
            self.skip_foreign();
        }
        Ok(r)
    }

    #[inline]
    fn peek_seq(&mut self) -> Option<u64> {
        // `next` indexes the shared global slice, so it is exactly the
        // ordinal an unsharded cursor would report for this request.
        (self.next < self.requests.len()).then_some(self.next as u64)
    }

    #[inline]
    fn horizon(&self) -> f64 {
        self.horizon
    }
}

/// One message on a demux channel: a batch of routed requests (each
/// tagged with its global ordinal in the undemuxed stream), or the shared
/// copy of the pump's terminal error.
enum Batch {
    Requests(Vec<(u64, Request)>),
    Failed(Arc<TraceIoError>),
}

/// The producer half of [`demux`]: owns the underlying source and the send
/// ends of every shard channel. Run [`DemuxPump::run`] on its own thread
/// while the shard engines consume their [`ShardReceiver`]s.
pub struct DemuxPump<S> {
    source: S,
    txs: Vec<SyncSender<Batch>>,
}

impl<S: TraceSource> DemuxPump<S> {
    /// Drain the source to exhaustion, routing each request to its shard's
    /// channel through `file_to_disk` (same rule as [`route_shard`]).
    ///
    /// On a source error the error is wrapped in an [`Arc`] and fanned out
    /// to every shard, so each consumer fails with
    /// [`TraceIoError::Shared`]. If a consumer hangs up (its engine
    /// failed), the pump stops early — remaining consumers see end of
    /// stream, and the caller surfaces the consumer's own error.
    pub fn run(mut self, file_to_disk: &[usize]) {
        let shards = self.txs.len();
        let mut chunks: Vec<Vec<(u64, Request)>> =
            (0..shards).map(|_| Vec::with_capacity(CHUNK)).collect();
        let mut seq: u64 = 0;
        loop {
            match self.source.next_request() {
                Ok(Some(r)) => {
                    let s = route_shard(file_to_disk, shards, r.file.0 as usize);
                    chunks[s].push((seq, r));
                    seq += 1;
                    if chunks[s].len() == CHUNK {
                        let full = std::mem::replace(&mut chunks[s], Vec::with_capacity(CHUNK));
                        if self.txs[s].send(Batch::Requests(full)).is_err() {
                            return;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let shared = Arc::new(e);
                    for tx in &self.txs {
                        let _ = tx.send(Batch::Failed(Arc::clone(&shared)));
                    }
                    return;
                }
            }
        }
        for (s, chunk) in chunks.into_iter().enumerate() {
            if !chunk.is_empty() && self.txs[s].send(Batch::Requests(chunk)).is_err() {
                return;
            }
        }
        // Dropping the senders closes every channel: consumers observe a
        // clean end of stream.
    }
}

/// The consumer half of [`demux`]: a blocking [`TraceSource`] over one
/// shard's channel. Yields the shard's requests in trace order; after the
/// pump reports an error, every subsequent call returns
/// [`TraceIoError::Shared`] over the same underlying failure.
pub struct ShardReceiver {
    rx: Receiver<Batch>,
    buf: VecDeque<(u64, Request)>,
    horizon: f64,
    failed: Option<Arc<TraceIoError>>,
    done: bool,
}

impl ShardReceiver {
    /// Block until a request is buffered, the stream ends, or the pump's
    /// error arrives.
    fn refill(&mut self) -> Result<(), TraceIoError> {
        while self.buf.is_empty() && !self.done {
            match self.rx.recv() {
                Ok(Batch::Requests(v)) => self.buf.extend(v),
                Ok(Batch::Failed(e)) => {
                    self.failed = Some(e);
                    self.done = true;
                }
                Err(_) => self.done = true,
            }
        }
        match &self.failed {
            Some(e) => Err(TraceIoError::Shared(Arc::clone(e))),
            None => Ok(()),
        }
    }
}

impl TraceSource for ShardReceiver {
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        self.refill()?;
        Ok(self.buf.front().map(|(_, r)| r.time))
    }

    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        self.refill()?;
        Ok(self.buf.pop_front().map(|(_, r)| r))
    }

    fn peek_seq(&mut self) -> Option<u64> {
        // A refill failure surfaces through the fallible accessors; here
        // it just reads as end-of-stream.
        let _ = self.refill();
        self.buf.front().map(|(seq, _)| *seq)
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }
}

/// Split `source` into `shards` per-shard streams behind bounded channels.
/// Returns the pump (drain it on its own thread with [`DemuxPump::run`])
/// and one [`ShardReceiver`] per shard. The source is read exactly once.
pub fn demux<S: TraceSource>(source: S, shards: usize) -> (DemuxPump<S>, Vec<ShardReceiver>) {
    assert!(shards > 0, "demux needs at least one shard");
    let horizon = source.horizon();
    let mut txs = Vec::with_capacity(shards);
    let mut rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = sync_channel(DEPTH);
        txs.push(tx);
        rxs.push(ShardReceiver {
            rx,
            buf: VecDeque::new(),
            horizon,
            failed: None,
            done: false,
        });
    }
    (DemuxPump { source, txs }, rxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{FileCatalog, FileId};
    use crate::source::{CsvTraceSource, InMemorySource};
    use crate::trace::Trace;

    fn drain(src: &mut dyn TraceSource) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(r) = src.next_request().expect("source yields") {
            out.push(r);
        }
        out
    }

    fn fixture() -> (Trace, Vec<usize>) {
        let catalog = FileCatalog::paper_table1(24, 0);
        let trace = Trace::poisson(&catalog, 3.0, 300.0, 7);
        // 24 files round-robined over 5 disks.
        let file_to_disk: Vec<usize> = (0..24).map(|f| f % 5).collect();
        (trace, file_to_disk)
    }

    #[test]
    fn sharded_views_partition_the_trace_exactly() {
        let (trace, file_to_disk) = fixture();
        for shards in [1, 2, 3, 5, 8] {
            let mut merged: Vec<Vec<Request>> = (0..shards)
                .map(|s| {
                    let mut view = ShardedTraceView::new(
                        trace.requests(),
                        trace.horizon(),
                        &file_to_disk,
                        shards,
                        s,
                    );
                    assert_eq!(view.horizon(), trace.horizon());
                    drain(&mut view)
                })
                .collect();
            // Every request lands in exactly one shard, and re-interleaving
            // by time order reproduces the trace verbatim.
            let total: usize = merged.iter().map(Vec::len).sum();
            assert_eq!(total, trace.len(), "{shards} shards dropped requests");
            let mut rebuilt = Vec::with_capacity(total);
            let mut cursors = vec![0usize; shards];
            for r in trace.requests() {
                let s = route_shard(&file_to_disk, shards, r.file.0 as usize);
                assert_eq!(merged[s][cursors[s]], *r, "order within shard {s}");
                cursors[s] += 1;
                rebuilt.push(*r);
            }
            assert_eq!(rebuilt.len(), total);
            merged.clear();
        }
    }

    #[test]
    fn demux_round_trips_a_csv_stream_in_shard_order() {
        let (trace, file_to_disk) = fixture();
        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let source = CsvTraceSource::from_reader(std::io::Cursor::new(csv), trace.horizon());
        let shards = 3;
        let (pump, mut rxs) = demux(source, shards);
        let map = file_to_disk.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || pump.run(&map));
            let got: Vec<Vec<Request>> = rxs.iter_mut().map(|rx| drain(rx)).collect();
            // Compare against the in-memory view split (CSV print precision
            // rounds times, so compare file ids and counts).
            for (s, stream) in got.iter().enumerate() {
                let mut view = ShardedTraceView::new(
                    trace.requests(),
                    trace.horizon(),
                    &file_to_disk,
                    shards,
                    s,
                );
                let want = drain(&mut view);
                assert_eq!(stream.len(), want.len(), "shard {s} length");
                for (a, b) in stream.iter().zip(&want) {
                    assert_eq!(a.file, b.file, "shard {s} order");
                    assert!((a.time - b.time).abs() < 1e-5);
                }
            }
        });
    }

    #[test]
    fn demux_fans_a_source_error_out_to_every_shard() {
        let bad = "1.0,0\n2.0,1\n1.5,2\n"; // out of order at line 3
        let source = CsvTraceSource::from_reader(std::io::Cursor::new(bad), 10.0);
        let (pump, mut rxs) = demux(source, 3);
        std::thread::scope(|scope| {
            scope.spawn(move || pump.run(&[0, 1, 2]));
            for (s, rx) in rxs.iter_mut().enumerate() {
                let mut saw_error = false;
                loop {
                    match rx.next_request() {
                        Ok(Some(_)) => {}
                        Ok(None) => break,
                        Err(e) => {
                            assert!(
                                matches!(
                                    &e,
                                    TraceIoError::Shared(inner)
                                        if matches!(**inner, TraceIoError::OutOfOrder(3))
                                ),
                                "shard {s}: unexpected error {e}"
                            );
                            saw_error = true;
                            // The error is persistent.
                            assert!(rx.next_request().is_err());
                            break;
                        }
                    }
                }
                assert!(saw_error, "shard {s} missed the fan-out error");
            }
        });
    }

    #[test]
    fn unmapped_files_route_to_shard_zero() {
        assert_eq!(route_shard(&[4, usize::MAX], 3, 0), 1);
        assert_eq!(route_shard(&[4, usize::MAX], 3, 1), 0, "MAX sentinel");
        assert_eq!(route_shard(&[4, usize::MAX], 3, 9), 0, "out of range");
        let requests = vec![Request {
            time: 1.0,
            file: FileId(77),
        }];
        for s in 0..3 {
            let mut view = ShardedTraceView::new(&requests, 10.0, &[0, 1, 2], 3, s);
            let got = drain(&mut view);
            assert_eq!(got.len(), usize::from(s == 0), "shard {s}");
        }
    }

    #[test]
    fn single_shard_view_is_the_whole_trace() {
        let (trace, file_to_disk) = fixture();
        let mut view =
            ShardedTraceView::new(trace.requests(), trace.horizon(), &file_to_disk, 1, 0);
        let mut all = InMemorySource::new(&trace);
        assert_eq!(drain(&mut view), drain(&mut all));
    }
}
