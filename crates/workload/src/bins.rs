//! Logarithmic size binning — the paper's 80-bin analysis (§5.1).
//!
//! "We classified the 88,631 files into 80 bins by their size … the
//! distribution of file sizes is closely related to a Zipf distribution
//! because the proportion decreases almost linearly in the log-log scale."
//! [`SizeBins`] reproduces that classification and the log-log linearity
//! check.

use serde::{Deserialize, Serialize};

/// A set of logarithmically spaced size bins over `[min_bytes, max_bytes]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeBins {
    edges: Vec<f64>, // len = bins + 1, ascending, log-spaced
    counts: Vec<u64>,
}

impl SizeBins {
    /// Create `bins ≥ 1` log-spaced bins spanning `[min_bytes, max_bytes]`.
    ///
    /// # Panics
    /// If `bins == 0` or the range is degenerate.
    pub fn new(bins: usize, min_bytes: u64, max_bytes: u64) -> Self {
        assert!(bins >= 1, "need at least one bin");
        assert!(min_bytes >= 1 && max_bytes > min_bytes, "degenerate range");
        let lo = (min_bytes as f64).ln();
        let hi = (max_bytes as f64).ln();
        let edges = (0..=bins)
            .map(|i| (lo + (hi - lo) * i as f64 / bins as f64).exp())
            .collect();
        SizeBins {
            edges,
            counts: vec![0; bins],
        }
    }

    /// The paper's configuration: 80 bins.
    pub fn paper_80(min_bytes: u64, max_bytes: u64) -> Self {
        Self::new(80, min_bytes, max_bytes)
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when there are no bins (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Index of the bin containing `bytes` (clamped to the outermost bins).
    pub fn bin_of(&self, bytes: u64) -> usize {
        let b = bytes as f64;
        if b <= self.edges[0] {
            return 0;
        }
        let last = self.counts.len() - 1;
        if b >= self.edges[self.edges.len() - 1] {
            return last;
        }
        // first edge strictly greater than b, minus one
        let idx = self.edges.partition_point(|&e| e <= b);
        (idx - 1).min(last)
    }

    /// Record one file of the given size.
    pub fn record(&mut self, bytes: u64) {
        let b = self.bin_of(bytes);
        self.counts[b] += 1;
    }

    /// Record many sizes.
    pub fn record_all(&mut self, sizes: impl IntoIterator<Item = u64>) {
        for s in sizes {
            self.record(s);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin proportions of the total population (0 for an empty bin set).
    pub fn proportions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Geometric midpoint (bytes) of bin `i`.
    pub fn midpoint(&self, i: usize) -> f64 {
        (self.edges[i] * self.edges[i + 1]).sqrt()
    }

    /// Least-squares fit of `ln(proportion)` against `ln(bin midpoint)` over
    /// non-empty bins; returns `(slope, r2)`. A clearly negative slope with
    /// good `r²` is the paper's "decreases almost linearly in the log-log
    /// scale" observation.
    pub fn log_log_fit(&self) -> Option<(f64, f64)> {
        let props = self.proportions();
        let pts: Vec<(f64, f64)> = props
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, &p)| (self.midpoint(i).ln(), p.ln()))
            .collect();
        if pts.len() < 3 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let syy: f64 = pts.iter().map(|p| p.1 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let r_num = n * sxy - sx * sy;
        let r_den = (denom * (n * syy - sy * sy)).sqrt();
        let r2 = if r_den > 0.0 {
            (r_num / r_den).powi(2)
        } else {
            0.0
        };
        Some((slope, r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GB, MB};

    #[test]
    fn edges_are_log_spaced() {
        let b = SizeBins::new(4, MB, 16 * MB);
        // ratios between consecutive edges are equal (2x each here)
        for w in b.edges.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bin_of_respects_edges() {
        let b = SizeBins::new(4, MB, 16 * MB);
        assert_eq!(b.bin_of(MB), 0);
        assert_eq!(b.bin_of(3 * MB), 1);
        assert_eq!(b.bin_of(5 * MB), 2);
        assert_eq!(b.bin_of(9 * MB), 3);
        // clamping
        assert_eq!(b.bin_of(1), 0);
        assert_eq!(b.bin_of(100 * MB), 3);
    }

    #[test]
    fn record_and_proportions() {
        let mut b = SizeBins::new(2, MB, 4 * MB);
        b.record_all([MB, MB, 3 * MB]);
        assert_eq!(b.counts(), &[2, 1]);
        let p = b.proportions();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bins_have_zero_proportions() {
        let b = SizeBins::new(3, MB, 8 * MB);
        assert_eq!(b.proportions(), vec![0.0, 0.0, 0.0]);
        assert!(b.log_log_fit().is_none());
    }

    #[test]
    fn log_log_fit_detects_power_law() {
        // Population with count ∝ size^-1 per log bin (empty bins at the
        // large end simply drop out of the fit).
        let mut b = SizeBins::paper_80(MB, 100 * GB);
        for i in 0..80 {
            let mid = b.midpoint(i);
            let count = (1e9 / mid) as u64;
            for _ in 0..count {
                b.record(mid as u64);
            }
        }
        let (slope, r2) = b.log_log_fit().unwrap();
        assert!(slope < -0.5, "slope {slope}");
        assert!(r2 > 0.9, "r2 {r2}");
    }

    #[test]
    fn paper_80_has_80_bins() {
        assert_eq!(SizeBins::paper_80(MB, GB).len(), 80);
    }

    #[test]
    #[should_panic(expected = "degenerate range")]
    fn degenerate_range_rejected() {
        let _ = SizeBins::new(4, MB, MB);
    }
}
