//! Zipf-like distribution over ranks `1..=n`.
//!
//! The paper's popularity law (Table 1) is `p_i = c / rank_i^(1−θ)` with
//! `θ = log 0.6 / log 0.4` and `c` the normaliser `1 / H_n^{(1−θ)}` where
//! `H_n^{(a)} = Σ_{k=1..n} k^{−a}` is the generalised harmonic number. (The
//! table's `c = 1 − H` is a typo; probabilities must sum to 1.)
//!
//! Sampling is inverse-CDF with binary search: `O(log n)` per draw after an
//! `O(n)` table build — plenty for the trace sizes involved here.

use rand::{Rng, RngExt};

/// Generalised harmonic number `H_n^{(a)} = Σ_{k=1..n} k^{−a}`.
///
/// Computed by summation from the small end for accuracy.
pub fn generalized_harmonic(n: usize, a: f64) -> f64 {
    let mut sum = 0.0;
    for k in (1..=n).rev() {
        sum += (k as f64).powf(-a);
    }
    sum
}

/// A Zipf-like distribution with probability `p_i ∝ i^{−exponent}` over
/// ranks `i = 1..=n` (rank 1 is the most probable).
#[derive(Debug, Clone)]
pub struct ZipfDistribution {
    exponent: f64,
    pmf: Vec<f64>,
    cdf: Vec<f64>,
}

impl ZipfDistribution {
    /// Build a distribution over `n ≥ 1` ranks with the given exponent
    /// (≥ 0; 0 is uniform).
    ///
    /// # Panics
    /// If `n == 0` or the exponent is not finite / negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be finite and non-negative"
        );
        let h = generalized_harmonic(n, exponent);
        let mut pmf = Vec::with_capacity(n);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            let p = (i as f64).powf(-exponent) / h;
            pmf.push(p);
            acc += p;
            cdf.push(acc);
        }
        // Guard against floating error so sampling never falls off the end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        ZipfDistribution { exponent, pmf, cdf }
    }

    /// The paper's popularity distribution over `n` files
    /// (`exponent = 1 − log 0.6 / log 0.4`).
    pub fn paper_popularity(n: usize) -> Self {
        Self::new(n, crate::paper_popularity_exponent())
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.pmf.len()
    }

    /// True if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 by construction
    }

    /// The exponent used.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of rank `rank` (1-based).
    ///
    /// # Panics
    /// If `rank` is 0 or out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.pmf.len(), "rank out of range");
        self.pmf[rank - 1]
    }

    /// All probabilities, indexed by rank−1.
    pub fn probabilities(&self) -> &[f64] {
        &self.pmf
    }

    /// Draw a rank (1-based) using the supplied RNG.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.quantile(u)
    }

    /// The rank whose CDF first reaches `u ∈ [0, 1]` (inverse CDF).
    pub fn quantile(&self, u: f64) -> usize {
        debug_assert!((0.0..=1.0).contains(&u));
        // partition_point returns the count of ranks with cdf < u, i.e. the
        // 0-based index of the first rank with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_small_cases() {
        assert!((generalized_harmonic(1, 1.0) - 1.0).abs() < 1e-15);
        assert!((generalized_harmonic(3, 1.0) - (1.0 + 0.5 + 1.0 / 3.0)).abs() < 1e-12);
        assert!((generalized_harmonic(4, 0.0) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn pmf_sums_to_one() {
        for n in [1usize, 2, 10, 1000] {
            for a in [0.0, 0.44, 1.0, 2.0] {
                let z = ZipfDistribution::new(n, a);
                let sum: f64 = z.probabilities().iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "n={n} a={a} sum={sum}");
            }
        }
    }

    #[test]
    fn pmf_is_decreasing_in_rank() {
        let z = ZipfDistribution::new(100, 0.8);
        for i in 1..100 {
            assert!(z.pmf(i) > z.pmf(i + 1));
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfDistribution::new(8, 0.0);
        for i in 1..=8 {
            assert!((z.pmf(i) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_edges() {
        let z = ZipfDistribution::new(5, 1.0);
        assert_eq!(z.quantile(0.0), 1);
        assert_eq!(z.quantile(1.0), 5);
        // just below the first step boundary stays at rank 1
        assert_eq!(z.quantile(z.pmf(1) * 0.999), 1);
        // just above it moves to rank 2
        assert_eq!(z.quantile(z.pmf(1) * 1.001), 2);
    }

    #[test]
    fn sampling_matches_pmf() {
        let z = ZipfDistribution::paper_popularity(50);
        let mut rng = SmallRng::seed_from_u64(7);
        let draws = 200_000;
        let mut counts = vec![0usize; 50];
        for _ in 0..draws {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        // Rank 1 empirical frequency within 5% relative of pmf.
        let emp = counts[0] as f64 / draws as f64;
        let expect = z.pmf(1);
        assert!(
            (emp - expect).abs() / expect < 0.05,
            "empirical {emp} vs pmf {expect}"
        );
        // Monotone-ish head: rank1 strictly dominates rank 10.
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn paper_distribution_head_weight() {
        // Table 1's skew: a small number of files get a large share. With
        // n = 40 000 and exponent ≈ 0.4425, the top 1% of files should carry
        // several percent of accesses (heavier than uniform's 1%).
        let z = ZipfDistribution::paper_popularity(40_000);
        let head: f64 = (1..=400).map(|r| z.pmf(r)).sum();
        assert!(head > 0.04, "head share {head}");
        assert!(head < 0.5);
    }

    #[test]
    fn single_rank_distribution() {
        let z = ZipfDistribution::new(1, 0.7);
        assert_eq!(z.len(), 1);
        assert!((z.pmf(1) - 1.0).abs() < 1e-15);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfDistribution::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn pmf_rank_zero_panics() {
        let z = ZipfDistribution::new(3, 1.0);
        let _ = z.pmf(0);
    }
}
