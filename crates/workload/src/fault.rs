//! Fault-plan specification: the seeded, deterministic failure model the
//! simulation engine injects while replaying a workload.
//!
//! A [`FaultPlan`] is parsed from a compact `|`-separated spec grammar —
//! e.g. `crash@t=500:d7 | transient:p=1e-4 | failslow:d3:x4@200..900 |
//! wakefail:p=0.02 | mttr=300` — and describes *what* can go wrong; the
//! engine's injector decides *when*, by drawing from per-disk RNG streams
//! seeded from this plan's seed and each disk's **global** id, so a sharded
//! replay injects exactly the faults an unsharded one does.
//!
//! Clauses (whitespace around `|` and within clauses is ignored):
//!
//! | clause | meaning |
//! |--------|---------|
//! | `none` | the empty plan ([`FaultPlan::none`]) |
//! | `crash@t=T:dN` | disk `N` fail-stops at `T` seconds (repeatable) |
//! | `transient:p=P` | each service completion fails with probability `P` |
//! | `wakefail:p=P` | each spin-up completion fails with probability `P` |
//! | `failslow:dN:xF@A..B` | disk `N` serves `F`× slower in `[A, B)` s |
//! | `mttr=S` | mean-time-to-repair after a crash, seconds (default 300) |
//! | `retries=N` | per-request / per-wake retry budget (default 5) |
//! | `backoff=S` | base of the capped exponential retry backoff (default 2) |
//! | `shed=N` | shed arrivals once a disk queue holds ≥ `N` requests |
//! | `seed=N` | base seed of the per-disk fault RNG streams |
//!
//! The parser rejects non-finite numbers, probabilities outside `[0, 1]`,
//! slow-down factors below 1 and empty fail-slow windows, so a plan that
//! constructs is always physically meaningful.

use serde::{Deserialize, Serialize};

/// One scheduled fail-stop crash: disk `disk` goes offline at `at_s`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Global disk id that crashes.
    pub disk: usize,
    /// Crash time, seconds from replay start.
    pub at_s: f64,
}

/// One fail-slow window: disk `disk` serves `factor`× slower while the
/// dispatch time falls in `[from_s, to_s)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailSlowSpec {
    /// Global disk id that degrades.
    pub disk: usize,
    /// Service-time multiplier (≥ 1).
    pub factor: f64,
    /// Window start, seconds (inclusive).
    pub from_s: f64,
    /// Window end, seconds (exclusive).
    pub to_s: f64,
}

impl FailSlowSpec {
    /// Whether a dispatch at `t` on this spec's disk falls in the window.
    pub fn covers(&self, t: f64) -> bool {
        t >= self.from_s && t < self.to_s
    }
}

/// A deterministic fault plan: every failure mode the engine may inject
/// over one replay, plus the recovery/retry knobs. [`FaultPlan::none`] is
/// the empty plan the engine treats as "faults compiled out" — the no-fault
/// event loop is bit-identical to an engine without the subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled fail-stop crashes (disk offline until repaired).
    pub crashes: Vec<CrashSpec>,
    /// Probability a service completion is a transient I/O error.
    pub transient_p: f64,
    /// Probability a spin-up completion fails (the drive falls back to its
    /// sleep level; the attempted transition's energy is still charged).
    pub wakefail_p: f64,
    /// Fail-slow windows scaling a disk's service times.
    pub failslow: Vec<FailSlowSpec>,
    /// Mean time to repair after a fail-stop crash, seconds.
    pub mttr_s: f64,
    /// Retry budget: per request for transient errors, per waking episode
    /// for wake failures. Exhaustion is a counted failure (transient) or an
    /// escalated crash (wake), never a panic.
    pub retry_budget: u32,
    /// Base of the capped exponential backoff between retries, seconds
    /// (attempt `k` waits `min(backoff_base_s · 2^k, backoff_cap_s)`).
    pub backoff_base_s: f64,
    /// Ceiling of the retry backoff, seconds.
    pub backoff_cap_s: f64,
    /// Admission-control watermark: an arrival finding its disk queue at or
    /// above this depth is shed (0 disables shedding).
    pub shed_watermark: usize,
    /// Base seed of the per-disk fault RNG streams (combined with each
    /// disk's global id, so sharding cannot change which faults fire).
    pub seed: u64,
}

impl FaultPlan {
    /// The empty plan: no failure mode enabled, default recovery knobs.
    pub fn none() -> Self {
        FaultPlan {
            crashes: Vec::new(),
            transient_p: 0.0,
            wakefail_p: 0.0,
            failslow: Vec::new(),
            mttr_s: 300.0,
            retry_budget: 5,
            backoff_base_s: 2.0,
            backoff_cap_s: 60.0,
            shed_watermark: 0,
            seed: 0xFA_017,
        }
    }

    /// Whether no failure mode is enabled — the engine's fast-path test:
    /// a plan for which this holds injects nothing and costs nothing.
    pub fn is_none(&self) -> bool {
        self.crashes.is_empty()
            && self.transient_p == 0.0
            && self.wakefail_p == 0.0
            && self.failslow.is_empty()
            && self.shed_watermark == 0
    }

    /// Parse the `|`-separated spec grammar (see the module docs). Returns
    /// a human-readable message naming the offending clause on error.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for raw in spec.split('|') {
            let clause = raw.trim();
            if clause.is_empty() || clause == "none" {
                continue;
            }
            if let Some(rest) = clause.strip_prefix("crash@t=") {
                let (t, d) = rest
                    .split_once(":d")
                    .ok_or_else(|| format!("crash clause needs `crash@t=T:dN`: {clause:?}"))?;
                plan.crashes.push(CrashSpec {
                    disk: parse_usize(d, clause)?,
                    at_s: parse_time(t, clause)?,
                });
            } else if let Some(p) = clause.strip_prefix("transient:p=") {
                plan.transient_p = parse_probability(p, clause)?;
            } else if let Some(p) = clause.strip_prefix("wakefail:p=") {
                plan.wakefail_p = parse_probability(p, clause)?;
            } else if let Some(rest) = clause.strip_prefix("failslow:d") {
                let (d, rest) = rest
                    .split_once(":x")
                    .ok_or_else(|| failslow_usage(clause))?;
                let (f, window) = rest.split_once('@').ok_or_else(|| failslow_usage(clause))?;
                let (a, b) = window
                    .split_once("..")
                    .ok_or_else(|| failslow_usage(clause))?;
                let spec = FailSlowSpec {
                    disk: parse_usize(d, clause)?,
                    factor: parse_f64(f, clause)?,
                    from_s: parse_time(a, clause)?,
                    to_s: parse_time(b, clause)?,
                };
                if !(spec.factor >= 1.0) || !spec.factor.is_finite() {
                    return Err(format!("fail-slow factor must be ≥ 1: {clause:?}"));
                }
                if !(spec.to_s > spec.from_s) {
                    return Err(format!("empty fail-slow window: {clause:?}"));
                }
                plan.failslow.push(spec);
            } else if let Some(s) = clause.strip_prefix("mttr=") {
                plan.mttr_s = parse_time(s, clause)?;
            } else if let Some(n) = clause.strip_prefix("retries=") {
                plan.retry_budget = parse_usize(n, clause)? as u32;
            } else if let Some(s) = clause.strip_prefix("backoff=") {
                let base = parse_time(s, clause)?;
                if base <= 0.0 {
                    return Err(format!("backoff base must be positive: {clause:?}"));
                }
                plan.backoff_base_s = base;
            } else if let Some(n) = clause.strip_prefix("shed=") {
                plan.shed_watermark = parse_usize(n, clause)?;
            } else if let Some(n) = clause.strip_prefix("seed=") {
                plan.seed = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed in {clause:?}"))?;
            } else {
                return Err(format!(
                    "unknown fault clause {clause:?} (expected crash@t=…, transient:p=…, \
                     wakefail:p=…, failslow:d…, mttr=…, retries=…, backoff=…, shed=… or seed=…)"
                ));
            }
        }
        Ok(plan)
    }

    /// Canonical spec string re-parsing to an equal plan (`"none"` for the
    /// empty plan). Non-default recovery knobs are always spelled out.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_owned();
        }
        let defaults = FaultPlan::none();
        let mut clauses: Vec<String> = Vec::new();
        for c in &self.crashes {
            clauses.push(format!("crash@t={}:d{}", c.at_s, c.disk));
        }
        if self.transient_p > 0.0 {
            clauses.push(format!("transient:p={}", self.transient_p));
        }
        for f in &self.failslow {
            clauses.push(format!(
                "failslow:d{}:x{}@{}..{}",
                f.disk, f.factor, f.from_s, f.to_s
            ));
        }
        if self.wakefail_p > 0.0 {
            clauses.push(format!("wakefail:p={}", self.wakefail_p));
        }
        if self.mttr_s != defaults.mttr_s {
            clauses.push(format!("mttr={}", self.mttr_s));
        }
        if self.retry_budget != defaults.retry_budget {
            clauses.push(format!("retries={}", self.retry_budget));
        }
        if self.backoff_base_s != defaults.backoff_base_s {
            clauses.push(format!("backoff={}", self.backoff_base_s));
        }
        if self.shed_watermark != defaults.shed_watermark {
            clauses.push(format!("shed={}", self.shed_watermark));
        }
        if self.seed != defaults.seed {
            clauses.push(format!("seed={}", self.seed));
        }
        clauses.join(" | ")
    }

    /// The backoff before retry attempt `attempt` (0-based): a capped
    /// exponential `min(base · 2^attempt, cap)`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let factor = 2.0_f64.powi(attempt.min(30) as i32);
        (self.backoff_base_s * factor).min(self.backoff_cap_s)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

fn failslow_usage(clause: &str) -> String {
    format!("fail-slow clause needs `failslow:dN:xF@A..B`: {clause:?}")
}

fn parse_f64(s: &str, clause: &str) -> Result<f64, String> {
    s.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("bad number {s:?} in {clause:?}"))
}

fn parse_time(s: &str, clause: &str) -> Result<f64, String> {
    let t = parse_f64(s, clause)?;
    if t < 0.0 {
        return Err(format!("negative time in {clause:?}"));
    }
    Ok(t)
}

fn parse_probability(s: &str, clause: &str) -> Result<f64, String> {
    let p = parse_f64(s, clause)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability outside [0, 1] in {clause:?}"));
    }
    Ok(p)
}

fn parse_usize(s: &str, clause: &str) -> Result<usize, String> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| format!("bad count {s:?} in {clause:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_default() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        assert_eq!(p, FaultPlan::default());
        assert_eq!(p.label(), "none");
        assert_eq!(FaultPlan::parse("none").unwrap(), p);
        assert_eq!(FaultPlan::parse("").unwrap(), p);
    }

    #[test]
    fn parses_the_issue_example_spec() {
        let p = FaultPlan::parse(
            "crash@t=500:d7 | transient:p=1e-4 | failslow:d3:x4@200..900 \
             | wakefail:p=0.02 | mttr=300",
        )
        .unwrap();
        assert_eq!(
            p.crashes,
            vec![CrashSpec {
                disk: 7,
                at_s: 500.0
            }]
        );
        assert_eq!(p.transient_p, 1e-4);
        assert_eq!(p.wakefail_p, 0.02);
        assert_eq!(
            p.failslow,
            vec![FailSlowSpec {
                disk: 3,
                factor: 4.0,
                from_s: 200.0,
                to_s: 900.0,
            }]
        );
        assert_eq!(p.mttr_s, 300.0);
        assert!(!p.is_none());
    }

    #[test]
    fn label_round_trips_through_parse() {
        for spec in [
            "crash@t=500:d7 | transient:p=0.0001 | wakefail:p=0.02",
            "failslow:d3:x4@200..900 | retries=2 | backoff=5 | shed=64 | seed=99",
            "transient:p=0.5 | mttr=120",
            "none",
        ] {
            let p = FaultPlan::parse(spec).unwrap();
            assert_eq!(FaultPlan::parse(&p.label()).unwrap(), p, "spec {spec:?}");
        }
    }

    #[test]
    fn recovery_knobs_alone_keep_the_plan_none() {
        // mttr/retries/backoff/seed without a failure mode: nothing can
        // fire, so the engine's fast path must stay eligible.
        let p = FaultPlan::parse("mttr=60 | retries=9 | seed=4").unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "crash@t=500",            // missing disk
            "transient:p=1.5",        // probability out of range
            "transient:p=NaN",        // non-finite
            "wakefail:p=-0.1",        // negative probability
            "failslow:d3:x0.5@0..10", // factor < 1
            "failslow:d3:x2@10..10",  // empty window
            "failslow:d3:x2@9..1",    // inverted window
            "crash@t=-5:d0",          // negative time
            "backoff=0",              // non-positive backoff
            "explode:p=1",            // unknown clause
            "retries=-1",             // negative count
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = FaultPlan::parse("transient:p=0.1 | backoff=2").unwrap();
        assert_eq!(p.backoff_s(0), 2.0);
        assert_eq!(p.backoff_s(1), 4.0);
        assert_eq!(p.backoff_s(2), 8.0);
        assert_eq!(p.backoff_s(30), p.backoff_cap_s);
        assert_eq!(p.backoff_s(u32::MAX), p.backoff_cap_s);
    }

    #[test]
    fn failslow_window_is_half_open() {
        let f = FailSlowSpec {
            disk: 0,
            factor: 2.0,
            from_s: 10.0,
            to_s: 20.0,
        };
        assert!(!f.covers(9.999));
        assert!(f.covers(10.0));
        assert!(f.covers(19.999));
        assert!(!f.covers(20.0));
    }

    #[test]
    fn multiple_crashes_accumulate() {
        let p = FaultPlan::parse("crash@t=10:d0 | crash@t=20:d0 | crash@t=5:d3").unwrap();
        assert_eq!(p.crashes.len(), 3);
        assert_eq!(FaultPlan::parse(&p.label()).unwrap(), p);
    }
}
