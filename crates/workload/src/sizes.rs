//! Rank–size models: the paper's "inverse Zipf-like" file-size law.
//!
//! Table 1 gives only the endpoints (188 MB minimum, 20 GB maximum) and the
//! footprint (12.86 TB over 40 000 files). A power law over size-rank,
//!
//! ```text
//! s_k = s_max · k^(−β),   k = 1..n  (k = 1 the largest file)
//! ```
//!
//! with `β` chosen so that `s_n = s_min` reproduces all three published
//! numbers at once: `β = ln(s_max/s_min)/ln n ≈ 0.4404` gives
//! `s_n ≈ 188 MB` and `Σ s_k ≈ 13 TB ≈ 12.86 TB`. This is also consistent
//! with the text: "the distribution of their sizes follows inverse Zipf-like
//! distribution".

use serde::{Deserialize, Serialize};

/// A deterministic rank→size power law (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankSizeModel {
    /// Size of the largest file (size-rank 1), bytes.
    pub max_bytes: u64,
    /// Power-law decay exponent β ≥ 0.
    pub beta: f64,
    /// Number of files.
    pub n: usize,
}

impl RankSizeModel {
    /// Model with endpoints pinned: rank 1 has `max_bytes`, rank `n` has
    /// (approximately, up to rounding) `min_bytes`.
    ///
    /// # Panics
    /// If `n == 0`, `max_bytes < min_bytes`, or `min_bytes == 0`.
    pub fn with_endpoints(n: usize, min_bytes: u64, max_bytes: u64) -> Self {
        assert!(n >= 1, "need at least one file");
        assert!(min_bytes >= 1, "min size must be positive");
        assert!(max_bytes >= min_bytes, "max must be >= min");
        let beta = if n == 1 {
            0.0
        } else {
            (max_bytes as f64 / min_bytes as f64).ln() / (n as f64).ln()
        };
        RankSizeModel { max_bytes, beta, n }
    }

    /// The paper's Table 1 model: 40 000 files, 188 MB – 20 GB.
    pub fn paper_table1(n: usize) -> Self {
        Self::with_endpoints(n, 188 * crate::MB, 20 * crate::GB)
    }

    /// Size (bytes) of the file at size-rank `k` (1-based; rank 1 largest).
    ///
    /// # Panics
    /// If `k` is 0 or out of range.
    pub fn size_of_rank(&self, k: usize) -> u64 {
        assert!(k >= 1 && k <= self.n, "size rank out of range");
        (self.max_bytes as f64 * (k as f64).powf(-self.beta)).round() as u64
    }

    /// Total bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        (1..=self.n).map(|k| self.size_of_rank(k)).sum()
    }

    /// All sizes by rank (index 0 = rank 1 = largest).
    pub fn sizes(&self) -> Vec<u64> {
        (1..=self.n).map(|k| self.size_of_rank(k)).collect()
    }
}

/// Find, by bisection on β, the model over `n` files with fixed `max_bytes`
/// whose total footprint is within `tol_bytes` of `target_total` (larger β ⇒
/// faster decay ⇒ smaller total).
///
/// Returns the calibrated model. Useful when reproducing a corpus for which
/// only the aggregate footprint is published.
pub fn calibrate_beta_for_total(
    n: usize,
    max_bytes: u64,
    target_total: u64,
    tol_bytes: u64,
) -> RankSizeModel {
    assert!(n >= 1);
    assert!(
        target_total >= max_bytes,
        "target must fit at least the largest file"
    );
    let mut lo = 0.0_f64; // total = n * max (largest possible)
    let mut hi = 8.0_f64; // total ≈ max (fastest practical decay)
    let model_with = |beta: f64| RankSizeModel { max_bytes, beta, n };
    // Ensure the target is bracketed; with beta=0 total = n·max ≥ target.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let total = model_with(mid).total_bytes();
        if total.abs_diff(target_total) <= tol_bytes {
            return model_with(mid);
        }
        if total > target_total {
            lo = mid; // decay too slow, total too big → increase beta
        } else {
            hi = mid;
        }
    }
    model_with(0.5 * (lo + hi))
}

/// Statistics helper: arithmetic mean size of a model, bytes.
pub fn mean_bytes(model: &RankSizeModel) -> f64 {
    model.total_bytes() as f64 / model.n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GB, MB, TB};

    #[test]
    fn paper_model_reproduces_table1_endpoints() {
        let m = RankSizeModel::paper_table1(40_000);
        assert_eq!(m.size_of_rank(1), 20 * GB);
        let min = m.size_of_rank(40_000);
        // β is pinned so rank n lands on 188 MB exactly (up to rounding).
        assert!(
            (min as f64 - 188.0e6).abs() < 2.0e6,
            "smallest file {min} ≉ 188 MB"
        );
    }

    #[test]
    fn paper_model_reproduces_table1_footprint() {
        // Table 1: "Space requirement for all files: 12.86 TB". The pure
        // power law with pinned endpoints lands within a few percent.
        let m = RankSizeModel::paper_table1(40_000);
        let total = m.total_bytes();
        assert!(
            total > 12 * TB && total < 15 * TB,
            "total {} TB not in the Table 1 ballpark",
            total / TB
        );
    }

    #[test]
    fn sizes_decrease_with_rank() {
        let m = RankSizeModel::paper_table1(1000);
        let sizes = m.sizes();
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn single_file_model() {
        let m = RankSizeModel::with_endpoints(1, 100, 100);
        assert_eq!(m.size_of_rank(1), 100);
        assert_eq!(m.beta, 0.0);
    }

    #[test]
    fn equal_endpoints_give_constant_sizes() {
        let m = RankSizeModel::with_endpoints(10, 5 * MB, 5 * MB);
        for k in 1..=10 {
            assert_eq!(m.size_of_rank(k), 5 * MB);
        }
    }

    #[test]
    fn calibration_hits_target_total() {
        let target = 2 * TB;
        let m = calibrate_beta_for_total(10_000, 20 * GB, target, 10 * MB);
        let total = m.total_bytes();
        assert!(
            total.abs_diff(target) <= 10 * MB,
            "calibrated total {total} vs target {target}"
        );
    }

    #[test]
    fn calibration_monotonicity_sanity() {
        let loose = RankSizeModel {
            max_bytes: GB,
            beta: 0.2,
            n: 100,
        };
        let tight = RankSizeModel {
            max_bytes: GB,
            beta: 1.5,
            n: 100,
        };
        assert!(loose.total_bytes() > tight.total_bytes());
    }

    #[test]
    fn mean_bytes_matches_total() {
        let m = RankSizeModel::paper_table1(100);
        assert!((mean_bytes(&m) * 100.0 - m.total_bytes() as f64).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "size rank out of range")]
    fn rank_out_of_range_panics() {
        let m = RankSizeModel::paper_table1(10);
        let _ = m.size_of_rank(11);
    }
}
