//! Arrival processes: Poisson (Table 1), batched bursts (§3.2), and
//! non-stationary rate curves.
//!
//! The paper's synthetic experiments use Poisson arrivals with rate
//! `R ∈ 1..12` per second. §3.2 additionally motivates `Pack_Disks_v` with a
//! pattern seen in the real logs: "many users request a batch of files of
//! similar sizes all at once" — modelled here as a compound-Poisson process
//! whose bursts target runs of adjacent size-ranked files.
//!
//! [`RateCurve`] describes a time-varying arrival rate — sinusoidal
//! diurnal cycles, flash-crowd spikes, piecewise-constant tenant ramps —
//! and [`ThinnedProcess`] turns one into arrival instants by
//! Lewis–Shedler thinning: candidates are drawn from a homogeneous
//! Poisson process at the curve's maximum rate and accepted with
//! probability `rate(t) / max_rate`. The result is an exact (not
//! approximate) sample of the non-homogeneous process, seeded and fully
//! deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// Sample an exponential inter-arrival time with the given `rate` (events
/// per second) via inverse transform.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    // 1 − u ∈ (0, 1]: avoids ln(0).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// A homogeneous Poisson process generating arrival instants.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    clock: f64,
    /// An arrival already drawn but beyond the last requested horizon; it is
    /// replayed first so extending the horizon never drops arrivals.
    pending: Option<f64>,
    rng: SmallRng,
}

impl PoissonProcess {
    /// New process with `rate` events/second starting at time 0.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        PoissonProcess {
            rate,
            clock: 0.0,
            pending: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Next arrival instant (monotone increasing).
    pub fn next_arrival(&mut self) -> f64 {
        if let Some(t) = self.pending.take() {
            return t;
        }
        self.clock += sample_exponential(&mut self.rng, self.rate);
        self.clock
    }

    /// All arrivals strictly before `horizon`, from the current clock.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                // Buffer the overshooting arrival so it is not lost if the
                // caller extends the horizon later.
                self.pending = Some(t);
                break;
            }
            out.push(t);
        }
        out
    }
}

/// One step of a piecewise-constant rate schedule: from `start_s` on
/// (until the next step takes over), arrivals come at `rate` per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampStep {
    /// Instant this step's rate takes effect, seconds.
    pub start_s: f64,
    /// Arrival rate from then on, events/second (≥ 0; a zero-rate step is
    /// a dead interval).
    pub rate: f64,
}

/// A time-varying arrival rate `rate(t)` for non-stationary workloads.
///
/// Three shapes cover the classic service-trace patterns: a sinusoidal
/// diurnal cycle, a flash-crowd spike (linear ramp up, hold, linear
/// decay), and piecewise-constant tenant ramps. Build with the checked
/// constructors ([`RateCurve::diurnal`], [`RateCurve::flash_crowd`],
/// [`RateCurve::ramps`]) or parse a CLI spec with [`RateCurve::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum RateCurve {
    /// `base + amplitude · sin(2π (t + phase_s) / period_s)` — the
    /// sinusoidal day/night cycle. `amplitude ≤ base` keeps the rate
    /// non-negative.
    Diurnal {
        /// Mean arrival rate, events/second.
        base: f64,
        /// Peak deviation from the mean (≤ `base`), events/second.
        amplitude: f64,
        /// Cycle length, seconds.
        period_s: f64,
        /// Phase offset, seconds (0 starts at the mean, rising).
        phase_s: f64,
    },
    /// A background `base` rate with one spike: linear ramp from `base`
    /// to `peak` over `[start_s, start_s + ramp_s)`, hold at `peak` for
    /// `hold_s`, linear decay back to `base` over `decay_s`.
    FlashCrowd {
        /// Background rate, events/second.
        base: f64,
        /// Spike rate (≥ `base`), events/second.
        peak: f64,
        /// Spike onset, seconds.
        start_s: f64,
        /// Ramp-up duration, seconds (0 = instant jump).
        ramp_s: f64,
        /// Plateau duration at `peak`, seconds.
        hold_s: f64,
        /// Decay duration back to `base`, seconds (0 = instant drop).
        decay_s: f64,
    },
    /// Piecewise-constant schedule: each [`RampStep`] holds its rate from
    /// its start until the next step. Steps are sorted by start, the
    /// first at `t = 0`.
    Ramps {
        /// The schedule, non-empty, strictly increasing starts, first at
        /// 0.
        steps: Vec<RampStep>,
    },
}

impl RateCurve {
    /// Checked sinusoidal diurnal cycle (phase 0).
    ///
    /// # Panics
    /// If `base` is not positive and finite, `amplitude` is outside
    /// `[0, base]`, or `period_s` is not positive and finite.
    pub fn diurnal(base: f64, amplitude: f64, period_s: f64) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base rate must be positive");
        assert!(
            (0.0..=base).contains(&amplitude),
            "amplitude must be within [0, base] to keep the rate non-negative"
        );
        assert!(
            period_s > 0.0 && period_s.is_finite(),
            "period must be positive"
        );
        RateCurve::Diurnal {
            base,
            amplitude,
            period_s,
            phase_s: 0.0,
        }
    }

    /// Checked flash-crowd spike over a background rate.
    ///
    /// # Panics
    /// If `base` is not positive and finite, `peak < base`, or any
    /// duration is negative or non-finite.
    pub fn flash_crowd(
        base: f64,
        peak: f64,
        start_s: f64,
        ramp_s: f64,
        hold_s: f64,
        decay_s: f64,
    ) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base rate must be positive");
        assert!(
            peak >= base && peak.is_finite(),
            "peak must be at least the base rate"
        );
        for (name, v) in [
            ("start", start_s),
            ("ramp", ramp_s),
            ("hold", hold_s),
            ("decay", decay_s),
        ] {
            assert!(v >= 0.0 && v.is_finite(), "{name} must be non-negative");
        }
        RateCurve::FlashCrowd {
            base,
            peak,
            start_s,
            ramp_s,
            hold_s,
            decay_s,
        }
    }

    /// Checked piecewise-constant tenant ramps.
    ///
    /// # Panics
    /// If `steps` is empty, starts are not strictly increasing from 0,
    /// any rate is negative or non-finite, or every rate is zero.
    pub fn ramps(steps: Vec<RampStep>) -> Self {
        assert!(!steps.is_empty(), "ramps need at least one step");
        assert_eq!(steps[0].start_s, 0.0, "the first step must start at 0");
        for w in steps.windows(2) {
            assert!(
                w[0].start_s < w[1].start_s,
                "step starts must strictly increase"
            );
        }
        for s in &steps {
            assert!(
                s.rate >= 0.0 && s.rate.is_finite(),
                "step rates must be non-negative"
            );
        }
        assert!(
            steps.iter().any(|s| s.rate > 0.0),
            "at least one step must have a positive rate"
        );
        RateCurve::Ramps { steps }
    }

    /// The instantaneous arrival rate at time `t` (events/second).
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            RateCurve::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            } => base + amplitude * (std::f64::consts::TAU * (t + phase_s) / period_s).sin(),
            RateCurve::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => {
                let dt = t - start_s;
                if dt < 0.0 {
                    *base
                } else if dt < *ramp_s {
                    base + (peak - base) * dt / ramp_s
                } else if dt < ramp_s + hold_s {
                    *peak
                } else if dt < ramp_s + hold_s + decay_s {
                    peak - (peak - base) * (dt - ramp_s - hold_s) / decay_s
                } else {
                    *base
                }
            }
            RateCurve::Ramps { steps } => steps
                .iter()
                .rev()
                .find(|s| s.start_s <= t)
                .map_or(steps[0].rate, |s| s.rate),
        }
    }

    /// The curve's maximum rate — the homogeneous candidate rate
    /// [`ThinnedProcess`] thins from.
    pub fn max_rate(&self) -> f64 {
        match self {
            RateCurve::Diurnal {
                base, amplitude, ..
            } => base + amplitude,
            RateCurve::FlashCrowd { peak, .. } => *peak,
            RateCurve::Ramps { steps } => steps.iter().map(|s| s.rate).fold(0.0, f64::max),
        }
    }

    /// A representative long-run rate, for sizing horizons from request
    /// budgets (`horizon ≈ requests / mean_rate_hint()`). Exact for the
    /// diurnal cycle over whole periods; the background rate for a flash
    /// crowd; the unweighted step mean for ramps.
    pub fn mean_rate_hint(&self) -> f64 {
        match self {
            RateCurve::Diurnal { base, .. } => *base,
            RateCurve::FlashCrowd { base, .. } => *base,
            RateCurve::Ramps { steps } => {
                steps.iter().map(|s| s.rate).sum::<f64>() / steps.len() as f64
            }
        }
    }

    /// A short human-readable tag for run notes and logs, e.g.
    /// `diurnal(base=4/s, amp=3, period=3600s)`.
    pub fn label(&self) -> String {
        match self {
            RateCurve::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            } => {
                if *phase_s == 0.0 {
                    format!("diurnal(base={base}/s, amp={amplitude}, period={period_s}s)")
                } else {
                    format!(
                        "diurnal(base={base}/s, amp={amplitude}, period={period_s}s, \
                         phase={phase_s}s)"
                    )
                }
            }
            RateCurve::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => format!(
                "flash(base={base}/s, peak={peak}/s, at={start_s}s, \
                 ramp={ramp_s}s, hold={hold_s}s, decay={decay_s}s)"
            ),
            RateCurve::Ramps { steps } => {
                let parts: Vec<String> = steps
                    .iter()
                    .map(|s| format!("{}s\u{2192}{}/s", s.start_s, s.rate))
                    .collect();
                format!("ramps({})", parts.join(", "))
            }
        }
    }

    /// Parse a CLI spec. Three forms, mirroring the checked constructors:
    ///
    /// - `diurnal:base=B,amp=A,period=P[,phase=F]`
    /// - `flash:base=B,peak=P,at=T,ramp=R,hold=H,decay=D`
    /// - `ramps:T1=R1,T2=R2,…` (strictly increasing starts, first 0)
    pub fn parse(spec: &str) -> Result<RateCurve, String> {
        let (kind, body) = spec
            .split_once(':')
            .ok_or_else(|| format!("workload spec '{spec}' needs the form kind:key=value,…"))?;
        let pairs: Vec<(&str, f64)> =
            body.split(',')
                .map(|kv| {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("workload spec entry '{kv}' is not key=value"))?;
                    let v: f64 = v.trim().parse().map_err(|_| {
                        format!("workload spec entry '{kv}' has a non-numeric value")
                    })?;
                    if !v.is_finite() {
                        return Err(format!("workload spec entry '{kv}' must be finite"));
                    }
                    Ok((k.trim(), v))
                })
                .collect::<Result<_, String>>()?;
        let get =
            |key: &str| -> Option<f64> { pairs.iter().find(|(k, _)| *k == key).map(|&(_, v)| v) };
        let require = |key: &str| -> Result<f64, String> {
            get(key).ok_or_else(|| format!("workload spec '{spec}' is missing {key}="))
        };
        let reject = |why: &str| format!("workload spec '{spec}' rejected: {why}");
        match kind {
            "diurnal" => {
                let (base, amp, period) = (require("base")?, require("amp")?, require("period")?);
                let phase = get("phase").unwrap_or(0.0);
                if base <= 0.0 {
                    return Err(reject("base rate must be positive"));
                }
                if !(0.0..=base).contains(&amp) {
                    return Err(reject("amp must be within [0, base]"));
                }
                if period <= 0.0 {
                    return Err(reject("period must be positive"));
                }
                Ok(RateCurve::Diurnal {
                    base,
                    amplitude: amp,
                    period_s: period,
                    phase_s: phase,
                })
            }
            "flash" => {
                let (base, peak) = (require("base")?, require("peak")?);
                let (at, ramp) = (require("at")?, require("ramp")?);
                let (hold, decay) = (require("hold")?, require("decay")?);
                if base <= 0.0 {
                    return Err(reject("base rate must be positive"));
                }
                if peak < base {
                    return Err(reject("peak must be at least the base rate"));
                }
                if at < 0.0 || ramp < 0.0 || hold < 0.0 || decay < 0.0 {
                    return Err(reject("at/ramp/hold/decay must be non-negative"));
                }
                Ok(RateCurve::FlashCrowd {
                    base,
                    peak,
                    start_s: at,
                    ramp_s: ramp,
                    hold_s: hold,
                    decay_s: decay,
                })
            }
            "ramps" => {
                let steps: Vec<RampStep> = pairs
                    .iter()
                    .map(|&(k, rate)| {
                        let start_s: f64 = k.parse().map_err(|_| {
                            format!("ramps spec entry '{k}={rate}' has a non-numeric start time")
                        })?;
                        Ok(RampStep { start_s, rate })
                    })
                    .collect::<Result<_, String>>()?;
                if steps.is_empty() {
                    return Err(reject("ramps need at least one step"));
                }
                if steps[0].start_s != 0.0 {
                    return Err(reject("the first ramp step must start at 0"));
                }
                if steps.windows(2).any(|w| w[0].start_s >= w[1].start_s) {
                    return Err(reject("ramp step starts must strictly increase"));
                }
                if steps.iter().any(|s| s.rate < 0.0) {
                    return Err(reject("ramp step rates must be non-negative"));
                }
                if steps.iter().all(|s| s.rate == 0.0) {
                    return Err(reject("at least one ramp step must have a positive rate"));
                }
                Ok(RateCurve::Ramps { steps })
            }
            other => Err(format!(
                "unknown workload kind '{other}' (expected diurnal, flash or ramps)"
            )),
        }
    }
}

/// Arrival instants for a [`RateCurve`] by Lewis–Shedler thinning: a
/// homogeneous Poisson process at the curve's maximum rate proposes
/// candidates, each accepted with probability `rate(t) / max_rate`. An
/// exact sampler of the non-homogeneous process, seeded and
/// deterministic; the candidate clock advances whether or not a
/// candidate is accepted, so generation always terminates at a horizon
/// even through zero-rate dead intervals.
#[derive(Debug, Clone)]
pub struct ThinnedProcess {
    curve: RateCurve,
    max_rate: f64,
    clock: f64,
    rng: SmallRng,
}

impl ThinnedProcess {
    /// New process sampling `curve` from time 0.
    pub fn new(curve: RateCurve, seed: u64) -> Self {
        let max_rate = curve.max_rate();
        assert!(
            max_rate > 0.0 && max_rate.is_finite(),
            "rate curve must have a positive maximum rate"
        );
        ThinnedProcess {
            curve,
            max_rate,
            clock: 0.0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The curve being sampled.
    pub fn curve(&self) -> &RateCurve {
        &self.curve
    }

    /// Next accepted arrival strictly before `horizon` (monotone
    /// increasing), or `None` once the candidate clock passes the
    /// horizon.
    pub fn next_arrival_before(&mut self, horizon: f64) -> Option<f64> {
        loop {
            self.clock += sample_exponential(&mut self.rng, self.max_rate);
            if self.clock >= horizon {
                return None;
            }
            let u: f64 = self.rng.random();
            if u * self.max_rate <= self.curve.rate_at(self.clock) {
                return Some(self.clock);
            }
        }
    }
}

/// Configuration of the batched ("bursty") arrival process of §3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Rate of bursts per second (each burst carries several requests).
    pub burst_rate: f64,
    /// Minimum requests per burst.
    pub min_batch: usize,
    /// Maximum requests per burst (inclusive).
    pub max_batch: usize,
    /// Requests within a burst are spaced this many seconds apart
    /// (0 = truly simultaneous).
    pub intra_batch_gap_s: f64,
}

impl BatchConfig {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.burst_rate > 0.0 && self.burst_rate.is_finite());
        assert!(self.min_batch >= 1);
        assert!(self.max_batch >= self.min_batch);
        assert!(self.intra_batch_gap_s >= 0.0);
    }
}

/// One burst: a start time and the number of back-to-back requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start time, seconds.
    pub start: f64,
    /// Number of requests in the burst.
    pub count: usize,
}

/// Generate bursts before `horizon` under `cfg`.
pub fn generate_bursts(cfg: &BatchConfig, horizon: f64, seed: u64) -> Vec<Burst> {
    cfg.validate();
    let mut process = PoissonProcess::new(cfg.burst_rate, seed);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    process
        .arrivals_until(horizon)
        .into_iter()
        .map(|start| Burst {
            start,
            count: rng.random_range(cfg.min_batch..=cfg.max_batch),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn poisson_count_matches_rate() {
        let mut p = PoissonProcess::new(6.0, 3);
        let arrivals = p.arrivals_until(4000.0);
        let expected = 6.0 * 4000.0;
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got} arrivals, expected ≈{expected}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonProcess::new(100.0, 5);
        let arrivals = p.arrivals_until(10.0);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn arrivals_respect_horizon() {
        let mut p = PoissonProcess::new(2.0, 9);
        for &t in &p.arrivals_until(100.0) {
            assert!(t < 100.0);
        }
    }

    #[test]
    fn process_is_seed_deterministic() {
        let a = PoissonProcess::new(3.0, 42).arrivals_until(50.0);
        let b = PoissonProcess::new(3.0, 42).arrivals_until(50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_extension_does_not_drop_arrivals() {
        // Generating in two stages must equal generating in one.
        let mut two_stage = PoissonProcess::new(5.0, 77);
        let mut all = two_stage.arrivals_until(10.0);
        all.extend(two_stage.arrivals_until(20.0));
        let one_stage = PoissonProcess::new(5.0, 77).arrivals_until(20.0);
        assert_eq!(all, one_stage);
    }

    #[test]
    fn bursts_have_counts_in_range() {
        let cfg = BatchConfig {
            burst_rate: 0.5,
            min_batch: 3,
            max_batch: 8,
            intra_batch_gap_s: 0.0,
        };
        let bursts = generate_bursts(&cfg, 1000.0, 21);
        assert!(!bursts.is_empty());
        for b in &bursts {
            assert!((3..=8).contains(&b.count));
            assert!(b.start < 1000.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0, 0);
    }

    fn drain(curve: RateCurve, horizon: f64, seed: u64) -> Vec<f64> {
        let mut p = ThinnedProcess::new(curve, seed);
        let mut out = Vec::new();
        while let Some(t) = p.next_arrival_before(horizon) {
            out.push(t);
        }
        out
    }

    #[test]
    fn diurnal_rate_tracks_the_sinusoid() {
        let c = RateCurve::diurnal(4.0, 3.0, 3600.0);
        assert_eq!(c.rate_at(0.0), 4.0);
        assert!((c.rate_at(900.0) - 7.0).abs() < 1e-9, "quarter period peak");
        assert!((c.rate_at(2700.0) - 1.0).abs() < 1e-9, "trough");
        assert_eq!(c.max_rate(), 7.0);
        assert_eq!(c.mean_rate_hint(), 4.0);
    }

    #[test]
    fn flash_crowd_rate_is_piecewise_linear() {
        let c = RateCurve::flash_crowd(2.0, 20.0, 100.0, 10.0, 30.0, 20.0);
        assert_eq!(c.rate_at(0.0), 2.0);
        assert!((c.rate_at(105.0) - 11.0).abs() < 1e-9, "mid-ramp");
        assert_eq!(c.rate_at(120.0), 20.0, "plateau");
        assert!((c.rate_at(150.0) - 11.0).abs() < 1e-9, "mid-decay");
        assert_eq!(c.rate_at(200.0), 2.0, "back to background");
        assert_eq!(c.max_rate(), 20.0);
    }

    #[test]
    fn ramps_rate_is_piecewise_constant() {
        let c = RateCurve::ramps(vec![
            RampStep {
                start_s: 0.0,
                rate: 2.0,
            },
            RampStep {
                start_s: 600.0,
                rate: 8.0,
            },
            RampStep {
                start_s: 1200.0,
                rate: 0.0,
            },
        ]);
        assert_eq!(c.rate_at(0.0), 2.0);
        assert_eq!(c.rate_at(599.9), 2.0);
        assert_eq!(c.rate_at(600.0), 8.0);
        assert_eq!(c.rate_at(5000.0), 0.0, "dead interval");
        assert_eq!(c.max_rate(), 8.0);
    }

    #[test]
    fn thinned_arrivals_are_monotone_deterministic_and_respect_the_horizon() {
        let curve = RateCurve::diurnal(4.0, 3.0, 500.0);
        let a = drain(curve.clone(), 2000.0, 42);
        let b = drain(curve, 2000.0, 42);
        assert_eq!(a, b, "seed-deterministic");
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0] < w[1], "strictly increasing");
        }
        assert!(a.iter().all(|&t| t < 2000.0));
    }

    #[test]
    fn thinned_counts_track_the_curve() {
        // Diurnal halves: [0, T/2) rides the sine's positive lobe, so it
        // must see clearly more arrivals than [T/2, T).
        let arrivals = drain(RateCurve::diurnal(4.0, 3.0, 4000.0), 4000.0, 7);
        let first_half = arrivals.iter().filter(|&&t| t < 2000.0).count() as f64;
        let second_half = arrivals.len() as f64 - first_half;
        assert!(
            first_half > 1.3 * second_half,
            "positive lobe {first_half} vs negative lobe {second_half}"
        );
        // Total tracks the base-rate mean over whole periods.
        let expected = 4.0 * 4000.0;
        assert!(
            (arrivals.len() as f64 - expected).abs() / expected < 0.05,
            "got {} arrivals, expected ≈{expected}",
            arrivals.len()
        );
    }

    #[test]
    fn thinning_terminates_through_a_zero_rate_tail() {
        // Rate drops to 0 at t = 10 and never recovers; generation must
        // still hit the horizon and stop.
        let curve = RateCurve::ramps(vec![
            RampStep {
                start_s: 0.0,
                rate: 5.0,
            },
            RampStep {
                start_s: 10.0,
                rate: 0.0,
            },
        ]);
        let arrivals = drain(curve, 10_000.0, 3);
        assert!(arrivals.iter().all(|&t| t < 10.0));
    }

    #[test]
    fn rate_curve_parse_round_trips() {
        assert_eq!(
            RateCurve::parse("diurnal:base=4,amp=3,period=3600").unwrap(),
            RateCurve::diurnal(4.0, 3.0, 3600.0)
        );
        assert_eq!(
            RateCurve::parse("flash:base=2,peak=20,at=100,ramp=10,hold=30,decay=20").unwrap(),
            RateCurve::flash_crowd(2.0, 20.0, 100.0, 10.0, 30.0, 20.0)
        );
        assert_eq!(
            RateCurve::parse("ramps:0=2,600=8").unwrap(),
            RateCurve::ramps(vec![
                RampStep {
                    start_s: 0.0,
                    rate: 2.0
                },
                RampStep {
                    start_s: 600.0,
                    rate: 8.0
                },
            ])
        );
    }

    #[test]
    fn rate_curve_parse_rejects_junk_with_named_reasons() {
        for (spec, needle) in [
            ("diurnal", "needs the form"),
            ("diurnal:base=4,amp=3", "missing period="),
            ("diurnal:base=4,amp=5,period=100", "amp must be within"),
            ("sawtooth:base=4", "unknown workload kind"),
            (
                "flash:base=2,peak=1,at=0,ramp=0,hold=0,decay=0",
                "peak must",
            ),
            ("ramps:5=2", "must start at 0"),
            ("ramps:0=0", "positive rate"),
            ("diurnal:base=x,amp=3,period=100", "non-numeric"),
        ] {
            let err = RateCurve::parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': got '{err}'");
        }
    }
}
