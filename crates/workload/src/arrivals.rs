//! Arrival processes: Poisson (Table 1) and batched bursts (§3.2).
//!
//! The paper's synthetic experiments use Poisson arrivals with rate
//! `R ∈ 1..12` per second. §3.2 additionally motivates `Pack_Disks_v` with a
//! pattern seen in the real logs: "many users request a batch of files of
//! similar sizes all at once" — modelled here as a compound-Poisson process
//! whose bursts target runs of adjacent size-ranked files.

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// Sample an exponential inter-arrival time with the given `rate` (events
/// per second) via inverse transform.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
    // 1 − u ∈ (0, 1]: avoids ln(0).
    let u: f64 = rng.random();
    -(1.0 - u).ln() / rate
}

/// A homogeneous Poisson process generating arrival instants.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    clock: f64,
    /// An arrival already drawn but beyond the last requested horizon; it is
    /// replayed first so extending the horizon never drops arrivals.
    pending: Option<f64>,
    rng: SmallRng,
}

impl PoissonProcess {
    /// New process with `rate` events/second starting at time 0.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        PoissonProcess {
            rate,
            clock: 0.0,
            pending: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Next arrival instant (monotone increasing).
    pub fn next_arrival(&mut self) -> f64 {
        if let Some(t) = self.pending.take() {
            return t;
        }
        self.clock += sample_exponential(&mut self.rng, self.rate);
        self.clock
    }

    /// All arrivals strictly before `horizon`, from the current clock.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t >= horizon {
                // Buffer the overshooting arrival so it is not lost if the
                // caller extends the horizon later.
                self.pending = Some(t);
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Configuration of the batched ("bursty") arrival process of §3.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Rate of bursts per second (each burst carries several requests).
    pub burst_rate: f64,
    /// Minimum requests per burst.
    pub min_batch: usize,
    /// Maximum requests per burst (inclusive).
    pub max_batch: usize,
    /// Requests within a burst are spaced this many seconds apart
    /// (0 = truly simultaneous).
    pub intra_batch_gap_s: f64,
}

impl BatchConfig {
    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.burst_rate > 0.0 && self.burst_rate.is_finite());
        assert!(self.min_batch >= 1);
        assert!(self.max_batch >= self.min_batch);
        assert!(self.intra_batch_gap_s >= 0.0);
    }
}

/// One burst: a start time and the number of back-to-back requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Burst start time, seconds.
    pub start: f64,
    /// Number of requests in the burst.
    pub count: usize,
}

/// Generate bursts before `horizon` under `cfg`.
pub fn generate_bursts(cfg: &BatchConfig, horizon: f64, seed: u64) -> Vec<Burst> {
    cfg.validate();
    let mut process = PoissonProcess::new(cfg.burst_rate, seed);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    process
        .arrivals_until(horizon)
        .into_iter()
        .map(|start| Burst {
            start,
            count: rng.random_range(cfg.min_batch..=cfg.max_batch),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = SmallRng::seed_from_u64(11);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "mean {mean} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn poisson_count_matches_rate() {
        let mut p = PoissonProcess::new(6.0, 3);
        let arrivals = p.arrivals_until(4000.0);
        let expected = 6.0 * 4000.0;
        let got = arrivals.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.05,
            "got {got} arrivals, expected ≈{expected}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonProcess::new(100.0, 5);
        let arrivals = p.arrivals_until(10.0);
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn arrivals_respect_horizon() {
        let mut p = PoissonProcess::new(2.0, 9);
        for &t in &p.arrivals_until(100.0) {
            assert!(t < 100.0);
        }
    }

    #[test]
    fn process_is_seed_deterministic() {
        let a = PoissonProcess::new(3.0, 42).arrivals_until(50.0);
        let b = PoissonProcess::new(3.0, 42).arrivals_until(50.0);
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_extension_does_not_drop_arrivals() {
        // Generating in two stages must equal generating in one.
        let mut two_stage = PoissonProcess::new(5.0, 77);
        let mut all = two_stage.arrivals_until(10.0);
        all.extend(two_stage.arrivals_until(20.0));
        let one_stage = PoissonProcess::new(5.0, 77).arrivals_until(20.0);
        assert_eq!(all, one_stage);
    }

    #[test]
    fn bursts_have_counts_in_range() {
        let cfg = BatchConfig {
            burst_rate: 0.5,
            min_batch: 3,
            max_batch: 8,
            intra_batch_gap_s: 0.0,
        };
        let bursts = generate_bursts(&cfg, 1000.0, 21);
        assert!(!bursts.is_empty());
        for b in &bursts {
            assert!((3..=8).contains(&b.count));
            assert!(b.start < 1000.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = PoissonProcess::new(0.0, 0);
    }
}
