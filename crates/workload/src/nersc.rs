//! Synthetic NERSC workload (§5.1) — a documented substitution.
//!
//! The paper replays 30 days of real read logs from NERSC (May 31 – Jun 29,
//! 2008). Those logs are not public, so this module synthesizes a workload
//! matching every statistic the paper publishes about them:
//!
//! - 88 631 distinct files, 115 832 read requests → every file is requested
//!   at least once and the remaining ≈ 27 000 requests follow a Zipf law;
//! - average arrival rate 0.044683 /s over 30 days (Poisson count check:
//!   0.044683 × 2 592 000 ≈ 115 818 ✓);
//! - mean file size 544 MB ("which incurred about 7.56 sec of service time
//!   [at] 72 MBps") — bin-level Zipf calibrated to hit this mean exactly in
//!   expectation;
//! - file sizes fall into 80 log-spaced bins whose proportions "decrease
//!   almost linearly in the log-log scale";
//! - **no** correlation between file size and access frequency;
//! - total footprint ⇒ "minimum space required … is 95 disks" of 500 GB
//!   (88 631 × 544 MB ≈ 48.2 TB ≈ 96 drives — the paper's 95/96);
//! - optionally, batched same-size bursts (§3.2) for the `Pack_Disks_v`
//!   experiments.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arrivals::BatchConfig;
use crate::bins::SizeBins;
use crate::catalog::{fisher_yates, FileCatalog, FileId};
use crate::trace::{Request, Trace};
use crate::zipf::ZipfDistribution;
use crate::{GB, MB};

/// Configuration of the synthetic NERSC workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NerscConfig {
    /// Number of distinct files (paper: 88 631).
    pub n_files: usize,
    /// Total read requests (paper: 115 832).
    pub n_requests: usize,
    /// Observation window, seconds (paper: 30 days).
    pub duration_s: f64,
    /// Target mean file size, bytes (paper: 544 MB).
    pub mean_size_bytes: u64,
    /// Smallest representable file size.
    pub min_size_bytes: u64,
    /// Largest representable file size.
    pub max_size_bytes: u64,
    /// Number of log-spaced size bins (paper: 80).
    pub size_bins: usize,
    /// Zipf exponent for the *extra* requests beyond one-per-file.
    pub popularity_exponent: f64,
}

impl NerscConfig {
    /// The paper's §5.1 parameters.
    pub fn paper() -> Self {
        NerscConfig {
            n_files: 88_631,
            n_requests: 115_832,
            duration_s: 30.0 * 24.0 * 3600.0,
            mean_size_bytes: 544 * MB,
            min_size_bytes: MB,
            max_size_bytes: 100 * GB,
            size_bins: 80,
            popularity_exponent: 0.8,
        }
    }

    /// A proportionally scaled-down instance (for tests and CI): `factor`
    /// divides file and request counts; time window is kept.
    pub fn paper_scaled(factor: usize) -> Self {
        assert!(factor >= 1);
        let paper = Self::paper();
        NerscConfig {
            n_files: (paper.n_files / factor).max(1),
            n_requests: (paper.n_requests / factor).max(1),
            ..paper
        }
    }

    /// Mean request arrival rate implied by the configuration.
    pub fn arrival_rate(&self) -> f64 {
        self.n_requests as f64 / self.duration_s
    }

    fn validate(&self) {
        assert!(self.n_files >= 1);
        assert!(
            self.n_requests >= self.n_files,
            "need at least one request per distinct file"
        );
        assert!(self.duration_s > 0.0);
        assert!(self.min_size_bytes >= 1);
        assert!(self.max_size_bytes > self.min_size_bytes);
        assert!(
            (self.min_size_bytes..=self.max_size_bytes).contains(&self.mean_size_bytes),
            "target mean outside size range"
        );
        assert!(self.size_bins >= 2);
        assert!(self.popularity_exponent >= 0.0);
    }
}

/// A generated NERSC-like workload: the file population plus the request
/// trace over it.
#[derive(Debug, Clone, PartialEq)]
pub struct NerscWorkload {
    /// The file population (sizes + *empirical* popularities from the trace).
    pub catalog: FileCatalog,
    /// The 30-day request trace.
    pub trace: Trace,
}

/// Calibrate the bin-level Zipf exponent so the expected file size equals
/// `cfg.mean_size_bytes`. Bin 1 holds the smallest files; a larger exponent
/// shifts weight toward small files, so the mean is monotone decreasing in
/// the exponent and bisection applies.
pub fn calibrate_bin_exponent(cfg: &NerscConfig) -> f64 {
    let bins = SizeBins::new(cfg.size_bins, cfg.min_size_bytes, cfg.max_size_bytes);
    let mids: Vec<f64> = (0..cfg.size_bins).map(|i| bins.midpoint(i)).collect();
    let mean_for = |a: f64| -> f64 {
        let z = ZipfDistribution::new(cfg.size_bins, a);
        mids.iter()
            .enumerate()
            .map(|(i, &m)| z.pmf(i + 1) * m)
            .sum()
    };
    let target = cfg.mean_size_bytes as f64;
    let (mut lo, mut hi) = (0.0_f64, 6.0_f64);
    assert!(
        mean_for(lo) >= target && mean_for(hi) <= target,
        "target mean {target} out of calibration range [{}, {}]",
        mean_for(hi),
        mean_for(lo)
    );
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if mean_for(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Generate the workload. Deterministic in `(cfg, seed)`.
pub fn generate(cfg: &NerscConfig, seed: u64) -> NerscWorkload {
    generate_with_batches(cfg, None, seed)
}

/// Like [`generate`], but replacing a fraction of the single-request tail
/// with §3.2-style bursts of similar-size files when `batches` is given.
pub fn generate_with_batches(
    cfg: &NerscConfig,
    batches: Option<&BatchConfig>,
    seed: u64,
) -> NerscWorkload {
    cfg.validate();
    let mut rng = SmallRng::seed_from_u64(seed);

    // --- sizes: Zipf over log-spaced bins, log-uniform within a bin -------
    let exponent = calibrate_bin_exponent(cfg);
    let bin_dist = ZipfDistribution::new(cfg.size_bins, exponent);
    let bins = SizeBins::new(cfg.size_bins, cfg.min_size_bytes, cfg.max_size_bytes);
    let log_min = (cfg.min_size_bytes as f64).ln();
    let log_max = (cfg.max_size_bytes as f64).ln();
    let bin_width = (log_max - log_min) / cfg.size_bins as f64;
    let sizes: Vec<u64> = (0..cfg.n_files)
        .map(|_| {
            let bin = bin_dist.sample(&mut rng) - 1; // bin index, 0 = smallest
            let lo = log_min + bin as f64 * bin_width;
            let u: f64 = rng.random();
            ((lo + u * bin_width).exp()).round().max(1.0) as u64
        })
        .collect();
    let _ = bins; // bins are reconstructed by analyses; kept for clarity

    // --- request mix: one per file + Zipf extras ---------------------------
    // Popularity ranks are assigned to file ids by a seeded shuffle, which
    // breaks any correlation with size (the paper's observation).
    let mut rank_to_file: Vec<u32> = (0..cfg.n_files as u32).collect();
    fisher_yates(&mut rank_to_file, seed.wrapping_add(17));
    let extra = cfg.n_requests - cfg.n_files;
    let extra_dist = ZipfDistribution::new(cfg.n_files, cfg.popularity_exponent);
    let mut per_file_requests = vec![1u64; cfg.n_files];
    for _ in 0..extra {
        let rank = extra_dist.sample(&mut rng);
        per_file_requests[rank_to_file[rank - 1] as usize] += 1;
    }

    // --- arrival times: order statistics of U(0, duration) ----------------
    // (a Poisson process conditioned on its count is iid uniforms, sorted)
    let mut times: Vec<f64> = (0..cfg.n_requests)
        .map(|_| rng.random::<f64>() * cfg.duration_s)
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));

    // --- assign files to arrival slots -------------------------------------
    let mut slots: Vec<u32> = Vec::with_capacity(cfg.n_requests);
    for (file, &count) in per_file_requests.iter().enumerate() {
        for _ in 0..count {
            slots.push(file as u32);
        }
    }
    fisher_yates(&mut slots, seed.wrapping_add(29));
    let mut requests: Vec<Request> = times
        .iter()
        .zip(&slots)
        .map(|(&time, &file)| Request {
            time,
            file: FileId(file),
        })
        .collect();

    // --- optional bursty rewrite (§3.2) ------------------------------------
    if let Some(bc) = batches {
        rewrite_as_bursts(&mut requests, &sizes, bc, cfg.duration_s, seed);
    }

    // --- empirical popularities --------------------------------------------
    let total = requests.len() as f64;
    let mut counts = vec![0u64; cfg.n_files];
    for r in &requests {
        counts[r.file.index()] += 1;
    }
    let popularity: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();

    let catalog = FileCatalog::from_parts(sizes, popularity);
    let trace = Trace::new(requests, cfg.duration_s);
    NerscWorkload { catalog, trace }
}

/// Rewrite a fraction of requests into same-size bursts: pick burst anchors,
/// then retarget runs of consecutive requests at files adjacent in size.
fn rewrite_as_bursts(
    requests: &mut [Request],
    sizes: &[u64],
    cfg: &BatchConfig,
    duration: f64,
    seed: u64,
) {
    cfg.validate();
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(43));
    let mut by_size: Vec<u32> = (0..sizes.len() as u32).collect();
    by_size.sort_by_key(|&i| sizes[i as usize]);
    let n_bursts = (cfg.burst_rate * duration).round() as usize;
    if requests.is_empty() || n_bursts == 0 {
        return;
    }
    for _ in 0..n_bursts {
        let at = rng.random_range(0..requests.len());
        let len = rng
            .random_range(cfg.min_batch..=cfg.max_batch)
            .min(requests.len() - at);
        let anchor = rng.random_range(0..by_size.len());
        for k in 0..len {
            let rank = (anchor + k).min(by_size.len() - 1);
            requests[at + k].file = FileId(by_size[rank]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::popularity_slope;
    use crate::TB;

    fn small_cfg() -> NerscConfig {
        NerscConfig::paper_scaled(40) // ~2 215 files, ~2 895 requests
    }

    #[test]
    fn request_and_file_counts_match_config() {
        let cfg = small_cfg();
        let w = generate(&cfg, 1);
        assert_eq!(w.catalog.len(), cfg.n_files);
        assert_eq!(w.trace.len(), cfg.n_requests);
        // every file requested at least once (the paper's "distinct" count)
        assert_eq!(w.trace.distinct_files(), cfg.n_files);
    }

    #[test]
    fn mean_size_close_to_544mb() {
        let cfg = small_cfg();
        let w = generate(&cfg, 2);
        let mean = w.catalog.mean_bytes();
        let target = cfg.mean_size_bytes as f64;
        assert!(
            (mean - target).abs() / target < 0.15,
            "mean {mean:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn paper_scale_footprint_matches_95_disks() {
        // Full-size generation is fast enough to test directly.
        let cfg = NerscConfig::paper();
        let w = generate(&cfg, 3);
        let disks = (w.catalog.total_bytes() as f64 / (500.0 * 1e9)).ceil() as u64;
        assert!(
            (90..=105).contains(&disks),
            "footprint {} TB → {disks} disks, paper says 95",
            w.catalog.total_bytes() / TB
        );
        let rate = w.trace.mean_rate();
        assert!(
            (rate - 0.044683).abs() / 0.044683 < 0.01,
            "arrival rate {rate}"
        );
    }

    #[test]
    fn sizes_are_zipf_across_bins() {
        let cfg = small_cfg();
        let w = generate(&cfg, 4);
        let mut bins = SizeBins::new(cfg.size_bins, cfg.min_size_bytes, cfg.max_size_bytes);
        bins.record_all(w.catalog.iter().map(|f| f.size_bytes));
        let (slope, r2) = bins.log_log_fit().expect("fit");
        assert!(slope < -0.2, "slope {slope} not decreasing");
        assert!(r2 > 0.6, "log-log fit too poor: r2 {r2}");
    }

    #[test]
    fn size_and_frequency_uncorrelated() {
        let cfg = small_cfg();
        let w = generate(&cfg, 5);
        let counts = w.trace.per_file_counts(cfg.n_files);
        // Pearson correlation between size and request count ≈ 0.
        let n = cfg.n_files as f64;
        let mean_s = w.catalog.mean_bytes();
        let mean_c = counts.iter().sum::<u64>() as f64 / n;
        let mut cov = 0.0;
        let mut var_s = 0.0;
        let mut var_c = 0.0;
        for (f, &c) in w.catalog.iter().zip(&counts) {
            let ds = f.size_bytes as f64 - mean_s;
            let dc = c as f64 - mean_c;
            cov += ds * dc;
            var_s += ds * ds;
            var_c += dc * dc;
        }
        let corr = cov / (var_s.sqrt() * var_c.sqrt());
        assert!(corr.abs() < 0.1, "size/frequency correlation {corr}");
    }

    #[test]
    fn extra_requests_are_skewed() {
        let cfg = NerscConfig {
            n_files: 500,
            n_requests: 5000,
            ..small_cfg()
        };
        let w = generate(&cfg, 6);
        let counts = w.trace.per_file_counts(cfg.n_files);
        let slope = popularity_slope(&counts);
        assert!(slope > 0.2, "expected Zipf-ish counts, slope {slope}");
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = small_cfg();
        let a = generate(&cfg, 9);
        let b = generate(&cfg, 9);
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.trace, b.trace);
        let c = generate(&cfg, 10);
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn calibration_hits_mean_in_expectation() {
        let cfg = NerscConfig::paper();
        let a = calibrate_bin_exponent(&cfg);
        assert!(a > 0.0 && a < 6.0);
        // Recompute the expectation at the calibrated exponent.
        let bins = SizeBins::new(cfg.size_bins, cfg.min_size_bytes, cfg.max_size_bytes);
        let z = ZipfDistribution::new(cfg.size_bins, a);
        let mean: f64 = (0..cfg.size_bins)
            .map(|i| z.pmf(i + 1) * bins.midpoint(i))
            .sum();
        let target = cfg.mean_size_bytes as f64;
        assert!(
            (mean - target).abs() / target < 1e-6,
            "calibrated mean {mean} target {target}"
        );
    }

    #[test]
    fn batched_generation_creates_same_size_runs() {
        let cfg = small_cfg();
        let bc = BatchConfig {
            burst_rate: 20.0 / cfg.duration_s, // 20 bursts over the window
            min_batch: 5,
            max_batch: 5,
            intra_batch_gap_s: 0.0,
        };
        let plain = generate(&cfg, 11);
        let bursty = generate_with_batches(&cfg, Some(&bc), 11);
        assert_eq!(plain.trace.len(), bursty.trace.len());
        assert_ne!(plain.trace, bursty.trace);
    }

    #[test]
    fn arrival_times_ordered_and_within_window() {
        let cfg = small_cfg();
        let w = generate(&cfg, 12);
        let reqs = w.trace.requests();
        for pair in reqs.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        assert!(reqs.last().unwrap().time <= cfg.duration_s);
    }

    #[test]
    #[should_panic(expected = "at least one request per distinct file")]
    fn too_few_requests_rejected() {
        let cfg = NerscConfig {
            n_files: 100,
            n_requests: 50,
            ..NerscConfig::paper()
        };
        let _ = generate(&cfg, 0);
    }
}
