//! Streaming request sources: feed arrivals to a consumer one at a time.
//!
//! A [`TraceSource`] is the cursor the simulation engine's streamed arrival
//! loop reads from. Where a [`Trace`] materialises every request up front
//! (O(requests) memory), a source hands out requests in time order and
//! holds only O(1) state per implementation — which is what lets a
//! multi-billion-request replay run with resident memory independent of the
//! request count.
//!
//! Implementations:
//!
//! - [`InMemorySource`] — a cursor over an existing [`Trace`]. Identical
//!   semantics to handing the trace to the engine directly
//!   (property-tested bit-identical in `crates/sim/tests/trace_source.rs`).
//! - [`CsvTraceSource`] — a buffered line-at-a-time reader of the CSV
//!   format [`Trace::write_csv`] produces (`time_s,file_id` rows). Memory
//!   is one line buffer regardless of file size.
//! - [`SyntheticSource`] — a seeded arrivals/popularity generator. Its
//!   Poisson form produces exactly the request sequence of
//!   [`Trace::poisson`] with the same arguments, without ever
//!   materialising it; its non-stationary form follows a [`RateCurve`]
//!   (diurnal, flash crowd, tenant ramps) by Lewis–Shedler thinning.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::SystemTime;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arrivals::{PoissonProcess, RateCurve, ThinnedProcess};
use crate::catalog::FileCatalog;
use crate::trace::{popularity_cdf, sample_by_cdf, Request, Trace, TraceIoError};

/// A time-ordered stream of requests plus the horizon of the observation
/// window. The engine peeks the next arrival time to interleave arrivals
/// with scheduled events, then consumes the request.
///
/// Implementations must yield non-decreasing times, all within
/// `[0, horizon]`; [`CsvTraceSource`] enforces this on malformed input by
/// returning [`TraceIoError`]s through the `Result` layer.
pub trait TraceSource {
    /// Arrival time of the next request without consuming it (`None` when
    /// the stream is exhausted).
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError>;

    /// Consume and return the next request.
    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError>;

    /// Global ordinal of the next request in the *original* trace, when
    /// the source knows it (`None` otherwise — consumers fall back to a
    /// local arrival counter). Sharded views report the position in the
    /// undemuxed stream, so consumers on different shards label requests
    /// with the same ids an unsharded run would assign — the tie-break
    /// key the merged completion log sorts on. Valid whenever
    /// [`Self::peek_time`] would return `Some`.
    fn peek_seq(&mut self) -> Option<u64> {
        None
    }

    /// Observation-window length, seconds (≥ every request time the stream
    /// will yield).
    fn horizon(&self) -> f64;
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    #[inline]
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        (**self).peek_time()
    }

    #[inline]
    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        (**self).next_request()
    }

    #[inline]
    fn peek_seq(&mut self) -> Option<u64> {
        (**self).peek_seq()
    }

    #[inline]
    fn horizon(&self) -> f64 {
        (**self).horizon()
    }
}

/// A [`TraceSource`] cursor over an in-memory [`Trace`] — the streamed
/// engine's original arrival feed, now spelled as a source. Holds the
/// request slice directly and `#[inline]`s its accessors so the engine's
/// monomorphised arrival loop compiles down to the slice-index-and-compare
/// it used before the source abstraction existed (this cursor sits on the
/// hottest path of a replay: one peek per event-loop step).
#[derive(Debug, Clone)]
pub struct InMemorySource<'a> {
    requests: &'a [Request],
    horizon: f64,
    next: usize,
}

impl<'a> InMemorySource<'a> {
    /// Cursor at the start of `trace`.
    pub fn new(trace: &'a Trace) -> Self {
        InMemorySource {
            requests: trace.requests(),
            horizon: trace.horizon(),
            next: 0,
        }
    }
}

impl TraceSource for InMemorySource<'_> {
    #[inline]
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        Ok(self.requests.get(self.next).map(|r| r.time))
    }

    #[inline]
    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        let r = self.requests.get(self.next).copied();
        if r.is_some() {
            self.next += 1;
        }
        Ok(r)
    }

    #[inline]
    fn peek_seq(&mut self) -> Option<u64> {
        (self.next < self.requests.len()).then_some(self.next as u64)
    }

    #[inline]
    fn horizon(&self) -> f64 {
        self.horizon
    }
}

/// A buffered streaming reader of the `time_s,file_id` CSV format
/// ([`Trace::write_csv`]): one parsed line of look-ahead, one line buffer —
/// O(1) memory however long the file is. Validates well-formed rows,
/// finite non-negative times and non-decreasing order, surfacing problems
/// as [`TraceIoError`] at the offending row instead of up front.
///
/// The horizon differs from [`Trace::read_csv`] by design: a streaming
/// replay must fix its horizon before the data has been seen, so a row
/// past the declared horizon is a [`TraceIoError::BeyondHorizon`] error —
/// `read_csv`, holding the whole file, instead grows the horizon to fit.
/// Open with `horizon: None` to pre-scan the file for the true last
/// request time when a hard bound is not known.
pub struct CsvTraceSource<R> {
    reader: R,
    horizon: f64,
    pending: Option<Request>,
    last_time: f64,
    lineno: usize,
    line: String,
    done: bool,
}

/// Identity of a trace file for the horizon pre-scan cache: path plus the
/// size and modification time observed when the scan ran, so editing or
/// replacing the file invalidates its cached horizon.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TraceFileKey {
    path: PathBuf,
    len: u64,
    mtime: Option<SystemTime>,
}

impl TraceFileKey {
    fn probe(path: &Path) -> std::io::Result<Self> {
        let meta = std::fs::metadata(path)?;
        Ok(TraceFileKey {
            path: path.to_path_buf(),
            len: meta.len(),
            mtime: meta.modified().ok(),
        })
    }
}

fn horizon_cache() -> &'static Mutex<HashMap<TraceFileKey, f64>> {
    static CACHE: OnceLock<Mutex<HashMap<TraceFileKey, f64>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl CsvTraceSource<BufReader<File>> {
    /// Open `path` for streaming. When `horizon` is `None` the file is
    /// pre-scanned once (still O(1) memory) to find the last request time;
    /// pass an explicit horizon to skip that pass. The pre-scan result is
    /// cached process-wide, keyed on `(path, size, mtime)`, so repeated
    /// opens of the same unmodified file — sweep cells, shard demux setup —
    /// scan it once instead of once per construction.
    pub fn open<P: AsRef<Path>>(path: P, horizon: Option<f64>) -> Result<Self, TraceIoError> {
        let path = path.as_ref();
        let horizon = match horizon {
            Some(h) => h,
            None => {
                let key = TraceFileKey::probe(path)?;
                Self::prescan_horizon(key, || File::open(path).map(BufReader::new))?
            }
        };
        Ok(CsvTraceSource::from_reader(
            BufReader::new(File::open(path)?),
            horizon,
        ))
    }

    /// Cached last-request-time lookup: returns the horizon recorded for
    /// `key` if a previous scan stored one, otherwise opens a reader via
    /// `open`, drains it to find the last request time, and caches that
    /// under `key`. The cache lock is never held across the scan, so two
    /// threads racing on a cold key at worst both scan (and agree).
    fn prescan_horizon<R: BufRead>(
        key: TraceFileKey,
        open: impl FnOnce() -> std::io::Result<R>,
    ) -> Result<f64, TraceIoError> {
        let cache = horizon_cache();
        if let Some(&h) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return Ok(h);
        }
        let mut scan = CsvTraceSource::from_reader(open()?, f64::MAX);
        let mut last = 0.0_f64;
        while let Some(r) = scan.next_request()? {
            last = r.time;
        }
        cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, last);
        Ok(last)
    }
}

impl<R: BufRead> CsvTraceSource<R> {
    /// Stream from any buffered reader with an explicit horizon.
    pub fn from_reader(reader: R, horizon: f64) -> Self {
        assert!(horizon >= 0.0, "bad horizon {horizon}");
        CsvTraceSource {
            reader,
            horizon,
            pending: None,
            last_time: 0.0,
            lineno: 0,
            line: String::new(),
            done: false,
        }
    }

    /// Parse rows until one yields a request (or EOF), buffering it.
    fn fill(&mut self) -> Result<(), TraceIoError> {
        while self.pending.is_none() && !self.done {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                self.done = true;
                return Ok(());
            }
            self.lineno += 1;
            let text = self.line.trim();
            if text.is_empty() || (self.lineno == 1 && text.starts_with("time")) {
                continue;
            }
            let mut parts = text.split(',');
            let (Some(t), Some(f)) = (parts.next(), parts.next()) else {
                return Err(TraceIoError::Malformed(self.lineno, text.to_owned()));
            };
            let time: f64 = t
                .trim()
                .parse()
                .map_err(|_| TraceIoError::Malformed(self.lineno, text.to_owned()))?;
            let id: u32 = f
                .trim()
                .parse()
                .map_err(|_| TraceIoError::Malformed(self.lineno, text.to_owned()))?;
            if !time.is_finite() || time < 0.0 {
                return Err(TraceIoError::Malformed(self.lineno, text.to_owned()));
            }
            if time > self.horizon {
                return Err(TraceIoError::BeyondHorizon(self.lineno));
            }
            if time < self.last_time {
                return Err(TraceIoError::OutOfOrder(self.lineno));
            }
            self.last_time = time;
            self.pending = Some(Request {
                time,
                file: crate::catalog::FileId(id),
            });
        }
        Ok(())
    }
}

impl<R: BufRead> TraceSource for CsvTraceSource<R> {
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        self.fill()?;
        Ok(self.pending.map(|r| r.time))
    }

    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        self.fill()?;
        Ok(self.pending.take())
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }
}

/// The arrival engine behind a [`SyntheticSource`]: either the original
/// homogeneous Poisson draw sequence (kept verbatim so [`Trace::poisson`]
/// bit-identity is preserved) or a [`ThinnedProcess`] riding a
/// [`RateCurve`] for non-stationary workloads.
enum ArrivalProcess {
    Homogeneous(PoissonProcess),
    Thinned(ThinnedProcess),
}

impl ArrivalProcess {
    /// Next arrival strictly before `horizon`, `None` once exhausted. The
    /// homogeneous arm draws exactly as the pre-curve code did (one draw,
    /// then the horizon compare), so the random stream — and therefore the
    /// generated trace — is unchanged for stationary sources.
    fn next_arrival_before(&mut self, horizon: f64) -> Option<f64> {
        match self {
            ArrivalProcess::Homogeneous(p) => {
                let t = p.next_arrival();
                if t >= horizon {
                    None
                } else {
                    Some(t)
                }
            }
            ArrivalProcess::Thinned(p) => p.next_arrival_before(horizon),
        }
    }
}

/// A seeded arrivals/popularity request generator. With
/// [`SyntheticSource::poisson`] it produces exactly the request sequence
/// [`Trace::poisson`]`(catalog, rate, horizon, seed)` materialises (same
/// arrival process, same per-arrival popularity draws, same seed
/// derivation), but one request at a time — so a 10⁸-request replay costs
/// O(files) for the popularity table and O(1) beyond it. With
/// [`SyntheticSource::non_stationary`] the arrivals instead follow a
/// [`RateCurve`] via Lewis–Shedler thinning, with the same popularity
/// model and the same streaming cost.
pub struct SyntheticSource {
    process: ArrivalProcess,
    rng: SmallRng,
    cdf: Vec<f64>,
    horizon: f64,
    pending: Option<Request>,
    done: bool,
}

impl SyntheticSource {
    /// Poisson arrivals at `rate`/s until `horizon`, each targeting a file
    /// drawn by catalog popularity — [`Trace::poisson`] as a stream.
    pub fn poisson(catalog: &FileCatalog, rate: f64, horizon: f64, seed: u64) -> Self {
        Self::with_process(
            catalog,
            ArrivalProcess::Homogeneous(PoissonProcess::new(rate, seed)),
            horizon,
            seed,
        )
    }

    /// Arrivals following `curve` (diurnal cycle, flash crowd, tenant
    /// ramps, …) via Lewis–Shedler thinning, each targeting a file drawn
    /// by catalog popularity. The popularity stream uses the same seed
    /// derivation as [`Self::poisson`], so two sources sharing a seed
    /// differ only in *when* requests land, not in what they ask for.
    pub fn non_stationary(
        catalog: &FileCatalog,
        curve: RateCurve,
        horizon: f64,
        seed: u64,
    ) -> Self {
        Self::with_process(
            catalog,
            ArrivalProcess::Thinned(ThinnedProcess::new(curve, seed)),
            horizon,
            seed,
        )
    }

    fn with_process(
        catalog: &FileCatalog,
        process: ArrivalProcess,
        horizon: f64,
        seed: u64,
    ) -> Self {
        assert!(!catalog.is_empty(), "cannot generate against empty catalog");
        assert!(horizon >= 0.0 && horizon.is_finite(), "bad horizon");
        SyntheticSource {
            process,
            rng: SmallRng::seed_from_u64(seed.wrapping_add(1)),
            cdf: popularity_cdf(catalog),
            horizon,
            pending: None,
            done: false,
        }
    }

    fn fill(&mut self) {
        if self.pending.is_none() && !self.done {
            match self.process.next_arrival_before(self.horizon) {
                None => self.done = true,
                Some(time) => {
                    self.pending = Some(Request {
                        time,
                        file: sample_by_cdf(&self.cdf, &mut self.rng),
                    });
                }
            }
        }
    }
}

impl TraceSource for SyntheticSource {
    fn peek_time(&mut self) -> Result<Option<f64>, TraceIoError> {
        self.fill();
        Ok(self.pending.map(|r| r.time))
    }

    fn next_request(&mut self) -> Result<Option<Request>, TraceIoError> {
        self.fill();
        Ok(self.pending.take())
    }

    fn horizon(&self) -> f64 {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(src: &mut dyn TraceSource) -> Vec<Request> {
        let mut out = Vec::new();
        while let Some(r) = src.next_request().expect("source yields") {
            out.push(r);
        }
        out
    }

    #[test]
    fn in_memory_source_replays_the_trace_verbatim() {
        let catalog = FileCatalog::paper_table1(50, 0);
        let trace = Trace::poisson(&catalog, 2.0, 200.0, 11);
        let mut src = InMemorySource::new(&trace);
        assert_eq!(src.horizon(), trace.horizon());
        assert_eq!(
            src.peek_time().unwrap(),
            trace.requests().first().map(|r| r.time)
        );
        assert_eq!(drain(&mut src), trace.requests());
        assert_eq!(src.peek_time().unwrap(), None);
        assert_eq!(src.next_request().unwrap(), None);
    }

    #[test]
    fn synthetic_source_matches_trace_poisson_bit_for_bit() {
        let catalog = FileCatalog::paper_table1(100, 0);
        let (rate, horizon, seed) = (5.0, 500.0, 42);
        let trace = Trace::poisson(&catalog, rate, horizon, seed);
        let mut src = SyntheticSource::poisson(&catalog, rate, horizon, seed);
        let generated = drain(&mut src);
        assert_eq!(generated.len(), trace.len());
        assert_eq!(generated, trace.requests());
    }

    #[test]
    fn csv_source_round_trips_write_csv() {
        let catalog = FileCatalog::paper_table1(20, 0);
        let trace = Trace::poisson(&catalog, 1.0, 100.0, 3);
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let mut src = CsvTraceSource::from_reader(std::io::Cursor::new(&buf), 100.0);
        let streamed = drain(&mut src);
        assert_eq!(streamed.len(), trace.len());
        for (a, b) in streamed.iter().zip(trace.requests()) {
            assert_eq!(a.file, b.file);
            assert!((a.time - b.time).abs() < 1e-5, "printed precision");
        }
    }

    #[test]
    fn csv_source_reports_malformed_rows_at_their_line() {
        let bad = "time_s,file_id\n1.0,3\nnot-a-number,4\n";
        let mut src = CsvTraceSource::from_reader(std::io::Cursor::new(bad), 10.0);
        assert_eq!(src.next_request().unwrap().unwrap().file.0, 3);
        let err = src.next_request().unwrap_err();
        assert!(matches!(err, TraceIoError::Malformed(3, _)));
    }

    #[test]
    fn csv_source_rejects_out_of_order_and_beyond_horizon() {
        let unordered = "5.0,1\n4.0,2\n";
        let mut src = CsvTraceSource::from_reader(std::io::Cursor::new(unordered), 10.0);
        assert!(src.next_request().is_ok());
        assert!(matches!(
            src.next_request().unwrap_err(),
            TraceIoError::OutOfOrder(2)
        ));
        let beyond = "5.0,1\n20.0,2\n";
        let mut src = CsvTraceSource::from_reader(std::io::Cursor::new(beyond), 10.0);
        assert!(src.next_request().is_ok());
        assert!(matches!(
            src.next_request().unwrap_err(),
            TraceIoError::BeyondHorizon(2)
        ));
    }

    /// A `Read` wrapper counting every underlying read call, shared across
    /// constructions through an `Arc` — the probe for "how many times was
    /// this file actually scanned".
    struct CountingReader<R> {
        inner: R,
        reads: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl<R: std::io::Read> std::io::Read for CountingReader<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.reads
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.inner.read(buf)
        }
    }

    fn unique_key(tag: &str, len: u64) -> TraceFileKey {
        TraceFileKey {
            path: PathBuf::from(format!("/virtual/prescan-cache-test/{tag}")),
            len,
            mtime: None,
        }
    }

    #[test]
    fn horizon_prescan_scans_the_file_once_per_key() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let data = "1.5,0\n3.0,1\n7.25,0\n";
        let reads = Arc::new(AtomicUsize::new(0));
        let opens = Arc::new(AtomicUsize::new(0));
        let open = |reads: &Arc<AtomicUsize>, opens: &Arc<AtomicUsize>| {
            let reads = Arc::clone(reads);
            let opens = Arc::clone(opens);
            move || {
                opens.fetch_add(1, Ordering::Relaxed);
                Ok(BufReader::new(CountingReader {
                    inner: std::io::Cursor::new(data),
                    reads,
                }))
            }
        };
        let key = unique_key("once", data.len() as u64);
        let h1 = CsvTraceSource::prescan_horizon(key.clone(), open(&reads, &opens)).unwrap();
        assert_eq!(h1, 7.25);
        let scanned = reads.load(Ordering::Relaxed);
        assert!(scanned > 0, "first call must actually read");
        assert_eq!(opens.load(Ordering::Relaxed), 1);
        // Second construction against the same unmodified key: no open, no
        // reads, same horizon.
        let h2 = CsvTraceSource::prescan_horizon(key, open(&reads, &opens)).unwrap();
        assert_eq!(h2, h1);
        assert_eq!(opens.load(Ordering::Relaxed), 1, "cache hit re-opened");
        assert_eq!(reads.load(Ordering::Relaxed), scanned, "cache hit re-read");
    }

    #[test]
    fn horizon_prescan_invalidates_when_the_file_changes() {
        // A changed file shows up as a different (len, mtime) key, so the
        // cache re-scans instead of serving the stale horizon.
        let old = "1.0,0\n2.0,1\n";
        let new = "1.0,0\n2.0,1\n9.5,2\n";
        let h_old = CsvTraceSource::prescan_horizon(unique_key("grow", old.len() as u64), || {
            Ok(BufReader::new(std::io::Cursor::new(old)))
        })
        .unwrap();
        let h_new = CsvTraceSource::prescan_horizon(unique_key("grow", new.len() as u64), || {
            Ok(BufReader::new(std::io::Cursor::new(new)))
        })
        .unwrap();
        assert_eq!(h_old, 2.0);
        assert_eq!(h_new, 9.5);
    }

    #[test]
    fn open_with_no_horizon_scans_the_file_once_across_repeat_opens() {
        let dir = std::env::temp_dir().join("spindown-prescan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.csv", std::process::id()));
        std::fs::write(&path, "time_s,file_id\n0.5,0\n4.0,1\n6.5,0\n").unwrap();
        let mut a = CsvTraceSource::open(&path, None).unwrap();
        let mut b = CsvTraceSource::open(&path, None).unwrap();
        assert_eq!(a.horizon(), 6.5);
        assert_eq!(b.horizon(), 6.5);
        assert_eq!(drain(&mut a), drain(&mut b));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_stationary_source_is_monotone_deterministic_and_bounded() {
        let catalog = FileCatalog::paper_table1(50, 0);
        let curve = RateCurve::diurnal(3.0, 2.0, 400.0);
        let mut a = SyntheticSource::non_stationary(&catalog, curve.clone(), 1200.0, 17);
        let mut b = SyntheticSource::non_stationary(&catalog, curve, 1200.0, 17);
        let xs = drain(&mut a);
        assert_eq!(xs, drain(&mut b), "seed-deterministic");
        assert!(!xs.is_empty());
        for w in xs.windows(2) {
            assert!(w[0].time < w[1].time, "strictly increasing");
        }
        assert!(xs.iter().all(|r| r.time < 1200.0));
        assert!(
            xs.iter().all(|r| (r.file.0 as usize) < catalog.len()),
            "files come from the catalog"
        );
    }

    #[test]
    fn non_stationary_source_shares_the_popularity_stream_with_poisson() {
        // Same seed derivation for the popularity rng: the k-th request of
        // either source targets the same file, only the timestamps differ.
        let catalog = FileCatalog::paper_table1(80, 0);
        let mut flat = SyntheticSource::poisson(&catalog, 4.0, 300.0, 23);
        let curve = RateCurve::ramps(vec![crate::arrivals::RampStep {
            start_s: 0.0,
            rate: 4.0,
        }]);
        let mut curved = SyntheticSource::non_stationary(&catalog, curve, 300.0, 23);
        let a = drain(&mut flat);
        let b = drain(&mut curved);
        let n = a.len().min(b.len());
        assert!(n > 100, "enough overlap to be meaningful");
        for (x, y) in a[..n].iter().zip(&b[..n]) {
            assert_eq!(x.file, y.file);
        }
    }

    #[test]
    fn peek_is_idempotent_and_agrees_with_next() {
        let catalog = FileCatalog::paper_table1(10, 0);
        let mut src = SyntheticSource::poisson(&catalog, 3.0, 50.0, 9);
        while let Some(t) = src.peek_time().unwrap() {
            assert_eq!(src.peek_time().unwrap(), Some(t), "peek consumed");
            let r = src.next_request().unwrap().expect("peeked");
            assert_eq!(r.time, t);
        }
        assert_eq!(src.next_request().unwrap(), None);
    }
}
