//! The file population: ids, sizes, popularities.
//!
//! A [`FileCatalog`] is the input to both the allocator (which needs sizes
//! and loads) and the trace generator (which needs popularities). The
//! canonical constructor [`FileCatalog::paper_table1`] reproduces Table 1 of
//! the paper: Zipf popularities, inverse-Zipf sizes, and the inverse
//! popularity/size coupling ("a file has an inverse relation between its
//! access frequency p_i and its size s_i").

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sizes::RankSizeModel;
use crate::zipf::ZipfDistribution;

/// Identifier of a file: its index in the catalog.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct FileId(pub u32);

impl FileId {
    /// The catalog index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One file's static description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FileSpec {
    /// The file's id (== its catalog index).
    pub id: FileId,
    /// Size in bytes.
    pub size_bytes: u64,
    /// Fraction of all accesses that target this file (`p_i`, sums to 1).
    pub popularity: f64,
}

/// A population of files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FileCatalog {
    files: Vec<FileSpec>,
}

impl FileCatalog {
    /// Build from raw (size, popularity) pairs; ids are assigned in order.
    ///
    /// # Panics
    /// If popularities are negative or don't sum to ≈ 1 (tolerance 1e-6),
    /// or any size is zero.
    pub fn from_parts(sizes: Vec<u64>, popularities: Vec<f64>) -> Self {
        assert_eq!(
            sizes.len(),
            popularities.len(),
            "sizes and popularities must align"
        );
        assert!(
            u32::try_from(sizes.len()).is_ok(),
            "catalog too large for FileId(u32)"
        );
        let sum: f64 = popularities.iter().sum();
        assert!(
            sizes.is_empty() || (sum - 1.0).abs() < 1e-6,
            "popularities must sum to 1, got {sum}"
        );
        let files = sizes
            .into_iter()
            .zip(popularities)
            .enumerate()
            .map(|(i, (size_bytes, popularity))| {
                assert!(size_bytes > 0, "file {i} has zero size");
                assert!(popularity >= 0.0, "file {i} has negative popularity");
                FileSpec {
                    id: FileId(i as u32),
                    size_bytes,
                    popularity,
                }
            })
            .collect();
        FileCatalog { files }
    }

    /// The Table 1 catalog: `n` files, Zipf popularity with the paper's
    /// exponent, power-law sizes between 188 MB and 20 GB, inversely coupled
    /// (popularity rank 1 → smallest file).
    ///
    /// Deterministic; `seed` is accepted for API symmetry with the shuffled
    /// variants but unused. File id `i` has popularity rank `i + 1`.
    pub fn paper_table1(n: usize, seed: u64) -> Self {
        let _ = seed;
        let pop = ZipfDistribution::paper_popularity(n);
        let size_model = RankSizeModel::paper_table1(n);
        let sizes: Vec<u64> = (0..n)
            .map(|i| {
                // popularity rank i+1 → size rank n−i (inverse coupling)
                size_model.size_of_rank(n - i)
            })
            .collect();
        FileCatalog::from_parts(sizes, pop.probabilities().to_vec())
    }

    /// Like [`Self::paper_table1`] but with the popularity↔size coupling
    /// broken by a seeded shuffle of the size assignment — the "no
    /// significant relationship between the file size and its access
    /// frequency" regime the paper observed in the NERSC logs.
    pub fn paper_table1_uncorrelated(n: usize, seed: u64) -> Self {
        let pop = ZipfDistribution::paper_popularity(n);
        let size_model = RankSizeModel::paper_table1(n);
        let mut sizes: Vec<u64> = (1..=n).map(|k| size_model.size_of_rank(k)).collect();
        fisher_yates(&mut sizes, seed);
        FileCatalog::from_parts(sizes, pop.probabilities().to_vec())
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when there are no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Look up one file.
    ///
    /// # Panics
    /// If the id is out of range.
    pub fn file(&self, id: FileId) -> &FileSpec {
        &self.files[id.index()]
    }

    /// All files, in id order.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// Iterate over files.
    pub fn iter(&self) -> impl Iterator<Item = &FileSpec> {
        self.files.iter()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size_bytes).sum()
    }

    /// Mean file size in bytes (0 for an empty catalog).
    pub fn mean_bytes(&self) -> f64 {
        if self.files.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.files.len() as f64
        }
    }

    /// Per-file loads `l_i = rate · p_i · service(s_i)`: the fraction of one
    /// disk's time spent servicing file `i` when requests arrive at `rate`
    /// per second system-wide and serving `s` bytes takes `service(s)`
    /// seconds. This is the paper's §3 load definition.
    pub fn loads(&self, rate: f64, mut service: impl FnMut(u64) -> f64) -> Vec<f64> {
        self.files
            .iter()
            .map(|f| rate * f.popularity * service(f.size_bytes))
            .collect()
    }

    /// Expected service seconds per request: `Σ p_i · service(s_i)`.
    /// Multiplying by the arrival rate gives the total offered load in
    /// disk-seconds per second (i.e. the minimum number of perfectly
    /// utilised disks).
    pub fn expected_service_time(&self, mut service: impl FnMut(u64) -> f64) -> f64 {
        self.files
            .iter()
            .map(|f| f.popularity * service(f.size_bytes))
            .sum()
    }
}

/// Seeded in-place Fisher–Yates shuffle (self-contained so the crate does
/// not depend on `rand`'s optional shuffle traits).
pub(crate) fn fisher_yates<T>(items: &mut [T], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GB, MB, TB};

    #[test]
    fn paper_catalog_shape() {
        let c = FileCatalog::paper_table1(40_000, 0);
        assert_eq!(c.len(), 40_000);
        // Most popular file is the smallest, least popular the largest.
        let first = c.file(FileId(0));
        let last = c.file(FileId(39_999));
        assert!(first.popularity > last.popularity);
        assert!(first.size_bytes < last.size_bytes);
        assert_eq!(last.size_bytes, 20 * GB);
        assert!((first.size_bytes as f64 - 188.0e6).abs() < 2.0e6);
        // Footprint ballpark (Table 1: 12.86 TB).
        let total = c.total_bytes();
        assert!(total > 12 * TB && total < 15 * TB);
    }

    #[test]
    fn popularities_sum_to_one() {
        let c = FileCatalog::paper_table1(1000, 0);
        let sum: f64 = c.iter().map(|f| f.popularity).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uncorrelated_catalog_breaks_coupling() {
        let c = FileCatalog::paper_table1_uncorrelated(5000, 123);
        // Spearman-ish check: correlation of popularity rank vs size rank
        // should be near zero. Compute a simple sign statistic instead:
        // among adjacent popularity ranks, sizes should not be sorted.
        let sorted_pairs = c
            .files()
            .windows(2)
            .filter(|w| w[0].size_bytes <= w[1].size_bytes)
            .count();
        let frac = sorted_pairs as f64 / (c.len() - 1) as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "shuffled sizes look ordered: frac={frac}"
        );
        // Same multiset of sizes as the coupled catalog.
        let coupled = FileCatalog::paper_table1(5000, 0);
        let mut a: Vec<u64> = c.iter().map(|f| f.size_bytes).collect();
        let mut b: Vec<u64> = coupled.iter().map(|f| f.size_bytes).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let a = FileCatalog::paper_table1_uncorrelated(100, 7);
        let b = FileCatalog::paper_table1_uncorrelated(100, 7);
        let c = FileCatalog::paper_table1_uncorrelated(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn loads_follow_definition() {
        let c = FileCatalog::from_parts(vec![100 * MB, 200 * MB], vec![0.75, 0.25]);
        let loads = c.loads(4.0, |bytes| bytes as f64 / 100.0e6);
        // l_0 = 4 · 0.75 · 1 s = 3.0; l_1 = 4 · 0.25 · 2 s = 2.0
        assert!((loads[0] - 3.0).abs() < 1e-12);
        assert!((loads[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn expected_service_time_weights_by_popularity() {
        let c = FileCatalog::from_parts(vec![MB, 2 * MB], vec![0.5, 0.5]);
        let es = c.expected_service_time(|b| b as f64 / 1.0e6);
        assert!((es - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_catalog() {
        let c = FileCatalog::from_parts(vec![], vec![]);
        assert!(c.is_empty());
        assert_eq!(c.total_bytes(), 0);
        assert_eq!(c.mean_bytes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "popularities must sum to 1")]
    fn unnormalised_popularity_rejected() {
        let _ = FileCatalog::from_parts(vec![MB], vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "zero size")]
    fn zero_size_rejected() {
        let _ = FileCatalog::from_parts(vec![0], vec![1.0]);
    }

    #[test]
    fn display_of_file_id() {
        assert_eq!(FileId(3).to_string(), "f3");
    }
}
