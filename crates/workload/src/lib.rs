#![warn(missing_docs)]
//! # spindown-workload
//!
//! Workload generation and trace handling for the spindown reproduction of
//! Otoo, Rotem & Tsao (IPPS 2009).
//!
//! The paper drives its simulator with two workloads:
//!
//! 1. **Synthetic (Table 1)** — `n = 40 000` files whose access frequencies
//!    follow a Zipf-like law `p_i = c / rank_i^(1−θ)` with
//!    `θ = log 0.6 / log 0.4`, whose sizes follow an *inverse* Zipf-like law
//!    between 188 MB and 20 GB (total ≈ 12.86 TB), and whose requests arrive
//!    Poisson at rate `R ∈ 1..12` per second. Popularity and size are
//!    inversely related (the most popular file is the smallest).
//! 2. **NERSC trace (§5.1)** — 30 days of real read logs: 88 631 distinct
//!    files, 115 832 requests, mean size 544 MB, sizes Zipf across 80 bins,
//!    *no* size/popularity correlation. The real logs are not public, so
//!    [`nersc`] synthesizes a trace matching every published statistic
//!    (documented as a substitution in `DESIGN.md`).
//!
//! Modules:
//! - [`zipf`] — Zipf-like distribution with explicit pmf/cdf and sampling.
//! - [`sizes`] — rank–size power laws and calibration utilities.
//! - [`catalog`] — [`catalog::FileCatalog`]: the file population.
//! - [`fault`] — [`fault::FaultPlan`]: the seeded deterministic failure
//!   model (crashes, transient errors, wake failures, fail-slow windows,
//!   load shedding) the simulation engine injects during a replay.
//! - [`arrivals`] — Poisson and batched arrival processes, plus
//!   non-stationary rate curves ([`arrivals::RateCurve`]: diurnal cycles,
//!   flash crowds, tenant ramps) sampled by Lewis–Shedler thinning.
//! - [`trace`] — request traces, generation, serde I/O and statistics.
//! - [`source`] — streaming request sources ([`source::TraceSource`]):
//!   in-memory cursor, buffered CSV reader and seeded synthetic generator,
//!   so replays need not materialise O(requests) memory.
//! - [`nersc`] — the synthetic NERSC workload.
//! - [`bins`] — logarithmic size binning (the paper's 80-bin analysis).
//! - [`shard`] — per-shard arrival streams for the sharded replay engine:
//!   a zero-copy skip-scan view over in-memory traces and a single-reader
//!   demux with bounded channels for streaming sources.

pub mod arrivals;
pub mod bins;
pub mod catalog;
pub mod fault;
pub mod nersc;
pub mod shard;
pub mod sizes;
pub mod source;
pub mod trace;
pub mod zipf;

pub use arrivals::{RampStep, RateCurve, ThinnedProcess};
pub use catalog::{FileCatalog, FileId, FileSpec};
pub use fault::{CrashSpec, FailSlowSpec, FaultPlan};
pub use shard::{demux, DemuxPump, ShardReceiver, ShardedTraceView};
pub use source::{CsvTraceSource, InMemorySource, SyntheticSource, TraceSource};
pub use trace::{Request, Trace};
pub use zipf::ZipfDistribution;

/// Bytes in a megabyte (decimal, matching the paper's 72 MB/s convention).
pub const MB: u64 = 1_000_000;
/// Bytes in a gigabyte (decimal).
pub const GB: u64 = 1_000_000_000;
/// Bytes in a terabyte (decimal).
pub const TB: u64 = 1_000_000_000_000;

/// The paper's Zipf skew parameter θ = log 0.6 / log 0.4 (Table 1).
pub fn paper_theta() -> f64 {
    0.6_f64.ln() / 0.4_f64.ln()
}

/// The paper's popularity exponent `1 − θ` used in `p_i ∝ rank^−(1−θ)`.
pub fn paper_popularity_exponent() -> f64 {
    1.0 - paper_theta()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_matches_table1() {
        // log 0.6 / log 0.4 ≈ 0.5575
        assert!((paper_theta() - 0.55746).abs() < 1e-4);
    }

    #[test]
    fn popularity_exponent_in_unit_interval() {
        let e = paper_popularity_exponent();
        assert!(e > 0.0 && e < 1.0);
        assert!((e - 0.44254).abs() < 1e-4);
    }
}
