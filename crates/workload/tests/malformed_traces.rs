//! Malformed-input hardening for the CSV trace parsers: every way a trace
//! file can be broken is pinned to a typed [`TraceIoError`] carrying the
//! 1-based line number of the offending row — never a panic, never a
//! silently skipped line. Each variant has its own fixture under
//! `tests/fixtures/malformed/` and is driven through both parsers: the
//! streaming [`CsvTraceSource`] (the replay path) and the batch
//! [`Trace::read_csv`] (the materialising path).

use std::io::BufReader;
use std::path::PathBuf;

use spindown_workload::source::{CsvTraceSource, TraceSource};
use spindown_workload::trace::TraceIoError;
use spindown_workload::Trace;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/malformed")
        .join(name)
}

/// Drain the streaming source until it errors; panics if it never does.
fn stream_error(name: &str, horizon: f64) -> TraceIoError {
    let mut src = CsvTraceSource::open(fixture(name), Some(horizon)).expect("fixture opens");
    loop {
        match src.next_request() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("{name}: streaming parser accepted a malformed fixture"),
            Err(e) => return e,
        }
    }
}

fn batch_error(name: &str) -> TraceIoError {
    let raw = std::fs::File::open(fixture(name)).expect("fixture opens");
    Trace::read_csv(BufReader::new(raw), Some(100.0))
        .err()
        .unwrap_or_else(|| panic!("{name}: batch parser accepted a malformed fixture"))
}

/// Both parsers must report `Malformed` at `line`, quoting the row text in
/// the error message so the user can find it without opening the file.
fn assert_malformed_both(name: &str, line: usize, quoted: &str) {
    for (parser, err) in [
        ("stream", stream_error(name, 100.0)),
        ("batch", batch_error(name)),
    ] {
        match &err {
            TraceIoError::Malformed(at, text) => {
                assert_eq!(*at, line, "{name}/{parser}: wrong line number");
                assert_eq!(text, quoted, "{name}/{parser}: wrong quoted row");
            }
            other => panic!("{name}/{parser}: expected Malformed, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("line {line}")),
            "{name}/{parser}: message {msg:?} must name the line"
        );
    }
}

#[test]
fn garbage_row_is_malformed_at_its_line() {
    // A JSON-ish line: splits on ',' into one comma-free field, so the
    // "two fields" check itself rejects it.
    assert_malformed_both("garbage.csv", 3, "{\"time\": 2.0}");
}

#[test]
fn missing_field_is_malformed_at_its_line() {
    assert_malformed_both("missing_field.csv", 3, "2.5");
}

#[test]
fn non_numeric_time_is_malformed_at_its_line() {
    assert_malformed_both("bad_time.csv", 3, "two,4");
}

#[test]
fn non_numeric_file_id_is_malformed_at_its_line() {
    assert_malformed_both("bad_file_id.csv", 3, "2.0,banana");
}

#[test]
fn negative_file_id_is_malformed_at_its_line() {
    // u32 parse rejects the sign; file ids are indices, not offsets.
    assert_malformed_both("negative_file_id.csv", 3, "2.0,-7");
}

#[test]
fn nan_time_is_malformed_at_its_line() {
    // "nan" *parses* as f64, so this exercises the finiteness check, not
    // the parse error.
    assert_malformed_both("nan_time.csv", 3, "nan,4");
}

#[test]
fn negative_time_is_malformed_at_its_line() {
    assert_malformed_both("negative_time.csv", 3, "-5.0,4");
}

#[test]
fn out_of_order_row_is_typed_at_its_line() {
    match stream_error("out_of_order.csv", 100.0) {
        TraceIoError::OutOfOrder(3) => {}
        other => panic!("stream: expected OutOfOrder(3), got {other:?}"),
    }
    match batch_error("out_of_order.csv") {
        TraceIoError::OutOfOrder(3) => {}
        other => panic!("batch: expected OutOfOrder(3), got {other:?}"),
    }
    let msg = stream_error("out_of_order.csv", 100.0).to_string();
    assert!(msg.contains("line 3"), "message {msg:?} must name the line");
}

#[test]
fn row_beyond_a_declared_horizon_is_typed_at_its_line() {
    // Streaming-only by design: `read_csv` holds the whole file and grows
    // the horizon to fit, so the batch parser accepts this fixture.
    match stream_error("beyond_horizon.csv", 10.0) {
        TraceIoError::BeyondHorizon(3) => {}
        other => panic!("stream: expected BeyondHorizon(3), got {other:?}"),
    }
    let raw = std::fs::File::open(fixture("beyond_horizon.csv")).unwrap();
    let trace = Trace::read_csv(BufReader::new(raw), None).expect("batch grows the horizon");
    assert_eq!(trace.horizon(), 20.0);
}

#[test]
fn open_with_prescan_surfaces_the_malformed_row_too() {
    // `open(path, None)` pre-scans for the horizon; the scan must report
    // the same typed error instead of caching garbage.
    let err = CsvTraceSource::open(fixture("nan_time.csv"), None)
        .err()
        .expect("prescan rejects the fixture");
    assert!(
        matches!(err, TraceIoError::Malformed(3, _)),
        "expected Malformed(3, _), got {err:?}"
    );
}

#[test]
fn rows_before_the_malformed_one_still_stream() {
    // The streaming parser is lazy: valid prefix rows are yielded before
    // the error surfaces, so a replay fails at the bad row, not at open.
    let mut src = CsvTraceSource::open(fixture("bad_time.csv"), Some(100.0)).unwrap();
    let first = src.next_request().unwrap().expect("valid first row");
    assert_eq!(first.time, 1.0);
    assert!(src.next_request().is_err());
}
