//! Property-based tests for the workload generators and trace containers.

use proptest::prelude::*;
use spindown_workload::arrivals::PoissonProcess;
use spindown_workload::bins::SizeBins;
use spindown_workload::sizes::RankSizeModel;
use spindown_workload::trace::Request;
use spindown_workload::zipf::{generalized_harmonic, ZipfDistribution};
use spindown_workload::{FileCatalog, FileId, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zipf_pmf_always_sums_to_one(n in 1usize..2_000, a in 0.0f64..3.0) {
        let z = ZipfDistribution::new(n, a);
        let sum: f64 = z.probabilities().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zipf_pmf_is_monotone_nonincreasing(n in 2usize..500, a in 0.0f64..3.0) {
        let z = ZipfDistribution::new(n, a);
        for r in 1..n {
            prop_assert!(z.pmf(r) >= z.pmf(r + 1) - 1e-15);
        }
    }

    #[test]
    fn zipf_quantile_inverts_cdf(n in 1usize..300, a in 0.0f64..2.5, u in 0.0f64..1.0) {
        let z = ZipfDistribution::new(n, a);
        let rank = z.quantile(u);
        prop_assert!(rank >= 1 && rank <= n);
        // cdf(rank-1) < u <= cdf(rank), up to float wiggle at edges
        let cdf_at = |r: usize| -> f64 { (1..=r).map(|k| z.pmf(k)).sum() };
        if rank > 1 {
            prop_assert!(cdf_at(rank - 1) < u + 1e-9);
        }
    }

    #[test]
    fn harmonic_is_monotone_in_n(n in 1usize..500, a in 0.0f64..3.0) {
        prop_assert!(generalized_harmonic(n + 1, a) > generalized_harmonic(n, a));
    }

    #[test]
    fn rank_size_model_is_monotone_and_bounded(
        n in 1usize..2_000, min_mb in 1u64..100, extra in 0u64..10_000
    ) {
        let min = min_mb * 1_000_000;
        let max = min + extra * 1_000_000;
        let m = RankSizeModel::with_endpoints(n, min, max);
        let mut last = u64::MAX;
        for k in 1..=n {
            let s = m.size_of_rank(k);
            prop_assert!(s <= last);
            // rounding can undershoot min by at most 1 byte
            prop_assert!(s + 1 >= min && s <= max + 1);
            last = s;
        }
        prop_assert_eq!(m.size_of_rank(1), max);
    }

    #[test]
    fn poisson_arrivals_sorted_and_bounded(rate in 0.01f64..50.0, seed in any::<u64>()) {
        let mut p = PoissonProcess::new(rate, seed);
        let arrivals = p.arrivals_until(50.0);
        for w in arrivals.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for &t in &arrivals {
            prop_assert!((0.0..50.0).contains(&t));
        }
    }

    #[test]
    fn trace_csv_roundtrip(raw in prop::collection::vec((0.0f64..1e4, 0u32..500), 0..100)) {
        let mut reqs: Vec<Request> = raw
            .into_iter()
            .map(|(time, f)| Request { time, file: FileId(f) })
            .collect();
        reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
        let trace = Trace::new(reqs, 1e4);
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let back = Trace::read_csv(std::io::Cursor::new(&buf), Some(1e4)).unwrap();
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in back.requests().iter().zip(trace.requests()) {
            prop_assert_eq!(a.file, b.file);
            prop_assert!((a.time - b.time).abs() < 1e-5);
        }
    }

    #[test]
    fn per_file_counts_partition_the_trace(
        raw in prop::collection::vec((0.0f64..100.0, 0u32..20), 0..200)
    ) {
        let mut reqs: Vec<Request> = raw
            .into_iter()
            .map(|(time, f)| Request { time, file: FileId(f) })
            .collect();
        reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
        let trace = Trace::new(reqs, 100.0);
        let counts = trace.per_file_counts(20);
        prop_assert_eq!(counts.iter().sum::<u64>() as usize, trace.len());
    }

    #[test]
    fn size_bins_cover_every_sample(
        sizes in prop::collection::vec(1u64..1_000_000_000_000, 1..200),
        bins in 1usize..100
    ) {
        let mut b = SizeBins::new(bins, 1_000, 1_000_000_000_000);
        b.record_all(sizes.iter().copied());
        prop_assert_eq!(b.counts().iter().sum::<u64>() as usize, sizes.len());
        let props = b.proportions();
        let total: f64 = props.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_loads_scale_linearly_with_rate(rate in 0.01f64..10.0) {
        let catalog = FileCatalog::paper_table1(200, 0);
        let base = catalog.loads(1.0, |b| b as f64 / 72.0e6);
        let scaled = catalog.loads(rate, |b| b as f64 / 72.0e6);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((s - b * rate).abs() < 1e-12);
        }
    }

    #[test]
    fn time_scaling_preserves_structure(factor in 0.01f64..100.0) {
        let catalog = FileCatalog::paper_table1(50, 0);
        let trace = Trace::poisson(&catalog, 1.0, 100.0, 5);
        let scaled = trace.time_scaled(factor);
        prop_assert_eq!(scaled.len(), trace.len());
        prop_assert!((scaled.horizon() - trace.horizon() * factor).abs() < 1e-9);
        prop_assert_eq!(scaled.distinct_files(), trace.distinct_files());
    }
}
