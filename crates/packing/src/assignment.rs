//! Packing results: which item went to which disk, with verification.

use serde::{Deserialize, Serialize};

use crate::instance::Instance;

/// One disk's contents and totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DiskBin {
    /// Indices (into the instance) of the items on this disk, in the order
    /// they were packed.
    pub items: Vec<usize>,
    /// Total normalised storage.
    pub total_s: f64,
    /// Total normalised load.
    pub total_l: f64,
}

impl DiskBin {
    /// Whether the bin is s-complete for skew bound `rho` (§3.1).
    pub fn is_s_complete(&self, rho: f64) -> bool {
        self.total_s >= 1.0 - rho - 1e-9 && self.total_s <= 1.0 + 1e-9
    }

    /// Whether the bin is l-complete for skew bound `rho`.
    pub fn is_l_complete(&self, rho: f64) -> bool {
        self.total_l >= 1.0 - rho - 1e-9 && self.total_l <= 1.0 + 1e-9
    }

    /// Complete = both s-complete and l-complete.
    pub fn is_complete(&self, rho: f64) -> bool {
        self.is_s_complete(rho) && self.is_l_complete(rho)
    }
}

/// Why an assignment failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum FeasibilityError {
    /// A disk exceeds the storage capacity.
    StorageOverflow {
        /// The offending disk.
        disk: usize,
        /// Its total normalised storage.
        total_s: f64,
    },
    /// A disk exceeds the load capacity.
    LoadOverflow {
        /// The offending disk.
        disk: usize,
        /// Its total normalised load.
        total_l: f64,
    },
    /// An item is missing or duplicated.
    NotAPartition {
        /// The offending item index.
        item: usize,
        /// How many times it was assigned.
        times: usize,
    },
    /// Recorded totals disagree with recomputed ones.
    TotalsMismatch {
        /// The offending disk.
        disk: usize,
    },
    /// The instance cannot be packed at all (e.g. random placement over a
    /// fixed fleet ran out of space).
    OutOfSpace {
        /// Item that could not be placed.
        item: usize,
    },
}

impl std::fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeasibilityError::StorageOverflow { disk, total_s } => {
                write!(f, "disk {disk} storage overflow: {total_s}")
            }
            FeasibilityError::LoadOverflow { disk, total_l } => {
                write!(f, "disk {disk} load overflow: {total_l}")
            }
            FeasibilityError::NotAPartition { item, times } => {
                write!(f, "item {item} assigned {times} times")
            }
            FeasibilityError::TotalsMismatch { disk } => {
                write!(f, "disk {disk} recorded totals mismatch")
            }
            FeasibilityError::OutOfSpace { item } => {
                write!(f, "no disk can take item {item}")
            }
        }
    }
}

impl std::error::Error for FeasibilityError {}

/// A complete allocation of items to disks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Assignment {
    /// The disks, in the order they were opened. May contain empty disks
    /// (random placement over a fixed fleet keeps them).
    pub disks: Vec<DiskBin>,
}

impl Assignment {
    /// Number of *non-empty* disks — the objective the algorithms minimise.
    pub fn disks_used(&self) -> usize {
        self.disks.iter().filter(|d| !d.items.is_empty()).count()
    }

    /// Total number of disk slots, including empty ones.
    pub fn disk_slots(&self) -> usize {
        self.disks.len()
    }

    /// Total items assigned.
    pub fn items_assigned(&self) -> usize {
        self.disks.iter().map(|d| d.items.len()).sum()
    }

    /// Map from item index to disk index.
    ///
    /// # Panics
    /// If an item is assigned more than once or out of range.
    pub fn item_to_disk(&self, n_items: usize) -> Vec<usize> {
        let mut map = vec![usize::MAX; n_items];
        for (disk, bin) in self.disks.iter().enumerate() {
            for &item in &bin.items {
                assert!(map[item] == usize::MAX, "item {item} assigned twice");
                map[item] = disk;
            }
        }
        map
    }

    /// Verify that this assignment is a feasible partition of `instance`:
    /// every item exactly once, no disk over either capacity (tolerance
    /// 1e-9), recorded totals correct.
    pub fn verify(&self, instance: &Instance) -> Result<(), FeasibilityError> {
        const TOL: f64 = 1e-9;
        let items = instance.items();
        let mut seen = vec![0usize; items.len()];
        for (disk, bin) in self.disks.iter().enumerate() {
            let mut s = 0.0;
            let mut l = 0.0;
            for &idx in &bin.items {
                if idx >= items.len() {
                    return Err(FeasibilityError::NotAPartition {
                        item: idx,
                        times: 0,
                    });
                }
                seen[idx] += 1;
                s += items[idx].s;
                l += items[idx].l;
            }
            if s > 1.0 + TOL {
                return Err(FeasibilityError::StorageOverflow { disk, total_s: s });
            }
            if l > 1.0 + TOL {
                return Err(FeasibilityError::LoadOverflow { disk, total_l: l });
            }
            if (s - bin.total_s).abs() > 1e-6 || (l - bin.total_l).abs() > 1e-6 {
                return Err(FeasibilityError::TotalsMismatch { disk });
            }
        }
        for (item, &times) in seen.iter().enumerate() {
            if times != 1 {
                return Err(FeasibilityError::NotAPartition { item, times });
            }
        }
        Ok(())
    }

    /// Mean storage fill over used disks (0 when no disks are used).
    pub fn mean_storage_fill(&self) -> f64 {
        let used: Vec<&DiskBin> = self.disks.iter().filter(|d| !d.items.is_empty()).collect();
        if used.is_empty() {
            return 0.0;
        }
        used.iter().map(|d| d.total_s).sum::<f64>() / used.len() as f64
    }

    /// Mean load fill over used disks (0 when no disks are used).
    pub fn mean_load_fill(&self) -> f64 {
        let used: Vec<&DiskBin> = self.disks.iter().filter(|d| !d.items.is_empty()).collect();
        if used.is_empty() {
            return 0.0;
        }
        used.iter().map(|d| d.total_l).sum::<f64>() / used.len() as f64
    }
}

/// Internal builder shared by the algorithms: tracks the currently open bin
/// and accumulates closed ones.
#[derive(Debug, Default)]
pub(crate) struct AssignmentBuilder {
    closed: Vec<DiskBin>,
    current: DiskBin,
}

impl AssignmentBuilder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn current(&self) -> &DiskBin {
        &self.current
    }

    pub(crate) fn add(&mut self, item: usize, s: f64, l: f64) {
        self.current.items.push(item);
        self.current.total_s += s;
        self.current.total_l += l;
    }

    /// Remove the most recently added item whose index is `item` (used by
    /// the eviction step). Returns true if found.
    pub(crate) fn remove_last_occurrence(&mut self, item: usize, s: f64, l: f64) -> bool {
        if let Some(pos) = self.current.items.iter().rposition(|&i| i == item) {
            self.current.items.remove(pos);
            self.current.total_s -= s;
            self.current.total_l -= l;
            true
        } else {
            false
        }
    }

    pub(crate) fn close_current(&mut self) {
        let bin = std::mem::take(&mut self.current);
        self.closed.push(bin);
    }

    pub(crate) fn finish(mut self) -> Assignment {
        if !self.current.items.is_empty() {
            self.closed.push(self.current);
        }
        Assignment { disks: self.closed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, PackItem};

    fn inst() -> Instance {
        Instance::new(vec![
            PackItem { s: 0.4, l: 0.1 },
            PackItem { s: 0.5, l: 0.2 },
            PackItem { s: 0.2, l: 0.8 },
        ])
        .unwrap()
    }

    fn good_assignment() -> Assignment {
        Assignment {
            disks: vec![
                DiskBin {
                    items: vec![0, 1],
                    total_s: 0.9,
                    total_l: 0.3,
                },
                DiskBin {
                    items: vec![2],
                    total_s: 0.2,
                    total_l: 0.8,
                },
            ],
        }
    }

    #[test]
    fn verify_accepts_feasible_partition() {
        good_assignment().verify(&inst()).unwrap();
    }

    #[test]
    fn verify_rejects_storage_overflow() {
        let mut a = good_assignment();
        a.disks[0].items.push(2);
        a.disks[0].total_s += 0.2;
        a.disks[0].total_l += 0.8;
        a.disks.remove(1);
        // item 2 now once, but disk 0 storage = 1.1 (checked before load)
        let err = a.verify(&inst()).unwrap_err();
        assert!(matches!(
            err,
            FeasibilityError::StorageOverflow { disk: 0, .. }
        ));
    }

    #[test]
    fn verify_rejects_load_overflow() {
        let items = Instance::new(vec![
            PackItem { s: 0.1, l: 0.6 },
            PackItem { s: 0.1, l: 0.6 },
        ])
        .unwrap();
        let a = Assignment {
            disks: vec![DiskBin {
                items: vec![0, 1],
                total_s: 0.2,
                total_l: 1.2,
            }],
        };
        let err = a.verify(&items).unwrap_err();
        assert!(matches!(
            err,
            FeasibilityError::LoadOverflow { disk: 0, .. }
        ));
    }

    #[test]
    fn verify_rejects_missing_item() {
        let mut a = good_assignment();
        a.disks[1].items.clear();
        a.disks[1].total_s = 0.0;
        a.disks[1].total_l = 0.0;
        let err = a.verify(&inst()).unwrap_err();
        assert_eq!(err, FeasibilityError::NotAPartition { item: 2, times: 0 });
    }

    #[test]
    fn verify_rejects_duplicate_item() {
        let mut a = good_assignment();
        a.disks[1].items.push(0);
        a.disks[1].total_s += 0.4;
        a.disks[1].total_l += 0.1;
        let err = a.verify(&inst()).unwrap_err();
        assert_eq!(err, FeasibilityError::NotAPartition { item: 0, times: 2 });
    }

    #[test]
    fn verify_rejects_totals_mismatch() {
        let mut a = good_assignment();
        a.disks[0].total_s = 0.1;
        let err = a.verify(&inst()).unwrap_err();
        assert_eq!(err, FeasibilityError::TotalsMismatch { disk: 0 });
    }

    #[test]
    fn disks_used_ignores_empty_slots() {
        let mut a = good_assignment();
        a.disks.push(DiskBin::default());
        assert_eq!(a.disks_used(), 2);
        assert_eq!(a.disk_slots(), 3);
    }

    #[test]
    fn item_to_disk_roundtrip() {
        let map = good_assignment().item_to_disk(3);
        assert_eq!(map, vec![0, 0, 1]);
    }

    #[test]
    fn completeness_predicates() {
        let bin = DiskBin {
            items: vec![0],
            total_s: 0.85,
            total_l: 0.4,
        };
        assert!(bin.is_s_complete(0.2));
        assert!(!bin.is_l_complete(0.2));
        assert!(!bin.is_complete(0.2));
        assert!(bin.is_l_complete(0.7));
        assert!(bin.is_complete(0.7));
    }

    #[test]
    fn builder_eviction() {
        let mut b = AssignmentBuilder::new();
        b.add(3, 0.2, 0.1);
        b.add(5, 0.3, 0.05);
        assert!(b.remove_last_occurrence(3, 0.2, 0.1));
        assert!(!b.remove_last_occurrence(3, 0.2, 0.1));
        assert_eq!(b.current().items, vec![5]);
        assert!((b.current().total_s - 0.3).abs() < 1e-12);
        b.close_current();
        let a = b.finish();
        assert_eq!(a.disks.len(), 1);
    }

    #[test]
    fn fill_statistics() {
        let a = good_assignment();
        assert!((a.mean_storage_fill() - 0.55).abs() < 1e-12);
        assert!((a.mean_load_fill() - 0.55).abs() < 1e-12);
        assert_eq!(Assignment::default().mean_storage_fill(), 0.0);
    }
}
