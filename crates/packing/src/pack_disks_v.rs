//! `Pack_Disks_v` — the §3.2 group variant.
//!
//! `Pack_Disks` tends to place runs of similar-size files on the same disk,
//! which serialises the "batch of files of similar sizes all at once"
//! requests observed in the NERSC logs. `Pack_Disks_v` spreads consecutive
//! packing decisions across `v` concurrently open disks in round-robin
//! order: each step applies one `Pack_Disks` insertion (with the same
//! dominance rule and eviction lemma, which are *per-disk* properties) to
//! the next disk in the rotation; a disk that becomes complete is closed and
//! its slot refilled with a fresh disk. `v = 1` reduces exactly to
//! `Pack_Disks` (tested).

use crate::assignment::{Assignment, DiskBin};
use crate::heap::{HeapEntry, KeyedMaxHeap};
use crate::instance::Instance;

/// One concurrently open disk.
#[derive(Debug, Default)]
struct Slot {
    bin: DiskBin,
    s_list: Vec<usize>,
    l_list: Vec<usize>,
}

impl Slot {
    fn is_complete(&self, rho: f64) -> bool {
        !self.bin.items.is_empty()
            && self.bin.total_s >= 1.0 - rho - 1e-12
            && self.bin.total_l >= 1.0 - rho - 1e-12
    }

    fn add(&mut self, item: usize, s: f64, l: f64, size_intensive: bool) {
        self.bin.items.push(item);
        self.bin.total_s += s;
        self.bin.total_l += l;
        if size_intensive {
            self.s_list.push(item);
        } else {
            self.l_list.push(item);
        }
    }

    fn remove(&mut self, item: usize, s: f64, l: f64) {
        let pos = self
            .bin
            .items
            .iter()
            .rposition(|&i| i == item)
            .expect("evicted item present");
        self.bin.items.remove(pos);
        self.bin.total_s -= s;
        self.bin.total_l -= l;
    }
}

/// Run `Pack_Disks_v` with group size `v ≥ 1`.
///
/// # Panics
/// If `v == 0`.
pub fn pack_disks_v(instance: &Instance, v: usize) -> Assignment {
    assert!(v >= 1, "group size must be at least 1");
    let items = instance.items();
    let rho = instance.rho();

    let mut s_entries = Vec::new();
    let mut l_entries = Vec::new();
    for (i, it) in items.iter().enumerate() {
        let e = HeapEntry {
            key: it.surplus_key(),
            tiebreak: i as u64,
            value: i,
        };
        if it.is_size_intensive() {
            s_entries.push(e);
        } else {
            l_entries.push(e);
        }
    }
    let mut s_heap = KeyedMaxHeap::heapify(s_entries);
    let mut l_heap = KeyedMaxHeap::heapify(l_entries);

    let mut closed: Vec<DiskBin> = Vec::new();
    let mut slots: Vec<Slot> = (0..v).map(|_| Slot::default()).collect();
    let mut rr = 0usize;

    // Main phase: mirror of the Pack_Disks main loop, one insertion per
    // round-robin visit. Stops when no slot can make progress.
    loop {
        let mut progressed = false;
        for offset in 0..v {
            let idx = (rr + offset) % v;
            let (s_tot, l_tot) = (slots[idx].bin.total_s, slots[idx].bin.total_l);
            let storage_dominant = s_tot >= l_tot;
            let stepped = if storage_dominant {
                step_load_intensive(instance, &mut slots[idx], &mut s_heap, &mut l_heap)
            } else {
                step_size_intensive(instance, &mut slots[idx], &mut s_heap, &mut l_heap)
            };
            if stepped {
                if slots[idx].is_complete(rho) {
                    let slot = std::mem::take(&mut slots[idx]);
                    closed.push(slot.bin);
                }
                rr = (idx + 1) % v;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }

    // Remaining phase: greedy round-robin with per-dimension overflow
    // closing, first the size-intensive leftovers then the load-intensive
    // ones (at most one heap is non-empty, as in Pack_Disks).
    while let Some(e) = s_heap.pop() {
        let item = items[e.value];
        let idx = rr % v;
        if slots[idx].bin.total_s + item.s > 1.0 {
            let slot = std::mem::take(&mut slots[idx]);
            closed.push(slot.bin);
        }
        slots[idx].add(e.value, item.s, item.l, true);
        rr = (idx + 1) % v;
    }
    while let Some(e) = l_heap.pop() {
        let item = items[e.value];
        let idx = rr % v;
        if slots[idx].bin.total_l + item.l > 1.0 {
            let slot = std::mem::take(&mut slots[idx]);
            closed.push(slot.bin);
        }
        slots[idx].add(e.value, item.s, item.l, false);
        rr = (idx + 1) % v;
    }

    for slot in slots {
        if !slot.bin.items.is_empty() {
            closed.push(slot.bin);
        }
    }
    Assignment { disks: closed }
}

/// One storage-dominant insertion (lines 5–11 of Algorithm 3) applied to a
/// slot. Returns false when the load heap is empty (no progress possible).
fn step_load_intensive(
    instance: &Instance,
    slot: &mut Slot,
    s_heap: &mut KeyedMaxHeap<usize>,
    l_heap: &mut KeyedMaxHeap<usize>,
) -> bool {
    let Some(entry) = l_heap.pop() else {
        return false;
    };
    let items = instance.items();
    let j = entry.value;
    let item_j = items[j];
    if slot.bin.total_s + item_j.s > 1.0 {
        let k = slot
            .s_list
            .pop()
            .expect("Lemma 1: s-list non-empty on storage overflow");
        let item_k = items[k];
        slot.remove(k, item_k.s, item_k.l);
        s_heap.push(HeapEntry {
            key: item_k.surplus_key(),
            tiebreak: k as u64,
            value: k,
        });
    }
    slot.add(j, item_j.s, item_j.l, false);
    debug_assert!(slot.bin.total_s <= 1.0 + 1e-9 && slot.bin.total_l <= 1.0 + 1e-9);
    true
}

/// One load-dominant insertion (lines 12–18), mirror image.
fn step_size_intensive(
    instance: &Instance,
    slot: &mut Slot,
    s_heap: &mut KeyedMaxHeap<usize>,
    l_heap: &mut KeyedMaxHeap<usize>,
) -> bool {
    let Some(entry) = s_heap.pop() else {
        return false;
    };
    let items = instance.items();
    let j = entry.value;
    let item_j = items[j];
    if slot.bin.total_l + item_j.l > 1.0 {
        let k = slot
            .l_list
            .pop()
            .expect("Lemma 2: l-list non-empty on load overflow");
        let item_k = items[k];
        slot.remove(k, item_k.s, item_k.l);
        l_heap.push(HeapEntry {
            key: item_k.surplus_key(),
            tiebreak: k as u64,
            value: k,
        });
    }
    slot.add(j, item_j.s, item_j.l, true);
    debug_assert!(slot.bin.total_s <= 1.0 + 1e-9 && slot.bin.total_l <= 1.0 + 1e-9);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PackItem;
    use crate::pack_disks::pack_disks;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn uniform_instance(n: usize, rho: f64, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| PackItem {
                s: rng.random::<f64>() * rho,
                l: rng.random::<f64>() * rho,
            })
            .collect();
        Instance::new(items).unwrap()
    }

    #[test]
    fn v1_equals_pack_disks() {
        for seed in 0..10 {
            let inst = uniform_instance(300, 0.3, seed);
            assert_eq!(
                pack_disks_v(&inst, 1),
                pack_disks(&inst),
                "v=1 must reduce to Pack_Disks (seed {seed})"
            );
        }
    }

    #[test]
    fn all_v_values_feasible() {
        for v in 1..=8 {
            for seed in 0..5 {
                let inst = uniform_instance(400, 0.25, seed);
                let a = pack_disks_v(&inst, v);
                a.verify(&inst).unwrap();
                assert_eq!(a.items_assigned(), 400);
            }
        }
    }

    #[test]
    fn larger_v_does_not_explode_disk_count() {
        let inst = uniform_instance(1000, 0.2, 3);
        let base = pack_disks(&inst).disks_used();
        for v in 2..=8 {
            let used = pack_disks_v(&inst, v).disks_used();
            assert!(used <= base + 2 * v, "v={v}: {used} disks vs base {base}");
        }
    }

    #[test]
    fn spreads_adjacent_items_across_group() {
        // Equal items: Pack_Disks puts consecutive indices together;
        // Pack_Disks_4 must interleave them across 4 disks.
        let items = vec![PackItem { s: 0.1, l: 0.1 }; 64];
        let inst = Instance::new(items).unwrap();
        let a = pack_disks_v(&inst, 4);
        a.verify(&inst).unwrap();
        let map = a.item_to_disk(64);
        // first 4 items land on 4 distinct disks
        let first_four: std::collections::HashSet<usize> = map[0..4].iter().copied().collect();
        assert_eq!(first_four.len(), 4, "round-robin not spreading: {map:?}");
    }

    #[test]
    fn empty_instance() {
        let a = pack_disks_v(&Instance::new(vec![]).unwrap(), 4);
        assert_eq!(a.disks_used(), 0);
    }

    #[test]
    #[should_panic(expected = "group size must be at least 1")]
    fn zero_group_size_panics() {
        let _ = pack_disks_v(&Instance::new(vec![]).unwrap(), 0);
    }
}
