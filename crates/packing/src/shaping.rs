//! Load-shaping allocators for joint (allocation × policy) planning.
//!
//! The paper's allocators minimise *disk count* under the load constraint;
//! these two deliberately shape *how load distributes across the disks they
//! open*, trading disk count against the idle-gap structure a spin-down
//! policy can exploit:
//!
//! - [`concentrate`] — segregate the size-intensive (archival/bursty) mass
//!   onto dedicated disks and squeeze the load-intensive (hot) mass onto as
//!   few disks as the load cap allows. The archival disks see near-zero
//!   load, so their idle gaps run deep past any break-even threshold and
//!   wake batches amortise (the planner pairs this with aggressive
//!   descent policies and elevator batching).
//! - [`spread_tail`] — pack the archival mass normally but *balance* the
//!   latency-sensitive small-file load evenly across disks (each hot item
//!   goes to the least-loaded feasible disk). Every disk stays shallow, so
//!   queues — and the p95 response tail — stay short at the cost of fewer
//!   sleep opportunities.
//!
//! Both are full allocators: every item is placed, and a disk only ever
//! accepts an item when *both* normalised dimensions still fit (`total_s +
//! s ≤ 1`, `total_l + l ≤ 1`), so the load constraint holds by construction
//! (property-tested over random instances in `tests/properties.rs`).
//!
//! The hot/cold split reuses the §3.1 intensity classification: an item is
//! *archival* when it is size-intensive (`s ≥ l`) and *hot* otherwise.
//! Through the instance normalisation (`l_i = rate·p_i·µ_i / L`) this is
//! exactly the catalog's popularity/size signal: with the paper's inverse
//! coupling the popular small files are load-intensive and the unpopular
//! large files size-intensive.

use crate::assignment::{Assignment, DiskBin};
use crate::instance::Instance;

/// Item indices split into (hot = load-intensive, cold = size-intensive),
/// each sorted by its dominant coordinate descending (ties: index).
fn split_by_intensity(instance: &Instance) -> (Vec<usize>, Vec<usize>) {
    let items = instance.items();
    let (mut cold, mut hot): (Vec<usize>, Vec<usize>) =
        (0..items.len()).partition(|&i| items[i].is_size_intensive());
    cold.sort_by(|&a, &b| items[b].s.total_cmp(&items[a].s).then(a.cmp(&b)));
    hot.sort_by(|&a, &b| items[b].l.total_cmp(&items[a].l).then(a.cmp(&b)));
    (hot, cold)
}

/// Record item `i` in `bins[slot]`, opening a new bin when `slot` is
/// `None` — the one place the per-bin totals are maintained, shared by
/// every slot-selection rule in this module.
fn place_into(bins: &mut Vec<DiskBin>, slot: Option<usize>, i: usize, s: f64, l: f64) {
    let d = match slot {
        Some(d) => d,
        None => {
            bins.push(DiskBin::default());
            bins.len() - 1
        }
    };
    bins[d].items.push(i);
    bins[d].total_s += s;
    bins[d].total_l += l;
}

/// Place `i` into the first bin (lowest index, scanning `bins[from..]`)
/// where both dimensions fit, opening a new bin when none does.
fn first_fit_into(bins: &mut Vec<DiskBin>, from: usize, i: usize, s: f64, l: f64) {
    let slot = bins
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, b)| b.total_s + s <= 1.0 && b.total_l + l <= 1.0)
        .map(|(d, _)| d);
    place_into(bins, slot, i, s, l);
}

/// Concentrate: hot (load-intensive) files first-fit onto the fewest disks
/// the load cap allows, then the archival (size-intensive) mass sequentially
/// onto *fresh* disks — never mixed back onto the hot disks — so the
/// archival disks carry near-zero load and sleep through deep idle gaps.
pub fn concentrate(instance: &Instance) -> Assignment {
    let items = instance.items();
    let (hot, cold) = split_by_intensity(instance);
    let mut bins: Vec<DiskBin> = Vec::new();
    for i in hot {
        first_fit_into(&mut bins, 0, i, items[i].s, items[i].l);
    }
    // Archival mass starts on its own disks; within the archival region
    // first-fit still packs densely (wake batches amortise best when the
    // cold mass sits on few, full disks).
    let cold_start = bins.len();
    for i in cold {
        first_fit_into(&mut bins, cold_start, i, items[i].s, items[i].l);
    }
    Assignment { disks: bins }
}

/// Spread-tail: archival (size-intensive) files pack first-fit by size;
/// the latency-sensitive hot tail is then *balanced* — each hot item goes
/// to the feasible disk with the least load so far (ties: lowest index),
/// opening a new disk only when nothing fits. Load spreads evenly, queues
/// stay shallow, and the p95 tail shortens at the cost of fewer deep gaps.
pub fn spread_tail(instance: &Instance) -> Assignment {
    let items = instance.items();
    let (hot, cold) = split_by_intensity(instance);
    let mut bins: Vec<DiskBin> = Vec::new();
    for i in cold {
        first_fit_into(&mut bins, 0, i, items[i].s, items[i].l);
    }
    for i in hot {
        let (s, l) = (items[i].s, items[i].l);
        let slot = bins
            .iter()
            .enumerate()
            .filter(|(_, b)| b.total_s + s <= 1.0 && b.total_l + l <= 1.0)
            .min_by(|(da, a), (db, b)| a.total_l.total_cmp(&b.total_l).then(da.cmp(db)))
            .map(|(d, _)| d);
        place_into(&mut bins, slot, i, s, l);
    }
    Assignment { disks: bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PackItem;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn mixed_instance(n: usize, rho: f64, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| PackItem {
                s: rng.random::<f64>() * rho,
                l: rng.random::<f64>() * rho,
            })
            .collect();
        Instance::new(items).unwrap()
    }

    #[test]
    fn both_strategies_are_feasible_and_complete() {
        let inst = mixed_instance(500, 0.3, 11);
        for a in [concentrate(&inst), spread_tail(&inst)] {
            a.verify(&inst).unwrap();
            assert_eq!(a.items_assigned(), 500);
        }
    }

    #[test]
    fn concentrate_keeps_archival_disks_cold() {
        let inst = mixed_instance(600, 0.2, 42);
        let a = concentrate(&inst);
        a.verify(&inst).unwrap();
        // Disks sort into a hot prefix and a cold suffix: the coldest
        // *loaded* disk in the archival region carries far less load than
        // the hottest disk overall.
        let max_l = a.disks.iter().map(|d| d.total_l).fold(0.0, f64::max);
        let min_loaded_l = a
            .disks
            .iter()
            .filter(|d| !d.items.is_empty())
            .map(|d| d.total_l)
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_loaded_l < 0.25 * max_l,
            "no cold disks: min {min_loaded_l} vs max {max_l}"
        );
    }

    #[test]
    fn spread_tail_balances_load_tighter_than_concentrate() {
        let inst = mixed_instance(600, 0.2, 42);
        let spread = spread_tail(&inst);
        let conc = concentrate(&inst);
        spread.verify(&inst).unwrap();
        let spread_range = load_range(&spread);
        let conc_range = load_range(&conc);
        assert!(
            spread_range < conc_range,
            "spread range {spread_range} not tighter than concentrate {conc_range}"
        );
    }

    fn load_range(a: &Assignment) -> f64 {
        let loads: Vec<f64> = a
            .disks
            .iter()
            .filter(|d| !d.items.is_empty())
            .map(|d| d.total_l)
            .collect();
        let max = loads.iter().copied().fold(0.0, f64::max);
        let min = loads.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    #[test]
    fn hot_items_never_share_concentrate_archival_disks() {
        // A crisp 4-item scenario: two hot small files, two cold big ones.
        let inst = Instance::new(vec![
            PackItem { s: 0.05, l: 0.6 }, // hot
            PackItem { s: 0.05, l: 0.5 }, // hot
            PackItem { s: 0.8, l: 0.01 }, // cold
            PackItem { s: 0.7, l: 0.01 }, // cold
        ])
        .unwrap();
        let a = concentrate(&inst);
        a.verify(&inst).unwrap();
        // Hot items share disk 0 (0.6 + 0.5 > 1 → second opens disk 1)…
        assert_eq!(a.disks[0].items, vec![0]);
        assert_eq!(a.disks[1].items, vec![1]);
        // …and the cold mass lands on fresh disks, never on 0/1 even
        // though item 3 (s=0.7) would fit there by both dimensions.
        assert_eq!(a.disks[2].items, vec![2]);
        assert_eq!(a.disks[3].items, vec![3]);
    }

    #[test]
    fn spread_tail_round_robins_the_hot_tail() {
        // Two cold anchors open two disks; four equal hot items must then
        // alternate between them (least-loaded placement).
        let inst = Instance::new(vec![
            PackItem { s: 0.9, l: 0.01 },
            PackItem { s: 0.9, l: 0.01 },
            PackItem { s: 0.01, l: 0.2 },
            PackItem { s: 0.01, l: 0.2 },
            PackItem { s: 0.01, l: 0.2 },
            PackItem { s: 0.01, l: 0.2 },
        ])
        .unwrap();
        let a = spread_tail(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks_used(), 2);
        let l0 = a.disks[0].total_l;
        let l1 = a.disks[1].total_l;
        assert!((l0 - l1).abs() < 1e-12, "unbalanced: {l0} vs {l1}");
    }

    #[test]
    fn empty_instance_yields_empty_assignment() {
        let inst = Instance::new(vec![]).unwrap();
        assert_eq!(concentrate(&inst).disks_used(), 0);
        assert_eq!(spread_tail(&inst).disks_used(), 0);
    }

    #[test]
    fn strategies_are_deterministic() {
        let inst = mixed_instance(300, 0.25, 7);
        assert_eq!(concentrate(&inst), concentrate(&inst));
        assert_eq!(spread_tail(&inst), spread_tail(&inst));
    }
}
