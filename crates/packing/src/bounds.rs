//! Lower bounds and the Theorem 1 approximation guarantee.
//!
//! Any packing needs at least `max(Σ s_i, Σ l_i)` disks (each disk supplies
//! one unit of storage and one unit of load). Theorem 1 of the paper shows
//! `Pack_Disks` uses at most `C*/(1−ρ) + 1` disks where `C*` is the optimum
//! and `ρ` bounds every item coordinate; since `C* ≥ max(Σs, Σl)`, the
//! *checkable* form (which the paper's proof actually establishes) is
//!
//! ```text
//! C_PD ≤ max(Σ s_i, Σ l_i) / (1 − ρ) + 1
//! ```
//!
//! [`theorem1_budget`] computes that right-hand side; the property tests in
//! `pack_disks` assert it on random instances.

use crate::instance::Instance;

/// The fractional lower bound `max(Σ s_i, Σ l_i)` on the number of disks.
pub fn fractional_lower_bound(instance: &Instance) -> f64 {
    instance.total_s().max(instance.total_l())
}

/// Integral lower bound: `⌈max(Σs, Σl)⌉`, at least 1 for non-empty
/// instances.
pub fn lower_bound(instance: &Instance) -> usize {
    if instance.is_empty() {
        return 0;
    }
    (fractional_lower_bound(instance).ceil() as usize).max(1)
}

/// The Theorem 1 budget `max(Σs, Σl)/(1 − ρ) + 1`; `+∞` when `ρ ≥ 1`
/// (an item fills a whole disk in some dimension and the multiplicative
/// guarantee degenerates).
pub fn theorem1_budget(instance: &Instance) -> f64 {
    let rho = instance.rho();
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    fractional_lower_bound(instance) / (1.0 - rho) + 1.0
}

/// Empirical approximation ratio of a packing that used `disks_used` disks:
/// `disks_used / lower_bound` (1.0 when the bound is met; `None` for empty
/// instances).
pub fn approximation_ratio(instance: &Instance, disks_used: usize) -> Option<f64> {
    let lb = lower_bound(instance);
    if lb == 0 {
        return None;
    }
    Some(disks_used as f64 / lb as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Instance, PackItem};

    fn inst(items: Vec<PackItem>) -> Instance {
        Instance::new(items).unwrap()
    }

    #[test]
    fn fractional_bound_takes_the_max_dimension() {
        let i = inst(vec![
            PackItem { s: 0.5, l: 0.9 },
            PackItem { s: 0.5, l: 0.9 },
        ]);
        assert!((fractional_lower_bound(&i) - 1.8).abs() < 1e-12);
        assert_eq!(lower_bound(&i), 2);
    }

    #[test]
    fn lower_bound_of_empty_is_zero() {
        assert_eq!(lower_bound(&inst(vec![])), 0);
        assert!(approximation_ratio(&inst(vec![]), 0).is_none());
    }

    #[test]
    fn tiny_items_still_need_one_disk() {
        let i = inst(vec![PackItem { s: 0.01, l: 0.01 }]);
        assert_eq!(lower_bound(&i), 1);
    }

    #[test]
    fn budget_formula() {
        let i = inst(vec![
            PackItem { s: 0.5, l: 0.1 },
            PackItem { s: 0.5, l: 0.1 },
        ]);
        // Σs = 1.0, Σl = 0.2, rho = 0.5 → 1.0/0.5 + 1 = 3
        assert!((theorem1_budget(&i) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_degenerates_at_rho_one() {
        let i = inst(vec![PackItem { s: 1.0, l: 0.0 }]);
        assert!(theorem1_budget(&i).is_infinite());
    }

    #[test]
    fn approximation_ratio_sane() {
        let i = inst(vec![
            PackItem { s: 0.6, l: 0.1 },
            PackItem { s: 0.6, l: 0.1 },
        ]);
        // LB = ceil(1.2) = 2; a packing with 2 disks has ratio 1.
        assert_eq!(approximation_ratio(&i, 2), Some(1.0));
        assert_eq!(approximation_ratio(&i, 3), Some(1.5));
    }
}
