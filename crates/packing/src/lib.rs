#![warn(missing_docs)]
//! # spindown-packing
//!
//! Two-dimensional vector packing (2DVPP) for power-aware file allocation —
//! the core contribution of Otoo, Rotem & Tsao (IPPS 2009), §3.
//!
//! Each file is an item `(s_i, l_i)` — storage and load, both normalised to
//! a disk's capacity — and a packing is a partition of items into disks such
//! that each disk's total size and total load are ≤ 1. Minimising the number
//! of disks is NP-complete; this crate implements:
//!
//! - [`pack_disks::pack_disks`] — the paper's `Pack_Disks` heuristic:
//!   `O(n log n)` using a pair of max-heaps and per-disk s-/l-lists, with
//!   guarantee `C_PD ≤ C*/(1−ρ) + 1` ([`bounds`]).
//! - [`pack_disks_v::pack_disks_v`] — the §3.2 group variant that round-robins
//!   items across `v` concurrently open disks to spread same-size batches.
//! - [`chp::pack_chp`] — the Chang–Hwang–Park reference algorithm the paper
//!   improves on, with its original `O(n²)` data structures. Produces
//!   *identical* packings (property-tested), only slower — this pair is the
//!   paper's complexity claim, benchmarked in `spindown-bench`.
//! - [`baselines`] — random placement (the paper's comparison point),
//!   first-fit, first-fit-decreasing, best-fit and next-fit.
//! - [`heap::KeyedMaxHeap`] — the deterministic arena-backed max-heap used
//!   by the algorithms.
//! - [`bounds`] — lower bounds and the Theorem 1 approximation-ratio check.
//!
//! The entry type is [`Instance`]; results are [`Assignment`]s.

pub mod assignment;
pub mod baselines;
pub mod bounds;
pub mod chp;
pub mod heap;
pub mod instance;
pub mod pack_disks;
pub mod pack_disks_v;
pub mod shaping;

pub use assignment::{Assignment, DiskBin, FeasibilityError};
pub use bounds::{fractional_lower_bound, lower_bound, theorem1_budget};
pub use instance::{Instance, InstanceError, PackItem};
pub use pack_disks::pack_disks;
pub use pack_disks_v::pack_disks_v;

/// Which allocator to run — used by the simulator and experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Allocator {
    /// The paper's `Pack_Disks` (§3.1).
    PackDisks,
    /// `Pack_Disks_v` with the given group size (§3.2); `PackDisksV(1)`
    /// equals `PackDisks`.
    PackDisksV(u32),
    /// Chang–Hwang–Park reference implementation (same output, O(n²)).
    Chp,
    /// Random placement over a fixed number of disks (the paper's baseline).
    RandomFixed {
        /// Number of disks to spread over.
        disks: u32,
        /// RNG seed.
        seed: u64,
    },
    /// First-fit in input order.
    FirstFit,
    /// First-fit decreasing by `max(s, l)`.
    FirstFitDecreasing,
    /// Best-fit (tightest remaining combined slack).
    BestFit,
    /// Next-fit (single open disk).
    NextFit,
    /// Popular Data Concentration (Pinheiro & Bianchini, ref [11]):
    /// hottest files first, disks filled sequentially.
    Pdc,
    /// Load-shaping: hot load on the fewest disks, archival mass on
    /// dedicated near-zero-load disks ([`shaping::concentrate`]) — the
    /// energy-leaning leg of the joint planner.
    Concentrate,
    /// Load-shaping: archival mass packed normally, the latency-sensitive
    /// hot tail balanced evenly across disks ([`shaping::spread_tail`]) —
    /// the latency-leaning leg of the joint planner.
    SpreadTail,
}

impl Allocator {
    /// Run the allocator on an instance.
    pub fn run(&self, instance: &Instance) -> Result<Assignment, FeasibilityError> {
        let a = match *self {
            Allocator::PackDisks => pack_disks(instance),
            Allocator::PackDisksV(v) => pack_disks_v(instance, v as usize),
            Allocator::Chp => chp::pack_chp(instance),
            Allocator::RandomFixed { disks, seed } => {
                baselines::random_fixed(instance, disks as usize, seed)?
            }
            Allocator::FirstFit => baselines::first_fit(instance),
            Allocator::FirstFitDecreasing => baselines::first_fit_decreasing(instance),
            Allocator::BestFit => baselines::best_fit(instance),
            Allocator::NextFit => baselines::next_fit(instance),
            Allocator::Pdc => baselines::pdc(instance),
            Allocator::Concentrate => shaping::concentrate(instance),
            Allocator::SpreadTail => shaping::spread_tail(instance),
        };
        Ok(a)
    }

    /// A short stable label for reports.
    pub fn label(&self) -> String {
        match self {
            Allocator::PackDisks => "pack_disks".to_owned(),
            Allocator::PackDisksV(v) => format!("pack_disks_{v}"),
            Allocator::Chp => "chp".to_owned(),
            Allocator::RandomFixed { disks, .. } => format!("random_{disks}"),
            Allocator::FirstFit => "first_fit".to_owned(),
            Allocator::FirstFitDecreasing => "ffd".to_owned(),
            Allocator::BestFit => "best_fit".to_owned(),
            Allocator::NextFit => "next_fit".to_owned(),
            Allocator::Pdc => "pdc".to_owned(),
            Allocator::Concentrate => "concentrate".to_owned(),
            Allocator::SpreadTail => "spread_tail".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_labels_are_stable() {
        assert_eq!(Allocator::PackDisks.label(), "pack_disks");
        assert_eq!(Allocator::PackDisksV(4).label(), "pack_disks_4");
        assert_eq!(
            Allocator::RandomFixed { disks: 96, seed: 0 }.label(),
            "random_96"
        );
        assert_eq!(Allocator::Concentrate.label(), "concentrate");
        assert_eq!(Allocator::SpreadTail.label(), "spread_tail");
    }
}
