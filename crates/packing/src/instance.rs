//! Packing instances: normalised `(s, l)` items plus the skew bound ρ.

use serde::{Deserialize, Serialize};

/// One item to pack: normalised size and load, both in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackItem {
    /// Normalised storage requirement `s_i = size_i / S`.
    pub s: f64,
    /// Normalised load requirement `l_i = load_i / L`.
    pub l: f64,
}

impl PackItem {
    /// Whether the item is size-intensive (`s ≥ l`, set `ST(F)` in §3.1).
    pub fn is_size_intensive(&self) -> bool {
        self.s >= self.l
    }

    /// The heap key: `s − l` for size-intensive items, `l − s` otherwise.
    pub fn surplus_key(&self) -> f64 {
        (self.s - self.l).abs()
    }

    /// The larger of the two coordinates (contribution to ρ).
    pub fn max_coord(&self) -> f64 {
        self.s.max(self.l)
    }
}

/// Errors from instance construction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// Item at index has a coordinate outside `[0, 1]` — it can never fit on
    /// any disk.
    ItemDoesNotFit {
        /// The offending item index.
        index: usize,
        /// Its normalised size.
        s: f64,
        /// Its normalised load.
        l: f64,
    },
    /// A coordinate was NaN or infinite.
    NotFinite {
        /// The offending item index.
        index: usize,
    },
    /// Raw-capacity constructor got a non-positive capacity.
    BadCapacity,
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::ItemDoesNotFit { index, s, l } => write!(
                f,
                "item {index} (s={s}, l={l}) exceeds unit capacity in some dimension"
            ),
            InstanceError::NotFinite { index } => {
                write!(f, "item {index} has a non-finite coordinate")
            }
            InstanceError::BadCapacity => write!(f, "capacities must be positive and finite"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A validated 2DVPP instance (both capacities normalised to 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    items: Vec<PackItem>,
    rho: f64,
}

impl Instance {
    /// Build from normalised items, validating every coordinate.
    pub fn new(items: Vec<PackItem>) -> Result<Self, InstanceError> {
        let mut rho = 0.0_f64;
        for (index, it) in items.iter().enumerate() {
            if !it.s.is_finite() || !it.l.is_finite() {
                return Err(InstanceError::NotFinite { index });
            }
            if it.s < 0.0 || it.l < 0.0 || it.s > 1.0 || it.l > 1.0 {
                return Err(InstanceError::ItemDoesNotFit {
                    index,
                    s: it.s,
                    l: it.l,
                });
            }
            rho = rho.max(it.max_coord());
        }
        Ok(Instance { items, rho })
    }

    /// Build from raw byte sizes and absolute loads, normalising by the disk
    /// capacity `capacity_bytes` and the load bound `load_capacity` (the
    /// paper's `S` and `L`).
    pub fn from_raw(
        sizes_bytes: &[u64],
        loads: &[f64],
        capacity_bytes: u64,
        load_capacity: f64,
    ) -> Result<Self, InstanceError> {
        assert_eq!(sizes_bytes.len(), loads.len(), "sizes/loads must align");
        if capacity_bytes == 0 || !(load_capacity > 0.0) || !load_capacity.is_finite() {
            return Err(InstanceError::BadCapacity);
        }
        let cap = capacity_bytes as f64;
        let items = sizes_bytes
            .iter()
            .zip(loads)
            .map(|(&bytes, &load)| PackItem {
                s: bytes as f64 / cap,
                l: load / load_capacity,
            })
            .collect();
        Instance::new(items)
    }

    /// The items.
    pub fn items(&self) -> &[PackItem] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to pack.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The skew bound `ρ = max_i max(s_i, l_i)` (0 for empty instances).
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Total normalised storage `Σ s_i`.
    pub fn total_s(&self) -> f64 {
        self.items.iter().map(|it| it.s).sum()
    }

    /// Total normalised load `Σ l_i`.
    pub fn total_l(&self) -> f64 {
        self.items.iter().map(|it| it.l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_keys() {
        let size_heavy = PackItem { s: 0.5, l: 0.2 };
        let load_heavy = PackItem { s: 0.1, l: 0.4 };
        assert!(size_heavy.is_size_intensive());
        assert!(!load_heavy.is_size_intensive());
        assert!((size_heavy.surplus_key() - 0.3).abs() < 1e-15);
        assert!((load_heavy.surplus_key() - 0.3).abs() < 1e-15);
        // ties count as size-intensive, matching ST(F) = {s ≥ l}
        assert!(PackItem { s: 0.3, l: 0.3 }.is_size_intensive());
    }

    #[test]
    fn rho_is_max_coordinate() {
        let inst = Instance::new(vec![
            PackItem { s: 0.2, l: 0.7 },
            PackItem { s: 0.4, l: 0.1 },
        ])
        .unwrap();
        assert!((inst.rho() - 0.7).abs() < 1e-15);
    }

    #[test]
    fn oversized_item_rejected() {
        let err = Instance::new(vec![PackItem { s: 1.2, l: 0.1 }]).unwrap_err();
        assert!(matches!(
            err,
            InstanceError::ItemDoesNotFit { index: 0, .. }
        ));
    }

    #[test]
    fn nan_rejected() {
        let err = Instance::new(vec![PackItem {
            s: f64::NAN,
            l: 0.1,
        }])
        .unwrap_err();
        assert!(matches!(err, InstanceError::NotFinite { index: 0 }));
    }

    #[test]
    fn from_raw_normalises() {
        let inst = Instance::from_raw(&[250, 500], &[0.3, 0.6], 1000, 0.6).unwrap();
        let items = inst.items();
        assert!((items[0].s - 0.25).abs() < 1e-15);
        assert!((items[0].l - 0.5).abs() < 1e-15);
        assert!((items[1].s - 0.5).abs() < 1e-15);
        assert!((items[1].l - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_raw_rejects_zero_capacity() {
        assert_eq!(
            Instance::from_raw(&[1], &[0.1], 0, 1.0).unwrap_err(),
            InstanceError::BadCapacity
        );
        assert_eq!(
            Instance::from_raw(&[1], &[0.1], 10, 0.0).unwrap_err(),
            InstanceError::BadCapacity
        );
    }

    #[test]
    fn totals() {
        let inst = Instance::new(vec![
            PackItem { s: 0.2, l: 0.7 },
            PackItem { s: 0.4, l: 0.1 },
        ])
        .unwrap();
        assert!((inst.total_s() - 0.6).abs() < 1e-15);
        assert!((inst.total_l() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.rho(), 0.0);
    }
}
