//! The Chang–Hwang–Park reference algorithm (the paper's citation [3]) with
//! its original `O(n²)` data structures.
//!
//! CHP makes exactly the same packing decisions as `Pack_Disks` — the
//! paper's contribution is *not* a different packing but a faster
//! implementation: selection comes from scans over unsorted pools
//! (`O(n)` per pop) and the eviction step searches the open disk's contents
//! (`O(n)` per eviction) instead of reading a list tail. This module keeps
//! those costs on purpose so the complexity gap is measurable
//! (`spindown-bench/benches/packing_scaling.rs`); its output is
//! property-tested equal to [`crate::pack_disks`].

use crate::assignment::{Assignment, AssignmentBuilder};
use crate::instance::Instance;

/// A pool with linear-scan max extraction — deliberately `O(n)` per pop,
/// with the same (key desc, index asc) order as the heap implementation.
struct ScanPool {
    /// `(key, item index)` pairs, unordered.
    entries: Vec<(f64, usize)>,
}

impl ScanPool {
    fn new() -> Self {
        ScanPool {
            entries: Vec::new(),
        }
    }

    fn push(&mut self, key: f64, index: usize) {
        self.entries.push((key, index));
    }

    #[cfg_attr(not(test), allow(dead_code))]
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove and return the max-key (ties: smallest index) entry by a full
    /// scan.
    fn pop(&mut self) -> Option<(f64, usize)> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.entries.len() {
            let (bk, bi) = self.entries[best];
            let (ik, ii) = self.entries[i];
            let beats = match ik.total_cmp(&bk) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => ii < bi,
            };
            if beats {
                best = i;
            }
        }
        Some(self.entries.swap_remove(best))
    }
}

/// Run the CHP algorithm. Produces the same assignment as
/// [`crate::pack_disks`] in `O(n²)` time.
pub fn pack_chp(instance: &Instance) -> Assignment {
    let items = instance.items();
    let rho = instance.rho();
    let mut s_pool = ScanPool::new();
    let mut l_pool = ScanPool::new();
    for (i, it) in items.iter().enumerate() {
        if it.is_size_intensive() {
            s_pool.push(it.surplus_key(), i);
        } else {
            l_pool.push(it.surplus_key(), i);
        }
    }
    let mut builder = AssignmentBuilder::new();
    // The open disk's contents in insertion order; eviction scans this.
    let mut open_items: Vec<usize> = Vec::new();

    let is_complete = |builder: &AssignmentBuilder| {
        let cur = builder.current();
        !cur.items.is_empty()
            && cur.total_s >= 1.0 - rho - 1e-12
            && cur.total_l >= 1.0 - rho - 1e-12
    };

    loop {
        let (s_tot, l_tot) = {
            let cur = builder.current();
            (cur.total_s, cur.total_l)
        };
        if s_tot >= l_tot {
            let Some((_, j)) = l_pool.pop() else { break };
            let item_j = items[j];
            if s_tot + item_j.s > 1.0 {
                // O(n) search for the element to remove: the most recently
                // added size-intensive item (this is the step Pack_Disks
                // turns into an O(1) list-tail read).
                let pos = open_items
                    .iter()
                    .rposition(|&k| items[k].is_size_intensive())
                    .expect("Lemma 1: a size-intensive item exists");
                let k = open_items.remove(pos);
                let item_k = items[k];
                let removed = builder.remove_last_occurrence(k, item_k.s, item_k.l);
                debug_assert!(removed);
                s_pool.push(item_k.surplus_key(), k);
            }
            open_items.push(j);
            builder.add(j, item_j.s, item_j.l);
        } else {
            let Some((_, j)) = s_pool.pop() else { break };
            let item_j = items[j];
            if l_tot + item_j.l > 1.0 {
                let pos = open_items
                    .iter()
                    .rposition(|&k| !items[k].is_size_intensive())
                    .expect("Lemma 2: a load-intensive item exists");
                let k = open_items.remove(pos);
                let item_k = items[k];
                let removed = builder.remove_last_occurrence(k, item_k.s, item_k.l);
                debug_assert!(removed);
                l_pool.push(item_k.surplus_key(), k);
            }
            open_items.push(j);
            builder.add(j, item_j.s, item_j.l);
        }
        if is_complete(&builder) {
            builder.close_current();
            open_items.clear();
        }
    }

    // Remaining size-intensive items.
    while let Some((_, j)) = s_pool.pop() {
        let item = items[j];
        if builder.current().total_s + item.s > 1.0 {
            builder.close_current();
            open_items.clear();
        }
        open_items.push(j);
        builder.add(j, item.s, item.l);
    }
    // Remaining load-intensive items.
    while let Some((_, j)) = l_pool.pop() {
        let item = items[j];
        if builder.current().total_l + item.l > 1.0 {
            builder.close_current();
            open_items.clear();
        }
        open_items.push(j);
        builder.add(j, item.s, item.l);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PackItem;
    use crate::pack_disks::pack_disks;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn uniform_instance(n: usize, rho: f64, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| PackItem {
                s: rng.random::<f64>() * rho,
                l: rng.random::<f64>() * rho,
            })
            .collect();
        Instance::new(items).unwrap()
    }

    #[test]
    fn identical_to_pack_disks_on_random_instances() {
        for seed in 0..15 {
            for rho in [0.1, 0.4, 0.8] {
                let inst = uniform_instance(250, rho, seed);
                let fast = pack_disks(&inst);
                let slow = pack_chp(&inst);
                assert_eq!(
                    fast, slow,
                    "CHP diverged from Pack_Disks (seed {seed}, rho {rho})"
                );
            }
        }
    }

    #[test]
    fn identical_on_skewed_instances() {
        // Mostly load-intensive with a few big size-intensive items —
        // exercises both eviction directions.
        let mut rng = SmallRng::seed_from_u64(8);
        let mut items = Vec::new();
        for i in 0..400 {
            if i % 10 == 0 {
                items.push(PackItem {
                    s: 0.5 + 0.4 * rng.random::<f64>(),
                    l: 0.05 * rng.random::<f64>(),
                });
            } else {
                items.push(PackItem {
                    s: 0.02 * rng.random::<f64>(),
                    l: 0.2 + 0.3 * rng.random::<f64>(),
                });
            }
        }
        let inst = Instance::new(items).unwrap();
        let fast = pack_disks(&inst);
        let slow = pack_chp(&inst);
        fast.verify(&inst).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn feasible_on_its_own() {
        let inst = uniform_instance(500, 0.3, 77);
        pack_chp(&inst).verify(&inst).unwrap();
    }

    #[test]
    fn scan_pool_order_matches_spec() {
        let mut p = ScanPool::new();
        p.push(0.5, 3);
        p.push(0.9, 1);
        p.push(0.5, 0);
        p.push(0.9, 2);
        assert_eq!(p.pop(), Some((0.9, 1))); // max key, smaller index first
        assert_eq!(p.pop(), Some((0.9, 2)));
        assert_eq!(p.pop(), Some((0.5, 0)));
        assert_eq!(p.pop(), Some((0.5, 3)));
        assert_eq!(p.pop(), None);
        assert!(p.is_empty());
    }
}
