//! A deterministic arena-backed binary max-heap with `f64` keys.
//!
//! `std::collections::BinaryHeap` would work, but the paper's complexity
//! argument rests on heap maintenance and the CHP comparison needs *bitwise
//! identical* selection order between the `O(n log n)` and `O(n²)` code
//! paths. Owning the heap lets us (a) break key ties deterministically by a
//! caller-supplied tiebreak (the original item index), (b) expose a
//! `heapify` constructor with the textbook `O(n)` build the paper cites
//! (Aho–Hopcroft–Ullman), and (c) check the heap invariant in tests.

/// An entry: key (max wins), tiebreak (min wins on equal keys), payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapEntry<T> {
    /// Ordering key; larger keys pop first.
    pub key: f64,
    /// Tie-break; on equal keys, *smaller* tiebreaks pop first.
    pub tiebreak: u64,
    /// The payload carried with the entry.
    pub value: T,
}

impl<T> HeapEntry<T> {
    fn beats(&self, other: &Self) -> bool {
        match self.key.total_cmp(&other.key) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => self.tiebreak < other.tiebreak,
        }
    }
}

/// A binary max-heap over [`HeapEntry`]s.
#[derive(Debug, Clone, Default)]
pub struct KeyedMaxHeap<T> {
    arena: Vec<HeapEntry<T>>,
}

impl<T> KeyedMaxHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        KeyedMaxHeap { arena: Vec::new() }
    }

    /// Build in `O(n)` by Floyd's heapify.
    pub fn heapify(entries: Vec<HeapEntry<T>>) -> Self {
        let mut heap = KeyedMaxHeap { arena: entries };
        let n = heap.arena.len();
        for i in (0..n / 2).rev() {
            heap.sift_down(i);
        }
        heap
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// The maximum entry, if any.
    pub fn peek(&self) -> Option<&HeapEntry<T>> {
        self.arena.first()
    }

    /// Insert in `O(log n)`.
    pub fn push(&mut self, entry: HeapEntry<T>) {
        self.arena.push(entry);
        self.sift_up(self.arena.len() - 1);
    }

    /// Remove and return the maximum entry in `O(log n)`.
    pub fn pop(&mut self) -> Option<HeapEntry<T>> {
        if self.arena.is_empty() {
            return None;
        }
        let last = self.arena.len() - 1;
        self.arena.swap(0, last);
        let top = self.arena.pop();
        if !self.arena.is_empty() {
            self.sift_down(0);
        }
        top
    }

    /// Drain in descending key order (consumes the heap).
    pub fn into_sorted_vec(mut self) -> Vec<HeapEntry<T>> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(e) = self.pop() {
            out.push(e);
        }
        out
    }

    /// Verify the heap invariant (test/debug helper).
    pub fn check_invariant(&self) -> bool {
        (1..self.arena.len()).all(|i| !self.arena[i].beats(&self.arena[(i - 1) / 2]))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.arena[i].beats(&self.arena[parent]) {
                self.arena.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.arena.len();
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut largest = i;
            if l < n && self.arena[l].beats(&self.arena[largest]) {
                largest = l;
            }
            if r < n && self.arena[r].beats(&self.arena[largest]) {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.arena.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn entry(key: f64, tiebreak: u64) -> HeapEntry<u64> {
        HeapEntry {
            key,
            tiebreak,
            value: tiebreak,
        }
    }

    #[test]
    fn pops_in_descending_key_order() {
        let mut h = KeyedMaxHeap::new();
        for (i, k) in [0.3, 0.9, 0.1, 0.5, 0.7].into_iter().enumerate() {
            h.push(entry(k, i as u64));
        }
        let keys: Vec<f64> = h.into_sorted_vec().into_iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![0.9, 0.7, 0.5, 0.3, 0.1]);
    }

    #[test]
    fn equal_keys_break_by_tiebreak_ascending() {
        let mut h = KeyedMaxHeap::new();
        h.push(entry(0.5, 2));
        h.push(entry(0.5, 0));
        h.push(entry(0.5, 1));
        let order: Vec<u64> = h
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.tiebreak)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn heapify_equals_push_sequence() {
        let entries: Vec<_> = (0..64).map(|i| entry((i * 37 % 64) as f64, i)).collect();
        let a = KeyedMaxHeap::heapify(entries.clone());
        let mut b = KeyedMaxHeap::new();
        for e in entries {
            b.push(e);
        }
        assert!(a.check_invariant());
        assert!(b.check_invariant());
        let sa: Vec<u64> = a
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.tiebreak)
            .collect();
        let sb: Vec<u64> = b
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.tiebreak)
            .collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn empty_heap_behaviour() {
        let mut h: KeyedMaxHeap<u64> = KeyedMaxHeap::new();
        assert!(h.is_empty());
        assert!(h.peek().is_none());
        assert!(h.pop().is_none());
        assert!(h.check_invariant());
    }

    #[test]
    fn interleaved_push_pop_keeps_invariant() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut h = KeyedMaxHeap::new();
        for i in 0..1000u64 {
            if h.is_empty() || rng.random::<f64>() < 0.6 {
                h.push(entry(rng.random::<f64>(), i));
            } else {
                h.pop();
            }
            debug_assert!(h.check_invariant());
        }
        assert!(h.check_invariant());
        // drain remains sorted
        let keys: Vec<f64> = h.into_sorted_vec().into_iter().map(|e| e.key).collect();
        for w in keys.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn matches_std_binary_heap_as_reference() {
        // Model check against std's BinaryHeap on the same operations.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut rng = SmallRng::seed_from_u64(5);
        let mut ours = KeyedMaxHeap::new();
        let mut reference: BinaryHeap<(u64, Reverse<u64>)> = BinaryHeap::new();
        for i in 0..2000u64 {
            if reference.is_empty() || rng.random::<f64>() < 0.55 {
                let key_bits = rng.random_range(0..1000u64);
                ours.push(entry(key_bits as f64, i));
                reference.push((key_bits, Reverse(i)));
            } else {
                let a = ours.pop().unwrap();
                let (k, Reverse(t)) = reference.pop().unwrap();
                assert_eq!(a.key, k as f64);
                assert_eq!(a.tiebreak, t);
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = KeyedMaxHeap::new();
        h.push(entry(1.0, 0));
        h.push(entry(3.0, 1));
        h.push(entry(2.0, 2));
        let peeked = h.peek().unwrap().key;
        let popped = h.pop().unwrap().key;
        assert_eq!(peeked, popped);
        assert_eq!(popped, 3.0);
    }
}
