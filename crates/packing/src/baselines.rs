//! Baseline allocators: random placement (the paper's comparison point) and
//! the classic one-dimensional-style greedy family generalised to 2D.
//!
//! Random placement mirrors §4: "a mapping table that randomly maps files
//! among all disks". It respects only the storage capacity (the paper's
//! random baseline knows nothing about loads — that is precisely why its
//! spun-up disk count is high and its per-disk utilisation low).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::assignment::{Assignment, DiskBin, FeasibilityError};
use crate::instance::Instance;

/// Random placement over a fixed fleet of `disks` drives (§4/§5.1): each
/// item goes to a uniformly random disk with enough *storage* left; load is
/// unconstrained. Empty disks are kept in the result so disk indices match
/// the fleet. Fails with [`FeasibilityError::OutOfSpace`] when an item fits
/// on no disk.
pub fn random_fixed(
    instance: &Instance,
    disks: usize,
    seed: u64,
) -> Result<Assignment, FeasibilityError> {
    assert!(disks >= 1, "fleet must have at least one disk");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
    for (i, it) in instance.items().iter().enumerate() {
        let first_try = rng.random_range(0..disks);
        // Probe the fleet starting from a random disk; wrapping scan keeps
        // the distribution uniform over *feasible* disks without rejection
        // loops that might never terminate on a nearly full fleet.
        let mut placed = false;
        for off in 0..disks {
            let d = (first_try + off) % disks;
            if bins[d].total_s + it.s <= 1.0 {
                bins[d].items.push(i);
                bins[d].total_s += it.s;
                bins[d].total_l += it.l;
                placed = true;
                break;
            }
        }
        if !placed {
            return Err(FeasibilityError::OutOfSpace { item: i });
        }
    }
    Ok(Assignment { disks: bins })
}

/// First-fit: place each item (input order) on the first disk where *both*
/// dimensions fit; open a new disk otherwise.
pub fn first_fit(instance: &Instance) -> Assignment {
    first_fit_order(instance, (0..instance.len()).collect())
}

/// First-fit decreasing by `max(s, l)` — the standard strengthening.
pub fn first_fit_decreasing(instance: &Instance) -> Assignment {
    let items = instance.items();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .max_coord()
            .total_cmp(&items[a].max_coord())
            .then(a.cmp(&b))
    });
    first_fit_order(instance, order)
}

fn first_fit_order(instance: &Instance, order: Vec<usize>) -> Assignment {
    let items = instance.items();
    let mut bins: Vec<DiskBin> = Vec::new();
    for i in order {
        let it = items[i];
        let slot = bins
            .iter()
            .position(|b| b.total_s + it.s <= 1.0 && b.total_l + it.l <= 1.0);
        let d = match slot {
            Some(d) => d,
            None => {
                bins.push(DiskBin::default());
                bins.len() - 1
            }
        };
        bins[d].items.push(i);
        bins[d].total_s += it.s;
        bins[d].total_l += it.l;
    }
    Assignment { disks: bins }
}

/// Best-fit: place each item on the feasible disk minimising the remaining
/// combined slack `(1−S′) + (1−L′)`; open a new disk when none fits.
pub fn best_fit(instance: &Instance) -> Assignment {
    let items = instance.items();
    let mut bins: Vec<DiskBin> = Vec::new();
    for (i, it) in items.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (d, b) in bins.iter().enumerate() {
            if b.total_s + it.s <= 1.0 && b.total_l + it.l <= 1.0 {
                let slack = (1.0 - b.total_s - it.s) + (1.0 - b.total_l - it.l);
                if best.is_none_or(|(_, s)| slack < s) {
                    best = Some((d, slack));
                }
            }
        }
        let d = match best {
            Some((d, _)) => d,
            None => {
                bins.push(DiskBin::default());
                bins.len() - 1
            }
        };
        bins[d].items.push(i);
        bins[d].total_s += it.s;
        bins[d].total_l += it.l;
    }
    Assignment { disks: bins }
}

/// Popular Data Concentration (Pinheiro & Bianchini, the paper's ref [11]):
/// sort files by load (most popular first) and fill disks *sequentially* —
/// disk 0 takes the hottest files until either constraint would overflow,
/// then disk 1, and so on. Unlike first-fit-decreasing it never revisits an
/// earlier disk, so the load concentrates maximally at the front of the
/// fleet (the property PDC is named for).
pub fn pdc(instance: &Instance) -> Assignment {
    let items = instance.items();
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .l
            .total_cmp(&items[a].l)
            .then(items[b].s.total_cmp(&items[a].s))
            .then(a.cmp(&b))
    });
    let mut bins: Vec<DiskBin> = Vec::new();
    let mut open = DiskBin::default();
    let mut leftovers: Vec<usize> = Vec::new();
    for i in order {
        let it = items[i];
        if open.total_s + it.s <= 1.0 && open.total_l + it.l <= 1.0 {
            open.items.push(i);
            open.total_s += it.s;
            open.total_l += it.l;
        } else {
            leftovers.push(i);
        }
        // Close the disk when it can't even take the *least* demanding
        // leftover — approximated by fullness in either dimension.
        if open.total_s >= 1.0 - 1e-12 || open.total_l >= 1.0 - 1e-12 {
            bins.push(std::mem::take(&mut open));
        }
    }
    if !open.items.is_empty() {
        bins.push(std::mem::take(&mut open));
    }
    // Sweep the leftovers with further sequential passes until done.
    while !leftovers.is_empty() {
        let mut next_left = Vec::new();
        let mut disk = DiskBin::default();
        for i in leftovers {
            let it = items[i];
            if disk.total_s + it.s <= 1.0 && disk.total_l + it.l <= 1.0 {
                disk.items.push(i);
                disk.total_s += it.s;
                disk.total_l += it.l;
            } else {
                next_left.push(i);
            }
        }
        assert!(
            !disk.items.is_empty(),
            "leftover pass must place at least one item"
        );
        bins.push(disk);
        leftovers = next_left;
    }
    Assignment { disks: bins }
}

/// Next-fit: keep a single open disk; close it whenever the next item does
/// not fit. The weakest baseline — useful as an upper anchor in benches.
pub fn next_fit(instance: &Instance) -> Assignment {
    let items = instance.items();
    let mut bins: Vec<DiskBin> = Vec::new();
    let mut open = DiskBin::default();
    for (i, it) in items.iter().enumerate() {
        if !open.items.is_empty() && (open.total_s + it.s > 1.0 || open.total_l + it.l > 1.0) {
            bins.push(std::mem::take(&mut open));
        }
        open.items.push(i);
        open.total_s += it.s;
        open.total_l += it.l;
    }
    if !open.items.is_empty() {
        bins.push(open);
    }
    Assignment { disks: bins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PackItem;
    use crate::pack_disks::pack_disks;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn uniform_instance(n: usize, rho: f64, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| PackItem {
                s: rng.random::<f64>() * rho,
                l: rng.random::<f64>() * rho,
            })
            .collect();
        Instance::new(items).unwrap()
    }

    /// Storage-only feasibility (what random placement promises).
    fn check_storage(a: &Assignment, inst: &Instance, n: usize) {
        let mut seen = vec![false; n];
        for bin in &a.disks {
            let s: f64 = bin.items.iter().map(|&i| inst.items()[i].s).sum();
            assert!(s <= 1.0 + 1e-9);
            for &i in &bin.items {
                assert!(!seen[i], "duplicate item {i}");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "missing items");
    }

    #[test]
    fn random_fixed_uses_whole_fleet() {
        let inst = uniform_instance(500, 0.1, 1);
        let a = random_fixed(&inst, 50, 7).unwrap();
        assert_eq!(a.disk_slots(), 50);
        check_storage(&a, &inst, 500);
        // with 500 items over 50 disks, virtually all disks get something
        assert!(a.disks_used() > 45, "only {} disks used", a.disks_used());
    }

    #[test]
    fn random_fixed_is_deterministic_per_seed() {
        let inst = uniform_instance(200, 0.2, 2);
        assert_eq!(
            random_fixed(&inst, 30, 5).unwrap(),
            random_fixed(&inst, 30, 5).unwrap()
        );
        assert_ne!(
            random_fixed(&inst, 30, 5).unwrap(),
            random_fixed(&inst, 30, 6).unwrap()
        );
    }

    #[test]
    fn random_fixed_out_of_space() {
        let items = vec![PackItem { s: 0.9, l: 0.0 }; 3];
        let inst = Instance::new(items).unwrap();
        let err = random_fixed(&inst, 2, 0).unwrap_err();
        assert!(matches!(err, FeasibilityError::OutOfSpace { item: 2 }));
    }

    #[test]
    fn greedy_family_is_fully_feasible() {
        let inst = uniform_instance(400, 0.3, 3);
        for a in [
            first_fit(&inst),
            first_fit_decreasing(&inst),
            best_fit(&inst),
            next_fit(&inst),
        ] {
            a.verify(&inst).unwrap();
            assert_eq!(a.items_assigned(), 400);
        }
    }

    #[test]
    fn quality_ordering_is_sane() {
        // next_fit ≥ first_fit ≥ (roughly) ffd; pack_disks competitive.
        let inst = uniform_instance(1000, 0.15, 4);
        let nf = next_fit(&inst).disks_used();
        let ff = first_fit(&inst).disks_used();
        let ffd = first_fit_decreasing(&inst).disks_used();
        let bf = best_fit(&inst).disks_used();
        let pd = pack_disks(&inst).disks_used();
        assert!(ff <= nf);
        assert!(bf <= nf);
        assert!(ffd <= nf);
        // Pack_Disks within a small factor of the greedy family.
        assert!((pd as f64) < 1.5 * ffd as f64, "pd {pd} vs ffd {ffd}");
    }

    #[test]
    fn pdc_concentrates_load_at_the_front() {
        let inst = uniform_instance(600, 0.2, 9);
        let a = pdc(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.items_assigned(), 600);
        // The first third of disks must carry clearly more load than the
        // last third — the concentration property.
        let used: Vec<&crate::assignment::DiskBin> =
            a.disks.iter().filter(|d| !d.items.is_empty()).collect();
        let k = used.len() / 3;
        if k > 0 {
            let front: f64 = used[..k].iter().map(|d| d.total_l).sum();
            let back: f64 = used[used.len() - k..].iter().map(|d| d.total_l).sum();
            assert!(
                front > 1.5 * back,
                "front load {front} not concentrated vs back {back}"
            );
        }
    }

    #[test]
    fn pdc_orders_items_by_load() {
        let items = vec![
            PackItem { s: 0.1, l: 0.1 },
            PackItem { s: 0.1, l: 0.9 }, // hottest → disk 0, first
            PackItem { s: 0.1, l: 0.5 },
        ];
        let inst = Instance::new(items).unwrap();
        let a = pdc(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks[0].items[0], 1);
    }

    #[test]
    fn next_fit_never_revisits() {
        let items = vec![
            PackItem { s: 0.6, l: 0.1 },
            PackItem { s: 0.6, l: 0.1 },
            PackItem { s: 0.3, l: 0.1 },
        ];
        let inst = Instance::new(items).unwrap();
        let a = next_fit(&inst);
        // item 2 would fit on disk 0 but next-fit already closed it
        assert_eq!(a.disks_used(), 2);
        assert_eq!(a.disks[0].items, vec![0]);
        assert_eq!(a.disks[1].items, vec![1, 2]);
    }

    #[test]
    fn ffd_sorts_by_dominant_coordinate() {
        let items = vec![
            PackItem { s: 0.2, l: 0.1 },
            PackItem { s: 0.1, l: 0.9 }, // dominant 0.9 → packed first
            PackItem { s: 0.5, l: 0.2 },
        ];
        let inst = Instance::new(items).unwrap();
        let a = first_fit_decreasing(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks[0].items[0], 1);
    }

    #[test]
    #[should_panic(expected = "fleet must have at least one disk")]
    fn zero_fleet_panics() {
        let _ = random_fixed(&Instance::new(vec![]).unwrap(), 0, 0);
    }
}
