//! `Pack_Disks` — the paper's `O(n log n)` 2DVPP heuristic (Algorithm 3).
//!
//! Items are split into the size-intensive set `ST(F) = {(s,l) : s ≥ l}`
//! (max-heap `~S` keyed by `s − l`) and the load-intensive set
//! `LD(F) = {(s,l) : l > s}` (max-heap `~L` keyed by `l − s`). Disks are
//! packed one at a time; the next item comes from the heap *opposite* to the
//! currently dominant dimension, so the two totals chase each other upward.
//! When adding an item would overflow (only the dominant dimension can
//! overflow — see the invariant below), the most recently added item of the
//! opposite kind is evicted back to its heap; Lemmas 3/4 of the paper
//! guarantee the disk is then *complete* (both totals ≥ 1 − ρ) and can be
//! closed. Leftovers are packed greedily by `Pack_Remaining_{S,L}`.
//!
//! ## Invariants maintained (and `debug_assert`ed)
//!
//! For every open (not-yet-complete) disk with totals `(S, L)`:
//! `min(S, L) < 1 − ρ`. Hence adding any item can only overflow the
//! *dominant* dimension, which is exactly the single overflow check in the
//! pseudocode. After an eviction swap the disk satisfies
//! `1 − ρ ≤ S ≤ 1` and `1 − ρ ≤ L ≤ 1` (complete).
//!
//! The improvement over Chang–Hwang–Park ([`crate::chp`]) is the eviction
//! step: keeping per-disk `s-list`/`l-list` makes the evicted element the
//! list *tail*, found in `O(1)` instead of an `O(n)` scan.

use crate::assignment::{Assignment, AssignmentBuilder};
use crate::heap::{HeapEntry, KeyedMaxHeap};
use crate::instance::Instance;

/// Run `Pack_Disks` on an instance. Always produces a feasible assignment;
/// see [`crate::bounds::theorem1_budget`] for the optimality guarantee.
pub fn pack_disks(instance: &Instance) -> Assignment {
    Packer::new(instance).run()
}

/// Shared driver: the packing state of Algorithm 3. `chp` re-uses the exact
/// same transition logic through [`crate::chp`]'s scan-based heaps, so the
/// two implementations differ only in data-structure complexity.
struct Packer<'a> {
    instance: &'a Instance,
    s_heap: KeyedMaxHeap<usize>,
    l_heap: KeyedMaxHeap<usize>,
    s_list: Vec<usize>,
    l_list: Vec<usize>,
    builder: AssignmentBuilder,
}

impl<'a> Packer<'a> {
    fn new(instance: &'a Instance) -> Self {
        let mut s_entries = Vec::new();
        let mut l_entries = Vec::new();
        for (i, it) in instance.items().iter().enumerate() {
            let entry = HeapEntry {
                key: it.surplus_key(),
                tiebreak: i as u64,
                value: i,
            };
            if it.is_size_intensive() {
                s_entries.push(entry);
            } else {
                l_entries.push(entry);
            }
        }
        Packer {
            instance,
            s_heap: KeyedMaxHeap::heapify(s_entries),
            l_heap: KeyedMaxHeap::heapify(l_entries),
            s_list: Vec::new(),
            l_list: Vec::new(),
            builder: AssignmentBuilder::new(),
        }
    }

    fn totals(&self) -> (f64, f64) {
        let cur = self.builder.current();
        (cur.total_s, cur.total_l)
    }

    fn is_complete(&self) -> bool {
        let rho = self.instance.rho();
        let (s, l) = self.totals();
        !self.builder.current().items.is_empty() && s >= 1.0 - rho - 1e-12 && l >= 1.0 - rho - 1e-12
    }

    fn close_disk(&mut self) {
        self.builder.close_current();
        self.s_list.clear();
        self.l_list.clear();
    }

    fn run(mut self) -> Assignment {
        // Main loop (Algorithm 3, lines 4–21).
        loop {
            let (s_tot, l_tot) = self.totals();
            let storage_dominant = s_tot >= l_tot;
            if storage_dominant {
                if self.l_heap.is_empty() {
                    break;
                }
                self.step_add_load_intensive();
            } else {
                if self.s_heap.is_empty() {
                    break;
                }
                self.step_add_size_intensive();
            }
            if self.is_complete() {
                self.close_disk();
            }
        }
        // Lines 22–23: pack whichever heap survived.
        debug_assert!(
            self.s_heap.is_empty() || self.l_heap.is_empty(),
            "main loop must drain at least one heap"
        );
        self.pack_remaining_s();
        self.pack_remaining_l();
        self.builder.finish()
    }

    /// Lines 5–11: the disk is storage-dominant, take a load-intensive item.
    fn step_add_load_intensive(&mut self) {
        let entry = self.l_heap.pop().expect("caller checked non-empty");
        let j = entry.value;
        let item_j = self.instance.items()[j];
        let (s_tot, l_tot) = self.totals();
        debug_assert!(
            l_tot < 1.0 - self.instance.rho() + 1e-9,
            "open disk must have min(S,L) < 1-rho; had L={l_tot}"
        );
        if s_tot + item_j.s > 1.0 {
            // Lemma 1: the s-list tail k satisfies S − L ≤ s_k − l_k,
            // so swapping k for j completes the disk (Lemma 3).
            let k = self
                .s_list
                .pop()
                .expect("Lemma 1: s-list non-empty when storage overflows");
            let item_k = self.instance.items()[k];
            debug_assert!(
                s_tot - l_tot <= item_k.s - item_k.l + 1e-9,
                "Lemma 1 violated"
            );
            let removed = self.builder.remove_last_occurrence(k, item_k.s, item_k.l);
            debug_assert!(removed);
            self.s_heap.push(HeapEntry {
                key: item_k.surplus_key(),
                tiebreak: k as u64,
                value: k,
            });
        }
        self.l_list.push(j);
        self.builder.add(j, item_j.s, item_j.l);
        let (s_after, l_after) = self.totals();
        debug_assert!(
            s_after <= 1.0 + 1e-9 && l_after <= 1.0 + 1e-9,
            "feasibility violated: S={s_after} L={l_after}"
        );
    }

    /// Lines 12–18: the disk is load-dominant, take a size-intensive item.
    fn step_add_size_intensive(&mut self) {
        let entry = self.s_heap.pop().expect("caller checked non-empty");
        let j = entry.value;
        let item_j = self.instance.items()[j];
        let (s_tot, l_tot) = self.totals();
        debug_assert!(
            s_tot < 1.0 - self.instance.rho() + 1e-9,
            "open disk must have min(S,L) < 1-rho; had S={s_tot}"
        );
        if l_tot + item_j.l > 1.0 {
            // Lemma 2 / Lemma 4, mirror image.
            let k = self
                .l_list
                .pop()
                .expect("Lemma 2: l-list non-empty when load overflows");
            let item_k = self.instance.items()[k];
            debug_assert!(
                l_tot - s_tot <= item_k.l - item_k.s + 1e-9,
                "Lemma 2 violated"
            );
            let removed = self.builder.remove_last_occurrence(k, item_k.s, item_k.l);
            debug_assert!(removed);
            self.l_heap.push(HeapEntry {
                key: item_k.surplus_key(),
                tiebreak: k as u64,
                value: k,
            });
        }
        self.s_list.push(j);
        self.builder.add(j, item_j.s, item_j.l);
        let (s_after, l_after) = self.totals();
        debug_assert!(
            s_after <= 1.0 + 1e-9 && l_after <= 1.0 + 1e-9,
            "feasibility violated: S={s_after} L={l_after}"
        );
    }

    /// `Pack_Remaining_S`: greedy next-fit over leftover size-intensive
    /// items (storage is the only dimension that can overflow — every item
    /// here has `l ≤ s` and the running disk keeps `L ≤ S`).
    fn pack_remaining_s(&mut self) {
        while let Some(entry) = self.s_heap.pop() {
            let j = entry.value;
            let item = self.instance.items()[j];
            if self.builder.current().total_s + item.s > 1.0 {
                self.close_disk();
            }
            self.s_list.push(j);
            self.builder.add(j, item.s, item.l);
            let (s, l) = self.totals();
            debug_assert!(s <= 1.0 + 1e-9 && l <= 1.0 + 1e-9);
        }
    }

    /// `Pack_Remaining_L`: mirror image for load-intensive leftovers.
    fn pack_remaining_l(&mut self) {
        while let Some(entry) = self.l_heap.pop() {
            let j = entry.value;
            let item = self.instance.items()[j];
            if self.builder.current().total_l + item.l > 1.0 {
                self.close_disk();
            }
            self.l_list.push(j);
            self.builder.add(j, item.s, item.l);
            let (s, l) = self.totals();
            debug_assert!(s <= 1.0 + 1e-9 && l <= 1.0 + 1e-9);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{fractional_lower_bound, theorem1_budget};
    use crate::instance::PackItem;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn uniform_instance(n: usize, rho: f64, seed: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let items = (0..n)
            .map(|_| PackItem {
                s: rng.random::<f64>() * rho,
                l: rng.random::<f64>() * rho,
            })
            .collect();
        Instance::new(items).unwrap()
    }

    #[test]
    fn empty_instance_packs_to_zero_disks() {
        let a = pack_disks(&Instance::new(vec![]).unwrap());
        assert_eq!(a.disks_used(), 0);
    }

    #[test]
    fn single_item() {
        let inst = Instance::new(vec![PackItem { s: 0.4, l: 0.3 }]).unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks_used(), 1);
    }

    #[test]
    fn large_complementary_items_close_disks_early() {
        // With ρ = 0.8 completeness only requires totals ≥ 0.2, so the
        // algorithm legitimately closes a disk per item (line 19) — the
        // guarantee is weak for large ρ but feasibility and the Theorem 1
        // budget must hold.
        let items: Vec<PackItem> = (0..10)
            .flat_map(|_| [PackItem { s: 0.8, l: 0.2 }, PackItem { s: 0.2, l: 0.8 }])
            .collect();
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        // Σs = Σl = 10, ρ = 0.8 → budget = 10/0.2 + 1 = 51.
        assert!(a.disks_used() as f64 <= theorem1_budget(&inst) + 1e-9);
        assert!(a.disks_used() >= 10);
    }

    #[test]
    fn small_complementary_items_pack_tightly() {
        // With ρ = 0.18 the completeness threshold is 0.82 in both
        // dimensions, so alternation achieves a near-optimal mix: 50 of
        // (0.18, 0.02) + 50 of (0.02, 0.18) have Σs = Σl = 10 and can fill
        // 10 disks exactly.
        let items: Vec<PackItem> = (0..50)
            .flat_map(|_| [PackItem { s: 0.18, l: 0.02 }, PackItem { s: 0.02, l: 0.18 }])
            .collect();
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        let used = a.disks_used();
        assert!(used >= 10);
        assert!(
            used <= 13,
            "expected near-optimal packing (LB 10, budget ≈ 13.2), got {used}"
        );
    }

    #[test]
    fn all_size_intensive_behaves_like_bin_packing() {
        let items = vec![PackItem { s: 0.5, l: 0.0 }; 10];
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks_used(), 5);
    }

    #[test]
    fn all_load_intensive_behaves_like_bin_packing() {
        let items = vec![PackItem { s: 0.0, l: 0.25 }; 8];
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        assert_eq!(a.disks_used(), 2);
    }

    #[test]
    fn random_instances_are_feasible_and_within_theorem1() {
        for seed in 0..20 {
            for rho in [0.1, 0.3, 0.5, 0.9] {
                let inst = uniform_instance(300, rho, seed);
                let a = pack_disks(&inst);
                a.verify(&inst).unwrap();
                let budget = theorem1_budget(&inst);
                assert!(
                    (a.disks_used() as f64) <= budget + 1e-9,
                    "seed {seed} rho {rho}: used {} > budget {budget}",
                    a.disks_used()
                );
            }
        }
    }

    #[test]
    fn closed_disks_are_near_capacity_on_tight_instances() {
        // With small rho, all but the last disk must be s- or l-complete.
        let inst = uniform_instance(2000, 0.05, 7);
        let rho = inst.rho();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        let incomplete = a
            .disks
            .iter()
            .filter(|d| !d.is_s_complete(rho) && !d.is_l_complete(rho))
            .count();
        assert!(
            incomplete <= 1,
            "{incomplete} disks neither s- nor l-complete (Lemma 6 violated)"
        );
    }

    #[test]
    fn beats_or_matches_lower_bound_sanity() {
        let inst = uniform_instance(500, 0.2, 3);
        let a = pack_disks(&inst);
        let lb = fractional_lower_bound(&inst);
        assert!(a.disks_used() as f64 >= lb - 1e-9);
    }

    #[test]
    fn eviction_path_is_exercised() {
        // Construct a case that forces a storage-overflow eviction: disk is
        // storage-dominant, next load-intensive item can't fit by storage.
        let inst = Instance::new(vec![
            PackItem { s: 0.70, l: 0.10 }, // size-intensive, key 0.6
            PackItem { s: 0.65, l: 0.05 }, // size-intensive, key 0.6 (tie → later)
            PackItem { s: 0.40, l: 0.90 }, // load-intensive, key 0.5
            PackItem { s: 0.05, l: 0.50 }, // load-intensive, key 0.45
        ])
        .unwrap();
        let a = pack_disks(&inst);
        a.verify(&inst).unwrap();
        // rho = 0.9; every disk trivially fine; main thing: feasibility +
        // everything assigned exactly once.
        assert_eq!(a.items_assigned(), 4);
    }

    #[test]
    fn deterministic_output() {
        let inst = uniform_instance(1000, 0.4, 11);
        assert_eq!(pack_disks(&inst), pack_disks(&inst));
    }

    #[test]
    fn uses_far_fewer_disks_than_singleton_allocation() {
        let inst = uniform_instance(1000, 0.1, 13);
        let a = pack_disks(&inst);
        // average item ~0.05/0.05 → ~20 items per disk
        assert!(a.disks_used() < 120, "used {}", a.disks_used());
    }
}
