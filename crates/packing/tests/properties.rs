//! Property-based tests for the 2DVPP algorithms (proptest).
//!
//! These check, over randomized instances, the paper's §3 guarantees:
//! feasibility, the Lemma 5/6 completeness structure, the Theorem 1 budget,
//! and the claimed Pack_Disks ≡ CHP equivalence.

use proptest::prelude::*;
use spindown_packing::baselines;
use spindown_packing::bounds::{lower_bound, theorem1_budget};
use spindown_packing::chp::pack_chp;
use spindown_packing::{pack_disks, pack_disks_v, Instance, PackItem};

/// Strategy: items with coordinates in [0, rho_cap].
fn items_strategy(max_n: usize, rho_cap: f64) -> impl Strategy<Value = Vec<PackItem>> {
    prop::collection::vec(
        (0.0..=rho_cap, 0.0..=rho_cap).prop_map(|(s, l)| PackItem { s, l }),
        0..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_disks_always_feasible(items in items_strategy(200, 1.0)) {
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        prop_assert!(a.verify(&inst).is_ok());
        prop_assert_eq!(a.items_assigned(), inst.len());
    }

    #[test]
    fn pack_disks_within_theorem1_budget(items in items_strategy(200, 0.95)) {
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        let budget = theorem1_budget(&inst);
        prop_assert!(
            (a.disks_used() as f64) <= budget + 1e-9,
            "used {} > budget {}", a.disks_used(), budget
        );
    }

    #[test]
    fn pack_disks_at_least_lower_bound(items in items_strategy(150, 1.0)) {
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        prop_assert!(a.disks_used() >= lower_bound(&inst));
    }

    #[test]
    fn chp_equals_pack_disks(items in items_strategy(120, 1.0)) {
        let inst = Instance::new(items).unwrap();
        prop_assert_eq!(pack_disks(&inst), pack_chp(&inst));
    }

    #[test]
    fn lemma6_all_but_one_disk_complete_in_some_dimension(
        items in items_strategy(200, 0.4)
    ) {
        let inst = Instance::new(items).unwrap();
        let rho = inst.rho();
        let a = pack_disks(&inst);
        let incomplete = a
            .disks
            .iter()
            .filter(|d| !d.items.is_empty())
            .filter(|d| !d.is_s_complete(rho) && !d.is_l_complete(rho))
            .count();
        prop_assert!(incomplete <= 1, "{incomplete} incomplete disks");
    }

    #[test]
    fn pack_disks_v_feasible_for_all_group_sizes(
        items in items_strategy(150, 1.0),
        v in 1usize..=8
    ) {
        let inst = Instance::new(items).unwrap();
        let a = pack_disks_v(&inst, v);
        prop_assert!(a.verify(&inst).is_ok());
        prop_assert_eq!(a.items_assigned(), inst.len());
    }

    #[test]
    fn pack_disks_v1_equals_pack_disks(items in items_strategy(150, 1.0)) {
        let inst = Instance::new(items).unwrap();
        prop_assert_eq!(pack_disks_v(&inst, 1), pack_disks(&inst));
    }

    #[test]
    fn greedy_baselines_feasible(items in items_strategy(150, 1.0)) {
        let inst = Instance::new(items).unwrap();
        for a in [
            baselines::first_fit(&inst),
            baselines::first_fit_decreasing(&inst),
            baselines::best_fit(&inst),
            baselines::next_fit(&inst),
            baselines::pdc(&inst),
        ] {
            prop_assert!(a.verify(&inst).is_ok());
        }
    }

    #[test]
    fn shaping_strategies_respect_the_load_constraint(items in items_strategy(200, 1.0)) {
        // The joint planner's load-shaping legs must never violate either
        // normalised cap, whatever the catalog looks like — `verify`
        // checks per-disk totals in both dimensions plus item accounting.
        let inst = Instance::new(items).unwrap();
        for a in [
            spindown_packing::shaping::concentrate(&inst),
            spindown_packing::shaping::spread_tail(&inst),
        ] {
            prop_assert!(a.verify(&inst).is_ok());
            prop_assert_eq!(a.items_assigned(), inst.len());
        }
    }

    #[test]
    fn random_fixed_respects_storage(
        items in items_strategy(100, 0.3),
        seed in any::<u64>()
    ) {
        let inst = Instance::new(items).unwrap();
        // generous fleet so placement cannot fail
        let fleet = inst.len().max(1) + 10;
        let a = baselines::random_fixed(&inst, fleet, seed).unwrap();
        prop_assert_eq!(a.disk_slots(), fleet);
        let mut seen = vec![false; inst.len()];
        for bin in &a.disks {
            let s: f64 = bin.items.iter().map(|&i| inst.items()[i].s).sum();
            prop_assert!(s <= 1.0 + 1e-9);
            for &i in &bin.items {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn item_to_disk_is_total_function(items in items_strategy(120, 1.0)) {
        let inst = Instance::new(items).unwrap();
        let a = pack_disks(&inst);
        let map = a.item_to_disk(inst.len());
        for (item, &disk) in map.iter().enumerate() {
            prop_assert!(disk < a.disk_slots(), "item {item} unmapped");
            prop_assert!(a.disks[disk].items.contains(&item));
        }
    }
}
