//! `spindown-bench` has no library code; all content lives in `benches/`.
