//! Table 2 (E2): disk-model micro-costs — service-time computation, power
//! state cycling with energy integration, and the break-even derivation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spindown_disk::mechanics::ServiceTimer;
use spindown_disk::{break_even_threshold, DiskSpec, DiskStateMachine, PowerState};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let spec = DiskSpec::seagate_st3500630as();
    let mut group = c.benchmark_group("table2_disk_model");

    let timer = ServiceTimer::new(&spec);
    group.throughput(Throughput::Elements(1));
    group.bench_function("service_time", |b| {
        b.iter(|| black_box(timer.service_time(black_box(544_000_000))))
    });

    group.bench_function("break_even_threshold", |b| {
        b.iter(|| black_box(break_even_threshold(black_box(&spec))))
    });

    group.throughput(Throughput::Elements(100));
    group.bench_function("state_machine_100_cycles", |b| {
        b.iter(|| {
            let mut m = DiskStateMachine::new(spec.clone(), 0.0);
            let mut t = 0.0;
            for _ in 0..100 {
                t += 60.0;
                let down = m.begin_spin_down(t).unwrap();
                m.transition(down, PowerState::Standby).unwrap();
                t = down + 100.0;
                let up = m.begin_spin_up(t).unwrap();
                m.transition(up, PowerState::Idle).unwrap();
                t = up;
            }
            black_box(m.finish(t + 1.0).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
