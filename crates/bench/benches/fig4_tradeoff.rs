//! Figure 4 (E5): the L-sweep trade-off point at R = 6 — plan + simulate at
//! one load constraint, reporting fleet power and mean response.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spindown_core::{Planner, PlannerConfig};
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = FileCatalog::paper_table1(40_000, 0);
    let rate = 6.0;
    let trace = Trace::poisson(&catalog, rate, 400.0, 8);

    for load in [0.5, 0.8] {
        let mut cfg = PlannerConfig::default();
        cfg.load_constraint = load;
        let planner = Planner::new(cfg);
        let plan = planner.plan(&catalog, rate).unwrap();
        let report = planner
            .evaluate_with_fleet(&plan, &catalog, &trace, 100)
            .unwrap();
        println!(
            "[fig4] L={load}: {} disks, {:.0} W, {:.2} s mean response",
            plan.disks_used(),
            report.mean_power_w(),
            report.responses.mean()
        );
    }

    let mut group = c.benchmark_group("fig4_tradeoff");
    group.sample_size(10);
    for load in [0.5, 0.8] {
        let mut cfg = PlannerConfig::default();
        cfg.load_constraint = load;
        let planner = Planner::new(cfg);
        let plan = planner.plan(&catalog, rate).unwrap();
        group.bench_with_input(
            BenchmarkId::new("simulate_l", format!("{load}")),
            &plan,
            |b, plan| {
                b.iter(|| {
                    black_box(
                        planner
                            .evaluate_with_fleet(plan, &catalog, &trace, 100)
                            .unwrap()
                            .mean_power_w(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
