//! Discrete-event engine throughput: requests simulated per second of wall
//! time, across fleet sizes and arrival rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_core::{Planner, PlannerConfig};
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = FileCatalog::paper_table1(40_000, 0);
    let planner = Planner::new(PlannerConfig::default());

    let mut group = c.benchmark_group("sim_engine");
    group.sample_size(10);
    for &rate in &[2.0, 12.0] {
        let plan = planner.plan(&catalog, rate).unwrap();
        let trace = Trace::poisson(&catalog, rate, 400.0, 31);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("requests", format!("r{rate}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    black_box(
                        planner
                            .evaluate_with_fleet(&plan, &catalog, trace, 100)
                            .unwrap()
                            .responses
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
