//! Figure 2 (E3): one power-saving grid point — Pack_Disks vs random
//! placement at R = 4, L = 70 % — timed end-to-end (plan + two simulations).
//! The measured saving is printed once so `bench_output.txt` records the
//! reproduced value alongside the timing.

use criterion::{criterion_group, criterion_main, Criterion};
use spindown_core::{compare, Planner, PlannerConfig};
use spindown_packing::Allocator;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = FileCatalog::paper_table1(40_000, 0);
    let rate = 4.0;
    let trace = Trace::poisson(&catalog, rate, 400.0, 2);
    let planner = Planner::new(PlannerConfig::default());
    let mut rnd_cfg = PlannerConfig::default();
    rnd_cfg.allocator = Allocator::RandomFixed {
        disks: 100,
        seed: 5,
    };
    let rnd_planner = Planner::new(rnd_cfg);

    // Report the reproduced number once.
    let pack = planner.plan(&catalog, rate).unwrap();
    let random = rnd_planner.plan(&catalog, rate).unwrap();
    let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(100)).unwrap();
    println!(
        "[fig2] R={rate}, L=0.7: power saving {:.3} (paper: >0.6 below R=4 at full horizon)",
        cmp.power_saving()
    );

    let mut group = c.benchmark_group("fig2_power_saving");
    group.sample_size(10);
    group.bench_function("grid_point_r4_l70", |b| {
        b.iter(|| {
            let pack = planner.plan(&catalog, rate).unwrap();
            let random = rnd_planner.plan(&catalog, rate).unwrap();
            let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(100)).unwrap();
            black_box(cmp.power_saving())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
