//! Joint-planner grid-evaluation throughput: the full default quadruple
//! grid (3 allocations × 3 policies × 2 disciplines × 2 ladders = 36
//! cells) searched against a NERSC-style batched replay, both through the
//! sequential `JointPlanner::search` and the thread-fanned
//! `experiments::sweep::run_joint` driver the shootout and CLI use.
//! Guards the planner assembly path (one `DiskSpec`, ladder applied
//! before policy construction) plus the per-cell simulation cost;
//! `scripts/bench_diff.py` diffs the means against `BENCH_BASELINE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_core::{JointConfig, JointPlanner};
use spindown_experiments::sweep::run_joint;
use spindown_workload::arrivals::BatchConfig;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

const FILES: usize = 512;
const RATE: f64 = 0.5;

fn bench(c: &mut Criterion) {
    let catalog = FileCatalog::paper_table1(FILES, 7);
    // NERSC-style bursts of related requests (§3.2): inter-burst gaps
    // straddling the break-even thresholds, long enough a horizon that
    // every cell sees plenty of descend/wake cycles.
    let trace = Trace::batched(
        &catalog,
        &BatchConfig {
            burst_rate: 1.0 / 60.0,
            min_batch: 2,
            max_batch: 6,
            intra_batch_gap_s: 2.0,
        },
        20_000.0,
        4242,
    );
    let planner = JointPlanner::new(JointConfig::default_grid());
    let cells = planner.candidates().len() as u64;

    let mut group = c.benchmark_group("joint_planning/nersc_grid");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    group.bench_with_input(BenchmarkId::new("search", "sequential"), &trace, |b, t| {
        b.iter(|| {
            let out = planner.search(&catalog, black_box(t), RATE).unwrap();
            black_box(out.winner)
        })
    });
    group.bench_with_input(BenchmarkId::new("search", "fanned"), &trace, |b, t| {
        b.iter(|| {
            let out = run_joint(&planner, &catalog, black_box(t), RATE).unwrap();
            black_box(out.winner)
        })
    });
    group.finish();

    // One-shot report so `cargo bench` records the planning story next to
    // the timing story.
    let out = run_joint(&planner, &catalog, &trace, RATE).unwrap();
    println!(
        "joint_planning/outcome: winner {} ({:.0} J, p95 {:.3} s), {} frontier of {} cells",
        out.winner_cell().candidate.label(),
        out.winner_cell().energy_j,
        out.winner_cell().p95_s,
        out.frontier.len(),
        out.cells.len(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
