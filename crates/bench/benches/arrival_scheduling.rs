//! Preloaded vs streamed arrival scheduling on a million-request synthetic
//! trace: the streamed engine keeps the event heap at O(disks) instead of
//! O(requests), which is both a peak-memory and a heap-operation win.
//! Results are recorded in BENCHMARKS.md to track the trajectory across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{ArrivalMode, SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

const FILES: usize = 64;
const DISKS: usize = 8;

fn fixture() -> (FileCatalog, Trace, Assignment) {
    // 64 equally popular 8 MB files round-robined over 8 disks; 250 req/s
    // for 4000 s ≈ one million requests.
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let trace = Trace::poisson(&catalog, 250.0, 4_000.0, 1_000_003);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, trace, Assignment { disks: bins })
}

fn bench(c: &mut Criterion) {
    let (catalog, trace, assignment) = fixture();
    assert!(
        trace.len() > 900_000,
        "want ~1M requests, got {}",
        trace.len()
    );

    let mut group = c.benchmark_group("arrival_scheduling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (label, mode) in [
        ("streamed", ArrivalMode::Streamed),
        ("preloaded", ArrivalMode::Preloaded),
    ] {
        let cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::BreakEven)
            .with_arrival_mode(mode);
        group.bench_with_input(BenchmarkId::new("1M_requests", label), &cfg, |b, cfg| {
            b.iter(|| {
                let report = Simulator::run(&catalog, &trace, &assignment, black_box(cfg)).unwrap();
                black_box((report.responses.len(), report.peak_event_queue_max()))
            })
        });
    }
    group.finish();

    // One-shot peak-queue report so `cargo bench` output records the
    // memory story alongside the timing story.
    for (label, mode) in [
        ("streamed", ArrivalMode::Streamed),
        ("preloaded", ArrivalMode::Preloaded),
    ] {
        let cfg = SimConfig::paper_default().with_arrival_mode(mode);
        let report = Simulator::run(&catalog, &trace, &assignment, &cfg).unwrap();
        println!(
            "arrival_scheduling/peak_event_queue/{label}: {} entries ({} requests, {} disks)",
            report.peak_event_queue_max(),
            trace.len(),
            report.disks
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
