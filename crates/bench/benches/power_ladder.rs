//! Power-ladder hot path: replay cost of the two-state (paper) ladder vs
//! the three-level (idle / low-RPM / standby) ladder, under the fixed
//! break-even timeout and the lower-envelope descent policies, on a
//! spin-up-heavy bursty trace — the workload where descent/wake machinery
//! dominates. Guards the per-level generalisation of the engine's timer
//! and transition path; `scripts/bench_diff.py` diffs the means against
//! `BENCH_BASELINE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_core::PolicyChoice;
use spindown_disk::LadderChoice;
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::SimConfig;
use spindown_sim::engine::Simulator;
use spindown_sim::metrics::MetricsMode;
use spindown_workload::arrivals::BatchConfig;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

const FILES: usize = 256;
const DISKS: usize = 8;

fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::paper_table1(FILES, 7);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    // Sparse bursts: disks descend and wake constantly, so the run is
    // dominated by ladder transitions rather than service time.
    let bursty = Trace::batched(
        &catalog,
        &BatchConfig {
            burst_rate: 1.0 / 120.0,
            min_batch: 4,
            max_batch: 10,
            intra_batch_gap_s: 0.5,
        },
        20_000.0,
        777,
    );

    let mut group = c.benchmark_group("power_ladder/spin_up_bursts");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bursty.len() as u64));
    for ladder in LadderChoice::all() {
        for policy in [PolicyChoice::break_even(), PolicyChoice::lower_envelope()] {
            let mut cfg = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
            ladder.apply(&mut cfg.disk);
            group.bench_with_input(
                BenchmarkId::new("replay", format!("{}_{}", ladder.label(), policy.label())),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let report = Simulator::run_with_policy(
                            &catalog,
                            &bursty,
                            &assignment,
                            black_box(cfg),
                            DISKS,
                            policy.build(&cfg.disk),
                        )
                        .unwrap();
                        black_box(report.spin_downs)
                    })
                },
            );
        }
    }
    group.finish();

    // One-shot energy report so `cargo bench` records the power story
    // alongside the timing story (the three-state ladder trades deeper
    // descents against extra transition overhead).
    for ladder in LadderChoice::all() {
        for policy in [PolicyChoice::break_even(), PolicyChoice::lower_envelope()] {
            let mut cfg = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
            ladder.apply(&mut cfg.disk);
            let report = Simulator::run_with_policy(
                &catalog,
                &bursty,
                &assignment,
                &cfg,
                DISKS,
                policy.build(&cfg.disk),
            )
            .unwrap();
            println!(
                "power_ladder/energy/{}_{}: {:.0} J, {} spin-downs, {} spin-ups, mean resp {:.3} s",
                ladder.label(),
                policy.label(),
                report.energy.total_joules(),
                report.spin_downs,
                report.spin_ups,
                report.responses.mean(),
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
