//! §5.1 v-sweep (E8): packing cost and simulation at group sizes
//! v ∈ {1, 4, 8} on the bursty NERSC workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spindown_core::{Planner, PlannerConfig};
use spindown_packing::{pack_disks_v, Allocator};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_workload::arrivals::BatchConfig;
use spindown_workload::nersc::{self, NerscConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = NerscConfig::paper_scaled(40);
    let batches = BatchConfig {
        burst_rate: 1.0 / 2000.0,
        min_batch: 4,
        max_batch: 12,
        intra_batch_gap_s: 0.0,
    };
    let workload = nersc::generate_with_batches(&cfg, Some(&batches), 25);
    let rate = cfg.arrival_rate();

    for v in [1u32, 4, 8] {
        let mut pcfg = PlannerConfig::default();
        pcfg.allocator = Allocator::PackDisksV(v);
        let planner = Planner::new(pcfg);
        let plan = planner.plan(&workload.catalog, rate).unwrap();
        let sim = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(1_800.0));
        let report =
            Simulator::run(&workload.catalog, &workload.trace, &plan.assignment, &sim).unwrap();
        println!(
            "[vsweep] v={v}: {} disks, mean response {:.2} s",
            plan.disks_used(),
            report.responses.mean()
        );
    }

    // Time only the packing step — the algorithmic part that varies with v.
    let planner = Planner::new(PlannerConfig::default());
    let instance = planner.instance(&workload.catalog, rate).unwrap();
    let mut group = c.benchmark_group("vsweep_group_size");
    group.sample_size(10);
    for v in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("pack_disks_v", v), &v, |b, &v| {
            b.iter(|| black_box(pack_disks_v(black_box(&instance), v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
