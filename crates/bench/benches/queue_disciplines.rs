//! Queue disciplines head-to-head on a mixed-size Zipf workload: engine
//! throughput per discipline on a steady Poisson replay, plus a bursty
//! spin-up-heavy replay where elevator batching amortises positioning.
//! Response-time tails per discipline are printed alongside so `cargo
//! bench` records the latency story with the timing story; results are
//! tracked in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::discipline::DisciplineChoice;
use spindown_sim::engine::Simulator;
use spindown_workload::arrivals::BatchConfig;
use spindown_workload::trace::Request;
use spindown_workload::{FileCatalog, FileId, Trace};
use std::hint::black_box;

const FILES: usize = 256;
const DISKS: usize = 8;

/// Zipf-popular catalog with the paper's size/popularity correlation —
/// a heavy mix of small and multi-hundred-MB files — round-robined over
/// the fleet.
fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::paper_table1(FILES, 7);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn disciplines() -> Vec<DisciplineChoice> {
    DisciplineChoice::all()
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    // Steady mixed-size load at ~0.75 utilization (mean service ≈ 7.5 s
    // over 8 disks): queues form behind the large files without tipping
    // into overload, which would drown the discipline effect.
    let steady = Trace::poisson(&catalog, 0.8, 5_000.0, 424_242);
    // Bursty spin-up-heavy load: disks sleep out the inter-burst gaps.
    let bursty = Trace::batched(
        &catalog,
        &BatchConfig {
            burst_rate: 1.0 / 120.0,
            min_batch: 4,
            max_batch: 10,
            intra_batch_gap_s: 0.5,
        },
        20_000.0,
        777,
    );

    for (workload, trace, threshold) in [
        ("steady_zipf", &steady, ThresholdPolicy::BreakEven),
        ("spin_up_bursts", &bursty, ThresholdPolicy::Fixed(20.0)),
    ] {
        let mut group = c.benchmark_group(format!("queue_disciplines/{workload}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(trace.len() as u64));
        for discipline in disciplines() {
            let cfg = SimConfig::paper_default()
                .with_threshold(threshold)
                .with_discipline(discipline);
            group.bench_with_input(
                BenchmarkId::new("replay", discipline.label()),
                &cfg,
                |b, cfg| {
                    b.iter(|| {
                        let report =
                            Simulator::run(&catalog, trace, &assignment, black_box(cfg)).unwrap();
                        black_box(report.responses.len())
                    })
                },
            );
        }
        group.finish();

        // One-shot latency report: the discipline story is a tail story.
        for discipline in disciplines() {
            let cfg = SimConfig::paper_default()
                .with_threshold(threshold)
                .with_discipline(discipline);
            let report = Simulator::run(&catalog, trace, &assignment, &cfg).unwrap();
            let quantiles = report.response_quantiles(&[0.95, 0.99]);
            println!(
                "queue_disciplines/{workload}/latency/{}: mean {:.3} s, p95 {:.3} s, p99 {:.3} s \
                 ({} requests)",
                discipline.label(),
                report.responses.mean(),
                quantiles[0],
                quantiles[1],
                trace.len()
            );
        }
    }
}

/// The deep-queue scenario the O(log n) SJF queue exists for: one disk,
/// 30 000 simultaneous arrivals, so the pending queue is tens of thousands
/// deep while it drains. The linear min-scan implementation did
/// O(depth) work *per pop* here (O(n²) per drain, with an O(n) `remove`
/// shifting the deque each time); the indexed heap pops in O(log n). The
/// huge aging bound keeps every pop on the size-ordered path — with the
/// default 30 s bound a pile-up this deep ages out into FIFO-order pops,
/// which both implementations serve in O(1).
fn bench_deep_queue(c: &mut Criterion) {
    const DEPTH: usize = 30_000;
    let catalog = FileCatalog::paper_table1(256, 7);
    let assignment = Assignment {
        disks: vec![DiskBin {
            items: (0..256).collect(),
            total_s: 0.0,
            total_l: 0.0,
        }],
    };
    let requests = (0..DEPTH)
        .map(|i| Request {
            time: 0.0,
            file: FileId((i % 256) as u32),
        })
        .collect();
    let pileup = Trace::new(requests, 1.0);

    let mut group = c.benchmark_group("queue_disciplines/deep_pileup");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DEPTH as u64));
    for discipline in [
        DisciplineChoice::Fifo,
        DisciplineChoice::ShortestJobFirst {
            aging_bound_s: 1.0e9,
        },
    ] {
        let cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::Never)
            .with_discipline(discipline);
        group.bench_with_input(
            BenchmarkId::new("drain_30k", discipline.label()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let report =
                        Simulator::run(&catalog, &pileup, &assignment, black_box(cfg)).unwrap();
                    black_box(report.responses.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench, bench_deep_queue);
criterion_main!(benches);
