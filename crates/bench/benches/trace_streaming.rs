//! Trace-source streaming at scale: generator-backed and CSV-backed
//! replays in histogram-metrics mode, where resident memory is
//! O(disks + histogram buckets) regardless of request count — no
//! materialised trace, no response vector. The criterion loop times a
//! 10M-request generator replay, a 1M-request CSV file replay, and the
//! same generator replay across 1/2/4/8 shards (the `--shards` scaling
//! curve — wall clock tracks the host's core count, the report is
//! bit-identical), and the 10M replay with the streaming completion log
//! in digest mode (the per-completion canonicalise/hash overhead); a
//! one-shot 100M-request replay (10M under `CRITERION_QUICK=1`) records
//! wall time, throughput and the tracked-structure sizes alongside.
//! Results are tracked in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_sim::{CompletionLogMode, MetricsMode, StreamingHistogram};
use spindown_workload::{CsvTraceSource, FileCatalog, SyntheticSource, Trace};
use std::hint::black_box;

const FILES: usize = 64;
const DISKS: usize = 8;
/// 40 req/s over 8 disks of 8 MB files ≈ 0.62 utilisation — a stable
/// queueing system, so the pending backlog (the one structure whose size
/// the workload controls) stays bounded however long the replay runs. The
/// `arrival_scheduling` fixture deliberately overloads the same fleet;
/// here the point is the memory story, not the drain throughput.
const RATE: f64 = 40.0;
const SEED: u64 = 1_000_003;

/// The `arrival_scheduling` fixture shape: 64 equally popular 8 MB files
/// round-robined over 8 disks.
fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn streaming_cfg() -> SimConfig {
    SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::BreakEven)
        .with_metrics(MetricsMode::Histogram)
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    let cfg = streaming_cfg();

    // Criterion-timed: 10M requests straight from the generator.
    let requests_10m = 10_000_000f64;
    let mut group = c.benchmark_group("trace_streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests_10m as u64));
    group.bench_with_input(
        BenchmarkId::new("generator", "10M_requests"),
        &cfg,
        |b, cfg| {
            b.iter(|| {
                let source = SyntheticSource::poisson(&catalog, RATE, requests_10m / RATE, SEED);
                let report = Simulator::run_from_source(
                    &catalog,
                    source,
                    &assignment,
                    black_box(cfg),
                    DISKS,
                )
                .unwrap();
                black_box((report.responses.len(), report.peak_event_queue_max()))
            })
        },
    );

    // Criterion-timed: 1M requests streamed from a CSV file on disk
    // through the buffered reader (parse cost included, memory O(1)).
    let csv_path = std::env::temp_dir().join("spindown_trace_streaming_1m.csv");
    let csv_horizon = 1_000_000.0 / RATE;
    {
        let trace = Trace::poisson(&catalog, RATE, csv_horizon, SEED);
        let file = std::fs::File::create(&csv_path).expect("temp CSV writable");
        trace
            .write_csv(std::io::BufWriter::new(file))
            .expect("trace written");
        group.throughput(Throughput::Elements(trace.len() as u64));
    }
    group.bench_with_input(
        BenchmarkId::new("csv_file", "1M_requests"),
        &cfg,
        |b, cfg| {
            b.iter(|| {
                let source = CsvTraceSource::open(&csv_path, Some(csv_horizon)).unwrap();
                let report = Simulator::run_from_source(
                    &catalog,
                    source,
                    &assignment,
                    black_box(cfg),
                    DISKS,
                )
                .unwrap();
                black_box(report.responses.len())
            })
        },
    );
    // Criterion-timed: the same 10M-request generator replay across 1, 2,
    // 4 and 8 shards (8 disks round-robined, so 8 shards = one disk per
    // shard). The merged report is bit-identical whatever the count (see
    // tests/shard_equivalence.rs); what this measures is wall-clock
    // scaling, which tracks the host's core count.
    for shards in [1usize, 2, 4, 8] {
        let sharded_cfg = cfg.clone().with_shards(shards);
        group.throughput(Throughput::Elements(requests_10m as u64));
        group.bench_with_input(
            BenchmarkId::new("sharded", format!("{shards}_shards")),
            &sharded_cfg,
            |b, cfg| {
                b.iter(|| {
                    let source =
                        SyntheticSource::poisson(&catalog, RATE, requests_10m / RATE, SEED);
                    let report = Simulator::run_from_source(
                        &catalog,
                        source,
                        &assignment,
                        black_box(cfg),
                        DISKS,
                    )
                    .unwrap();
                    black_box((report.responses.len(), report.peak_disk_queue))
                })
            },
        );
    }
    // Criterion-timed: the same 10M-request generator replay with the
    // streaming completion log on in digest mode — every completion
    // canonicalised, hashed and counted without materialising any of them.
    // Measures the writer/tie-buffer overhead on the engine hot path.
    {
        let logged_cfg = cfg
            .clone()
            .with_completion_log_mode(CompletionLogMode::Digest);
        group.throughput(Throughput::Elements(requests_10m as u64));
        group.bench_with_input(
            BenchmarkId::new("completion_log", "digest_10M"),
            &logged_cfg,
            |b, cfg| {
                b.iter(|| {
                    let source =
                        SyntheticSource::poisson(&catalog, RATE, requests_10m / RATE, SEED);
                    let report = Simulator::run_from_source(
                        &catalog,
                        source,
                        &assignment,
                        black_box(cfg),
                        DISKS,
                    )
                    .unwrap();
                    black_box(report.completion_log.map(|l| l.fnv1a))
                })
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_file(&csv_path);

    // One-shot scale demonstration: 100M generator-backed requests (10M in
    // the CI quick lane), with the constant-memory story recorded next to
    // the wall time.
    let requests = if criterion::quick_mode() { 10e6 } else { 100e6 };
    let source = SyntheticSource::poisson(&catalog, RATE, requests / RATE, SEED);
    let start = std::time::Instant::now();
    let report = Simulator::run_from_source(&catalog, source, &assignment, &cfg, DISKS).unwrap();
    let dt = start.elapsed().as_secs_f64();
    println!(
        "trace_streaming/one_shot/generator_{:.0}M_requests: {:.3} s wall ({:.2} M req/s), \
         peak event-queue {} entries over {} disks, peak pending queue {} requests, \
         histogram bucket cap {} — tracked structures independent of request count",
        requests / 1e6,
        dt,
        report.responses.len() as f64 / dt / 1e6,
        report.peak_event_queue_max(),
        report.disks,
        report.peak_disk_queue,
        StreamingHistogram::max_buckets(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
