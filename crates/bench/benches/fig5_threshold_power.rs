//! Figure 5 (E6): NERSC-trace power saving at a fixed idleness threshold —
//! Pack_Disks vs random on the (shrunken) synthetic NERSC workload.

use criterion::{criterion_group, criterion_main, Criterion};
use spindown_core::{Planner, PlannerConfig};
use spindown_packing::Allocator;
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_workload::nersc::{self, NerscConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = NerscConfig::paper_scaled(40);
    let workload = nersc::generate(&cfg, 21);
    let rate = cfg.arrival_rate();
    let planner = Planner::new(PlannerConfig::default());
    let pack = planner.plan(&workload.catalog, rate).unwrap();
    let fleet = pack.disk_slots() + 1;
    let mut rnd_cfg = PlannerConfig::default();
    rnd_cfg.allocator = Allocator::RandomFixed {
        disks: fleet as u32,
        seed: 2,
    };
    let random = Planner::new(rnd_cfg).plan(&workload.catalog, rate).unwrap();

    let sim = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(1_800.0));
    let never = SimConfig::paper_default().with_threshold(ThresholdPolicy::Never);
    let saving = |assignment| {
        let e =
            Simulator::run_with_fleet(&workload.catalog, &workload.trace, assignment, &sim, fleet)
                .unwrap()
                .energy
                .total_joules();
        let e0 = Simulator::run_with_fleet(
            &workload.catalog,
            &workload.trace,
            assignment,
            &never,
            fleet,
        )
        .unwrap()
        .energy
        .total_joules();
        1.0 - e / e0
    };
    println!(
        "[fig5] threshold 0.5 h: Pack_Disk saving {:.3}, RND saving {:.3} (paper: ~0.85 vs 0.3–0.9)",
        saving(&pack.assignment),
        saving(&random.assignment)
    );

    let mut group = c.benchmark_group("fig5_threshold_power");
    group.sample_size(10);
    group.bench_function("nersc_pack_threshold_0_5h", |b| {
        b.iter(|| {
            black_box(
                Simulator::run_with_fleet(
                    &workload.catalog,
                    &workload.trace,
                    &pack.assignment,
                    &sim,
                    fleet,
                )
                .unwrap()
                .energy
                .total_joules(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
