//! Fault-runtime hot path: replay cost of consulting the `FaultRuntime`
//! at dispatch, spin-up completion and service completion, against the
//! legacy no-fault path. The `none` row is the contract that fault
//! injection is free when disabled (the engine never constructs a runtime
//! behind `FaultPlan::none()`); the active rows price the per-event draws
//! and retry bookkeeping under escalating regimes. A sparse Poisson trace
//! over a fixed 20 s threshold keeps the fleet cycling through sleep and
//! wake so every fault hook actually runs. `scripts/bench_diff.py` diffs
//! the means against `BENCH_BASELINE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_sim::metrics::MetricsMode;
use spindown_workload::{FaultPlan, FileCatalog, Trace};
use std::hint::black_box;

const FILES: usize = 512;
const DISKS: usize = 16;

fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::paper_table1(FILES, 7);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    // Sparse arrivals spread over a wide fleet: per-disk gaps beat the
    // fixed 20 s threshold, so disks sleep and wake all run long and the
    // wake-failure / retry hooks see real traffic.
    let trace = Trace::poisson(&catalog, 2.0, 5_000.0, 4242);
    // (id, spec): the id avoids `:`/`|`/`+`, which `scripts/bench_diff.py`
    // rejects from benchmark names.
    let regimes = [
        ("none", "none"),
        ("transient", "transient:p=0.05"),
        ("wakefail", "wakefail:p=0.3 | mttr=120"),
        (
            "combined",
            "transient:p=0.05 | wakefail:p=0.3 | failslow:d3:x2@0..2500 | mttr=120",
        ),
    ];

    let mut group = c.benchmark_group("fault_injection/sparse_poisson");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (id, spec) in regimes {
        let mut cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::Fixed(20.0))
            .with_metrics(MetricsMode::Histogram);
        cfg.faults = match spec {
            "none" => FaultPlan::none(),
            s => FaultPlan::parse(s).expect("valid fault spec"),
        };
        group.bench_with_input(BenchmarkId::new("replay", id), &cfg, |b, cfg| {
            b.iter(|| {
                let report = Simulator::run(&catalog, &trace, &assignment, black_box(cfg)).unwrap();
                black_box(report.energy.total_joules())
            })
        });
    }
    group.finish();

    // One-shot availability report so `cargo bench` records the damage
    // story alongside the timing story (what each regime actually costs
    // the fleet, not just the host CPU).
    for (id, spec) in regimes {
        let mut cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::Fixed(20.0))
            .with_metrics(MetricsMode::Histogram);
        cfg.faults = match spec {
            "none" => FaultPlan::none(),
            s => FaultPlan::parse(s).expect("valid fault spec"),
        };
        let report = Simulator::run(&catalog, &trace, &assignment, &cfg).unwrap();
        match report.availability {
            Some(a) => println!(
                "fault_injection/damage/{id}: availability {:.4}, {} retried, \
                 {} wake failure(s), {} crash(es), {:.0} s downtime",
                a.availability,
                a.retried,
                a.wake_failures,
                a.crashes,
                a.total_downtime_s(),
            ),
            None => println!(
                "fault_injection/damage/{id}: no fault runtime (legacy path), {:.0} J",
                report.energy.total_joules()
            ),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
