//! Cache-hierarchy hot path: replay cost of the tier walk in front of the
//! engine — no cache vs a flat 16 GB front (one per replacement policy)
//! vs a two-tier DRAM→SSD stack — on a Zipf-skewed Poisson trace where
//! the Table 1 popularity/size coupling gives the front real reuse to
//! absorb. A second group replays the two-tier stack across 1/2/4/8
//! event-loop shards with the global budget partitioned by file
//! residency. Guards the `CachePolicy` dispatch, the per-tier promote
//! path and the sharded build/merge; `scripts/bench_diff.py` diffs the
//! means against `BENCH_BASELINE.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_core::PolicyChoice;
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_sim::hierarchy::CacheChoice;
use spindown_sim::metrics::MetricsMode;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

const FILES: usize = 512;
const DISKS: usize = 8;

fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::paper_table1(FILES, 7);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    // Dense Zipf arrivals: most requests target the small hot head, so the
    // run cost is dominated by the cache lookup/admit path under test.
    let trace = Trace::poisson(&catalog, 4.0, 5_000.0, 777);
    // (id, spec): the id avoids `:`/`+`, which `scripts/bench_diff.py`
    // rejects from benchmark names to keep one-shot prints out.
    let fronts = [
        ("none", "none"),
        ("lru16", "lru:16"),
        ("slru80_16", "slru80:16"),
        ("lfu16", "lfu:16"),
        ("lru2_lru16", "lru:2+lru:16"), // DRAM front + SSD behind it
    ];

    let mut group = c.benchmark_group("cache_hierarchy/zipf_poisson");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (id, front) in fronts {
        let cache = CacheChoice::parse(front).expect("valid cache spec");
        let cfg = SimConfig::paper_default()
            .with_metrics(MetricsMode::Histogram)
            .with_cache_hierarchy(cache.hierarchy());
        group.bench_with_input(BenchmarkId::new("replay", id), &cfg, |b, cfg| {
            b.iter(|| {
                let report = Simulator::run_with_policy(
                    &catalog,
                    &trace,
                    &assignment,
                    black_box(cfg),
                    DISKS,
                    PolicyChoice::break_even().build(&cfg.disk),
                )
                .unwrap();
                black_box(report.energy.total_joules())
            })
        });
    }
    group.finish();

    // The sharded-global tier walk: the same two-tier DRAM→SSD front with
    // its byte budget partitioned across 1/2/4/8 event-loop shards (each
    // shard owns the slice covering its own disks' files — no hot-path
    // locks). Guards the partitioned build and the merge of per-tier
    // counters; the merged report is bit-identical at every count (see
    // tests/cached_shard_equivalence.rs), so this measures wall clock.
    let mut sharded_group = c.benchmark_group("cache_hierarchy/sharded");
    sharded_group.sample_size(10);
    sharded_group.throughput(Throughput::Elements(trace.len() as u64));
    for shards in [1usize, 2, 4, 8] {
        let cache = CacheChoice::parse("lru:2+lru:16").expect("valid cache spec");
        let cfg = SimConfig::paper_default()
            .with_threshold(ThresholdPolicy::BreakEven)
            .with_metrics(MetricsMode::Histogram)
            .with_cache_hierarchy(cache.hierarchy())
            .with_shards(shards);
        sharded_group.bench_with_input(
            BenchmarkId::new("lru2_lru16", format!("{shards}_shards")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let report =
                        Simulator::run(&catalog, &trace, &assignment, black_box(cfg)).unwrap();
                    black_box((report.energy.total_joules(), report.cache))
                })
            },
        );
    }
    sharded_group.finish();

    // One-shot hit-ratio report so `cargo bench` records the absorption
    // story alongside the timing story (the tier walk only earns its cost
    // when the front actually serves traffic).
    for (_, front) in fronts {
        let cache = CacheChoice::parse(front).expect("valid cache spec");
        let cfg = SimConfig::paper_default()
            .with_metrics(MetricsMode::Histogram)
            .with_cache_hierarchy(cache.hierarchy());
        let report = Simulator::run_with_policy(
            &catalog,
            &trace,
            &assignment,
            &cfg,
            DISKS,
            PolicyChoice::break_even().build(&cfg.disk),
        )
        .unwrap();
        let stats = report.cache.unwrap_or_default();
        println!(
            "cache_hierarchy/traffic/{front}: hit ratio {:.4}, {:.0} J, mean resp {:.3} s",
            stats.hit_ratio(),
            report.energy.total_joules(),
            report.responses.mean(),
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
