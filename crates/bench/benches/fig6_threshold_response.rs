//! Figure 6 (E7): NERSC-trace response times under a short vs long
//! idleness threshold (random placement needs ≥ 0.5 h to stay under 10 s in
//! the paper; Pack_Disks is threshold-insensitive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spindown_core::{Planner, PlannerConfig};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_workload::nersc::{self, NerscConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = NerscConfig::paper_scaled(40);
    let workload = nersc::generate(&cfg, 23);
    let rate = cfg.arrival_rate();
    let planner = Planner::new(PlannerConfig::default());
    let pack = planner.plan(&workload.catalog, rate).unwrap();
    let fleet = pack.disk_slots();

    for hours in [0.1, 2.0] {
        let sim = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(hours * 3600.0));
        let report = Simulator::run_with_fleet(
            &workload.catalog,
            &workload.trace,
            &pack.assignment,
            &sim,
            fleet,
        )
        .unwrap();
        println!(
            "[fig6] threshold {hours} h: Pack_Disk mean response {:.2} s",
            report.responses.mean()
        );
    }

    let mut group = c.benchmark_group("fig6_threshold_response");
    group.sample_size(10);
    for hours in [0.1, 2.0] {
        let sim = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(hours * 3600.0));
        group.bench_with_input(
            BenchmarkId::new("nersc_response_h", format!("{hours}")),
            &sim,
            |b, sim| {
                b.iter(|| {
                    black_box(
                        Simulator::run_with_fleet(
                            &workload.catalog,
                            &workload.trace,
                            &pack.assignment,
                            sim,
                            fleet,
                        )
                        .unwrap()
                        .responses
                        .mean(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
