//! Windowed-metrics overhead: the same 1M-request generator replay with
//! windows off (must cost what the legacy path costs — the collectors are
//! `None` and every hook is a no-op branch), with 60 s tumbling windows
//! on (per-window energy/response/backlog accounting on the engine hot
//! path), and windowed at 4 shards (the per-disk collectors ride the
//! existing merge). A non-stationary diurnal variant prices the
//! thinned-arrival generator against the homogeneous one. Results are
//! tracked in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_sim::MetricsMode;
use spindown_workload::{FileCatalog, RateCurve, SyntheticSource};
use std::hint::black_box;

const FILES: usize = 64;
const DISKS: usize = 8;
/// The `trace_streaming` fixture rate: 40 req/s over 8 disks of 8 MB
/// files ≈ 0.62 utilisation, so the backlog stays bounded and the timing
/// measures accounting overhead, not queue growth.
const RATE: f64 = 40.0;
const SEED: u64 = 1_000_003;
const REQUESTS: f64 = 1_000_000.0;

fn fixture() -> (FileCatalog, Assignment) {
    let catalog = FileCatalog::from_parts(vec![8_000_000; FILES], vec![1.0 / FILES as f64; FILES]);
    let mut bins: Vec<DiskBin> = (0..DISKS).map(|_| DiskBin::default()).collect();
    for file in 0..FILES {
        bins[file % DISKS].items.push(file);
    }
    (catalog, Assignment { disks: bins })
}

fn streaming_cfg() -> SimConfig {
    SimConfig::paper_default()
        .with_threshold(ThresholdPolicy::BreakEven)
        .with_metrics(MetricsMode::Histogram)
}

fn bench(c: &mut Criterion) {
    let (catalog, assignment) = fixture();
    let horizon = REQUESTS / RATE;

    let mut group = c.benchmark_group("windowed_metrics");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS as u64));

    // Windows off ≡ legacy cost: the baseline every other variant is
    // compared against (and the regression guard for the zero-cost-off
    // claim — the windowed refactor must not tax the default path).
    let variants: [(&str, SimConfig); 3] = [
        ("off", streaming_cfg()),
        ("60s", streaming_cfg().with_windows(60.0)),
        (
            "60s_4shards",
            streaming_cfg().with_windows(60.0).with_shards(4),
        ),
    ];
    for (label, cfg) in variants {
        group.bench_with_input(BenchmarkId::new("poisson_1M", label), &cfg, |b, cfg| {
            b.iter(|| {
                let source = SyntheticSource::poisson(&catalog, RATE, horizon, SEED);
                let report = Simulator::run_from_source(
                    &catalog,
                    source,
                    &assignment,
                    black_box(cfg),
                    DISKS,
                )
                .unwrap();
                black_box((report.responses.len(), report.windows.map(|w| w.rows.len())))
            })
        });
    }

    // Non-stationary diurnal arrivals via thinning, windowed: the
    // generator draws one extra uniform per accepted arrival (plus the
    // rejected candidates), so this prices the workload leg of the PR.
    let curve = RateCurve::diurnal(RATE, 0.75 * RATE, 3600.0);
    let windowed = streaming_cfg().with_windows(60.0);
    group.bench_with_input(
        BenchmarkId::new("diurnal_1M", "60s"),
        &windowed,
        |b, cfg| {
            b.iter(|| {
                let source =
                    SyntheticSource::non_stationary(&catalog, curve.clone(), horizon, SEED);
                let report = Simulator::run_from_source(
                    &catalog,
                    source,
                    &assignment,
                    black_box(cfg),
                    DISKS,
                )
                .unwrap();
                black_box(report.windows.map(|w| w.rows.len()))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
