//! The paper's §3 complexity claim (E9 in DESIGN.md): `Pack_Disks`
//! (`O(n log n)`) against the CHP reference (`O(n²)`) on identical inputs,
//! plus the greedy baselines. The two algorithms produce identical packings
//! (property-tested in `spindown-packing`), so this bench isolates the
//! data-structure improvement — the paper's contribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use spindown_packing::{baselines, chp, pack_disks, Instance, PackItem};
use std::hint::black_box;

fn uniform_instance(n: usize, rho: f64, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let items = (0..n)
        .map(|_| PackItem {
            s: rng.random::<f64>() * rho,
            l: rng.random::<f64>() * rho,
        })
        .collect();
    Instance::new(items).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing_scaling");
    group.sample_size(10);
    for &n in &[500usize, 1_000, 2_000, 4_000, 8_000] {
        let inst = uniform_instance(n, 0.2, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pack_disks", n), &inst, |b, inst| {
            b.iter(|| black_box(pack_disks(black_box(inst))))
        });
        // CHP is quadratic; skip the largest sizes to keep wall time sane.
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("chp_n2", n), &inst, |b, inst| {
                b.iter(|| black_box(chp::pack_chp(black_box(inst))))
            });
        }
        group.bench_with_input(BenchmarkId::new("ffd", n), &inst, |b, inst| {
            b.iter(|| black_box(baselines::first_fit_decreasing(black_box(inst))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
