//! Figure 3 (E4): one response-ratio grid point — Pack_Disks vs random at
//! R = 8, L = 80 % (the regime where the paper shows ratios approaching
//! 2.5–4). Prints the reproduced ratio, then times the measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use spindown_core::{compare, Planner, PlannerConfig};
use spindown_packing::Allocator;
use spindown_workload::{FileCatalog, Trace};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let catalog = FileCatalog::paper_table1(40_000, 0);
    let rate = 8.0;
    let trace = Trace::poisson(&catalog, rate, 400.0, 4);
    let mut pack_cfg = PlannerConfig::default();
    pack_cfg.load_constraint = 0.8;
    let planner = Planner::new(pack_cfg.clone());
    let mut rnd_cfg = pack_cfg;
    rnd_cfg.allocator = Allocator::RandomFixed {
        disks: 100,
        seed: 6,
    };
    let rnd_planner = Planner::new(rnd_cfg);

    let pack = planner.plan(&catalog, rate).unwrap();
    let random = rnd_planner.plan(&catalog, rate).unwrap();
    let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(100)).unwrap();
    println!(
        "[fig3] R={rate}, L=0.8: response ratio {:.3} (paper: 0.5–2.5, rising with R and L)",
        cmp.response_ratio().unwrap_or(f64::NAN)
    );

    let mut group = c.benchmark_group("fig3_response_ratio");
    group.sample_size(10);
    group.bench_function("grid_point_r8_l80", |b| {
        b.iter(|| {
            let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(100)).unwrap();
            black_box(cmp.response_ratio())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
