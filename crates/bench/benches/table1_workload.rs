//! Table 1 (E1): cost of generating the paper's synthetic workload —
//! catalog construction, Zipf sampling and Poisson trace generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use spindown_workload::{FileCatalog, Trace, ZipfDistribution};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_workload");
    group.sample_size(20);

    group.bench_function("catalog_40k", |b| {
        b.iter(|| black_box(FileCatalog::paper_table1(black_box(40_000), 0)))
    });

    let zipf = ZipfDistribution::paper_popularity(40_000);
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("zipf_sample_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += zipf.sample(&mut rng);
            }
            black_box(acc)
        })
    });

    let catalog = FileCatalog::paper_table1(40_000, 0);
    group.throughput(Throughput::Elements(4_000));
    group.bench_function("poisson_trace_r1_4000s", |b| {
        b.iter(|| black_box(Trace::poisson(&catalog, 1.0, 4_000.0, 9)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
