//! Capacity planning — the paper's secondary use case: "computing the
//! percentage of disks that must be maintained on-line to meet file access
//! response time under budget constraints" (§1) and "obtaining reliable
//! estimates on the size of a disk farm needed to support a given workload"
//! (§6).

use spindown_disk::DiskSpec;

use crate::mg1::utilisation_for_response;

/// Disks needed to *store* `total_bytes` on drives of `spec`.
pub fn disks_for_storage(total_bytes: u64, spec: &DiskSpec) -> usize {
    (total_bytes as f64 / spec.capacity_bytes as f64).ceil() as usize
}

/// Disks needed to *carry* an offered load of `total_load` disk-seconds per
/// second when each disk may be filled to utilisation `load_cap ∈ (0, 1]`.
pub fn disks_for_load(total_load: f64, load_cap: f64) -> usize {
    assert!(load_cap > 0.0 && load_cap <= 1.0, "load cap in (0,1]");
    assert!(total_load >= 0.0);
    (total_load / load_cap).ceil() as usize
}

/// A complete sizing answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarmPlan {
    /// Disks needed by raw capacity.
    pub by_storage: usize,
    /// Disks needed by offered load under the derived utilisation cap.
    pub by_load: usize,
    /// The M/G/1-derived per-disk utilisation cap meeting the response
    /// budget.
    pub load_cap: f64,
}

impl FarmPlan {
    /// The binding requirement: `max(by_storage, by_load)`.
    pub fn disks(&self) -> usize {
        self.by_storage.max(self.by_load)
    }

    /// Fraction of a fleet of `fleet` disks that must stay spinning to carry
    /// the load (`None` if the fleet is too small outright).
    pub fn online_fraction(&self, fleet: usize) -> Option<f64> {
        if fleet < self.disks() {
            return None;
        }
        Some(self.by_load as f64 / fleet as f64)
    }
}

/// Size a disk farm: storage footprint, offered load (arrival rate × mean
/// service), service-time moments, and a mean-response budget.
///
/// Returns `None` when the budget is below the bare service time (no
/// utilisation can meet it).
pub fn plan_farm(
    total_bytes: u64,
    arrival_rate: f64,
    mean_service: f64,
    second_moment: f64,
    response_budget: f64,
    spec: &DiskSpec,
) -> Option<FarmPlan> {
    let load_cap = utilisation_for_response(mean_service, second_moment, response_budget)?;
    if load_cap <= 0.0 {
        return None;
    }
    let total_load = arrival_rate * mean_service;
    Some(FarmPlan {
        by_storage: disks_for_storage(total_bytes, spec),
        by_load: disks_for_load(total_load, load_cap),
        load_cap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_disk::{GB, TB};

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn storage_sizing_matches_paper_nersc_example() {
        // §5.1: ~48 TB of requested files need ≈ 95–97 drives of 500 GB.
        let disks = disks_for_storage(48_215 * GB, &spec());
        assert!((95..=97).contains(&disks), "{disks}");
    }

    #[test]
    fn load_sizing() {
        assert_eq!(disks_for_load(18.0, 0.6), 30);
        assert_eq!(disks_for_load(0.0, 0.5), 0);
        assert_eq!(disks_for_load(0.1, 1.0), 1);
    }

    #[test]
    fn farm_plan_binding_constraint() {
        // Service ≈ 7.56 s (544 MB at 72 MB/s), modest variance.
        let es = 7.56;
        let es2 = 2.0 * es * es;
        let plan = plan_farm(13 * TB, 2.0, es, es2, 30.0, &spec()).unwrap();
        assert_eq!(plan.by_storage, 26);
        assert!(plan.load_cap > 0.0 && plan.load_cap < 1.0);
        // offered load = 15.12 disk-seconds/s → by_load well above 15
        assert!(plan.by_load >= 16);
        assert_eq!(plan.disks(), plan.by_storage.max(plan.by_load));
    }

    #[test]
    fn tighter_budget_needs_more_disks() {
        let es = 7.56;
        let es2 = 2.0 * es * es;
        let tight = plan_farm(TB, 2.0, es, es2, 10.0, &spec()).unwrap();
        let loose = plan_farm(TB, 2.0, es, es2, 120.0, &spec()).unwrap();
        assert!(tight.by_load >= loose.by_load);
        assert!(tight.load_cap < loose.load_cap);
    }

    #[test]
    fn impossible_budget_is_none() {
        assert!(plan_farm(TB, 1.0, 7.56, 114.0, 5.0, &spec()).is_none());
    }

    #[test]
    fn online_fraction() {
        let plan = FarmPlan {
            by_storage: 90,
            by_load: 30,
            load_cap: 0.6,
        };
        assert_eq!(plan.disks(), 90);
        assert!((plan.online_fraction(100).unwrap() - 0.3).abs() < 1e-12);
        assert_eq!(plan.online_fraction(50), None);
    }

    #[test]
    #[should_panic(expected = "load cap in (0,1]")]
    fn zero_load_cap_panics() {
        let _ = disks_for_load(1.0, 0.0);
    }
}
