//! Trade-off curve utilities: Pareto filtering and knee detection for
//! power/response curves (Figure 4's output is the canonical input).
//!
//! The paper's operators must pick an operating point on the Figure 4
//! curve; [`knee_index`] automates the usual choice — the point of maximum
//! distance from the chord between the curve's endpoints (the "kneedle"
//! construction), which balances diminishing power returns against
//! accelerating response cost.

/// One operating point on a trade-off curve: a control value and the two
/// objectives (both to be *minimised*, e.g. watts and seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The control setting (e.g. the load constraint L).
    pub control: f64,
    /// First objective (e.g. mean power, W).
    pub cost_a: f64,
    /// Second objective (e.g. mean response, s).
    pub cost_b: f64,
}

/// Indices of the Pareto-optimal points (no other point is at least as good
/// in both objectives and better in one). Preserves input order.
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.cost_a <= points[i].cost_a
                    && q.cost_b <= points[i].cost_b
                    && (q.cost_a < points[i].cost_a || q.cost_b < points[i].cost_b)
            })
        })
        .collect()
}

/// The knee of a trade-off curve: the index maximising the perpendicular
/// distance to the chord between the first and last point, after min-max
/// normalising both objectives (so units don't matter). `None` for fewer
/// than 3 points or a degenerate (flat) curve.
pub fn knee_index(points: &[TradeoffPoint]) -> Option<usize> {
    if points.len() < 3 {
        return None;
    }
    let (min_a, max_a) = min_max(points.iter().map(|p| p.cost_a))?;
    let (min_b, max_b) = min_max(points.iter().map(|p| p.cost_b))?;
    if max_a - min_a < 1e-12 || max_b - min_b < 1e-12 {
        return None;
    }
    let norm = |p: &TradeoffPoint| {
        (
            (p.cost_a - min_a) / (max_a - min_a),
            (p.cost_b - min_b) / (max_b - min_b),
        )
    };
    let (x0, y0) = norm(&points[0]);
    let (x1, y1) = norm(points.last().expect("non-empty"));
    let chord_len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
    if chord_len < 1e-12 {
        return None;
    }
    let mut best = (0usize, -1.0f64);
    for (i, p) in points.iter().enumerate() {
        let (x, y) = norm(p);
        // distance from (x, y) to the chord through (x0,y0)-(x1,y1)
        let d = ((x1 - x0) * (y0 - y) - (x0 - x) * (y1 - y0)).abs() / chord_len;
        if d > best.1 {
            best = (i, d);
        }
    }
    Some(best.0)
}

fn min_max(values: impl Iterator<Item = f64>) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut any = false;
    for v in values {
        if !v.is_finite() {
            return None;
        }
        lo = lo.min(v);
        hi = hi.max(v);
        any = true;
    }
    any.then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(control: f64, a: f64, b: f64) -> TradeoffPoint {
        TradeoffPoint {
            control,
            cost_a: a,
            cost_b: b,
        }
    }

    #[test]
    fn pareto_filters_dominated_points() {
        let pts = vec![
            p(0.4, 700.0, 6.0),
            p(0.6, 500.0, 8.0),
            p(0.7, 520.0, 9.0), // dominated by the 0.6 point
            p(0.9, 400.0, 19.0),
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn pareto_keeps_duplicates_that_tie() {
        let pts = vec![p(0.1, 1.0, 1.0), p(0.2, 1.0, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn knee_of_an_l_shaped_curve() {
        // Sharp L: fast descent then flat — knee at the corner (index 2).
        let pts = vec![
            p(0.0, 100.0, 0.0),
            p(1.0, 50.0, 1.0),
            p(2.0, 10.0, 2.0),
            p(3.0, 9.0, 30.0),
            p(4.0, 8.0, 60.0),
        ];
        assert_eq!(knee_index(&pts), Some(2));
    }

    #[test]
    fn knee_on_fig4_like_data() {
        // Shape from the measured Figure 4: power falls, response rises
        // slowly then accelerates past L ≈ 0.75.
        let data = [
            (0.40, 676.7, 6.21),
            (0.50, 574.6, 7.14),
            (0.60, 513.9, 7.03),
            (0.70, 469.1, 8.78),
            (0.75, 447.8, 10.39),
            (0.80, 437.1, 12.93),
            (0.85, 422.2, 16.00),
            (0.90, 413.4, 19.06),
        ];
        let pts: Vec<TradeoffPoint> = data.iter().map(|&(l, w, r)| p(l, w, r)).collect();
        let knee = knee_index(&pts).unwrap();
        let l = pts[knee].control;
        assert!(
            (0.55..=0.80).contains(&l),
            "knee at L={l}, expected in the elbow region"
        );
    }

    #[test]
    fn degenerate_curves_have_no_knee() {
        assert_eq!(knee_index(&[]), None);
        assert_eq!(knee_index(&[p(0.0, 1.0, 1.0), p(1.0, 2.0, 2.0)]), None);
        // flat in one objective
        let flat = vec![p(0.0, 5.0, 1.0), p(1.0, 5.0, 2.0), p(2.0, 5.0, 3.0)];
        assert_eq!(knee_index(&flat), None);
    }

    #[test]
    fn straight_line_knee_is_weak_but_defined() {
        let line: Vec<TradeoffPoint> = (0..5)
            .map(|i| p(i as f64, i as f64, 4.0 - i as f64))
            .collect();
        // all distances ~0; any index is acceptable, must not panic
        assert!(knee_index(&line).is_some());
    }
}
