//! Streaming statistics: Welford's algorithm and simple histograms.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance (Welford 1962).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    /// Second raw moment accumulator (for E[X²], used by M/G/1).
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "sample must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Second raw moment `E[X²]` (0 when empty).
    pub fn second_moment(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_sq / self.n as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator (Chan's parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width histogram over `[lo, hi)` with out-of-range clamping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Histogram with `bins ≥ 1` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins >= 1 && hi > lo, "degenerate histogram");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Record a sample (clamped into the outermost bins).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        let e2: f64 = xs.iter().map(|x| x * x).sum::<f64>() / 8.0;
        assert!((w.second_moment() - e2).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn empty_welford_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.second_moment(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99, -3.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[3, 1, 1, 0, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "degenerate histogram")]
    fn degenerate_histogram_panics() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "sample must be finite")]
    fn welford_rejects_nan() {
        Welford::new().push(f64::NAN);
    }
}
