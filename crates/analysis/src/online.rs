//! Online power-policy adapters: the §2 dynamic-power-management theory of
//! [`crate::ski_rental`] and [`crate::dpm`], packaged as live
//! [`PowerPolicy`] implementations the simulator can run.
//!
//! Two policies are provided:
//!
//! - [`SkiRentalPolicy`] — the optimal *randomised* ski-rental policy:
//!   every idle period draws a fresh spin-down threshold from the density
//!   `f(t) = e^{t/β}/(β(e−1))` on `[0, β]`, which is
//!   `e/(e−1) ≈ 1.582`-competitive in expectation (beating every
//!   deterministic threshold's factor-2 bound). Deterministic per seed.
//! - [`AdaptivePolicy`] — an exponential-average idle-period predictor
//!   (Hwang & Wu style): it tracks per-disk idle-gap lengths
//!   `Î_{n+1} = α·i_n + (1−α)·Î_n` and spins down *immediately* when the
//!   predicted gap already exceeds the break-even time, falling back to the
//!   classical 2-competitive break-even timeout when it does not.
//!
//! Both derive their cost scale β from the drive constants via
//! [`dpm::classical_threshold`] (`β = E_over / P_idle`).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use spindown_disk::DiskSpec;
use spindown_sim::policy::PowerPolicy;

use crate::{dpm, ski_rental};

/// The e/(e−1)-competitive randomised ski-rental spin-down policy.
#[derive(Debug, Clone)]
pub struct SkiRentalPolicy {
    beta_s: f64,
    rng: SmallRng,
    seed: u64,
}

impl SkiRentalPolicy {
    /// Policy with an explicit buy cost `beta_s` (seconds of idle power
    /// equivalent to one spin-down/up cycle) and RNG seed.
    pub fn new(beta_s: f64, seed: u64) -> Self {
        assert!(beta_s > 0.0 && beta_s.is_finite(), "bad beta {beta_s}");
        SkiRentalPolicy {
            beta_s,
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derive β from a drive's constants (`β = E_over / P_idle`).
    pub fn for_drive(spec: &DiskSpec, seed: u64) -> Self {
        Self::new(dpm::classical_threshold(spec), seed)
    }

    /// The configured buy cost, seconds.
    pub fn beta_s(&self) -> f64 {
        self.beta_s
    }
}

impl PowerPolicy for SkiRentalPolicy {
    fn name(&self) -> String {
        format!("ski_rental(beta={:.1}s, seed={})", self.beta_s, self.seed)
    }

    fn idle_started(&mut self, _disk: usize, _t: f64) -> Option<f64> {
        let u: f64 = self.rng.random();
        Some(ski_rental::sample_threshold(self.beta_s, u))
    }
}

/// Exponential-average idle-period predictor with a break-even watchdog.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    alpha: f64,
    break_even_s: f64,
    /// Per-disk predicted idle-gap length, seconds (0 until observed).
    predicted: Vec<f64>,
    /// Per-disk start of the current idle period, if one is open.
    idle_since: Vec<Option<f64>>,
}

impl AdaptivePolicy {
    /// Policy with smoothing factor `alpha ∈ (0, 1]` and an explicit
    /// break-even time.
    pub fn new(alpha: f64, break_even_s: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        assert!(
            break_even_s > 0.0 && break_even_s.is_finite(),
            "bad break-even {break_even_s}"
        );
        AdaptivePolicy {
            alpha,
            break_even_s,
            predicted: Vec::new(),
            idle_since: Vec::new(),
        }
    }

    /// Derive the break-even watchdog from a drive's constants.
    pub fn for_drive(spec: &DiskSpec, alpha: f64) -> Self {
        Self::new(alpha, dpm::classical_threshold(spec))
    }

    fn ensure_disk(&mut self, disk: usize) {
        if disk >= self.predicted.len() {
            self.predicted.resize(disk + 1, 0.0);
            self.idle_since.resize(disk + 1, None);
        }
    }

    /// Current prediction for one disk (0 before any observation).
    pub fn predicted_gap_s(&self, disk: usize) -> f64 {
        self.predicted.get(disk).copied().unwrap_or(0.0)
    }
}

impl PowerPolicy for AdaptivePolicy {
    fn name(&self) -> String {
        format!(
            "adaptive(alpha={:.2}, be={:.1}s)",
            self.alpha, self.break_even_s
        )
    }

    fn idle_started(&mut self, disk: usize, t: f64) -> Option<f64> {
        self.ensure_disk(disk);
        self.idle_since[disk] = Some(t);
        if self.predicted[disk] >= self.break_even_s {
            // Predicted long gap: race to sleep.
            Some(0.0)
        } else {
            // Predicted short gap: keep spinning, but retain the classical
            // 2-competitive safety net in case the prediction is wrong.
            Some(self.break_even_s)
        }
    }

    fn request_arrived(&mut self, disk: usize, t: f64) {
        self.ensure_disk(disk);
        if let Some(start) = self.idle_since[disk].take() {
            let gap = (t - start).max(0.0);
            self.predicted[disk] = self.alpha * gap + (1.0 - self.alpha) * self.predicted[disk];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn ski_rental_draws_fresh_thresholds_within_beta() {
        let mut p = SkiRentalPolicy::for_drive(&spec(), 42);
        let beta = p.beta_s();
        assert!((beta - 48.7).abs() < 0.1, "beta {beta}");
        let draws: Vec<f64> = (0..50)
            .map(|i| p.idle_started(0, i as f64).unwrap())
            .collect();
        for &d in &draws {
            assert!((0.0..=beta).contains(&d), "draw {d}");
        }
        // Draws differ (randomised, not a fixed threshold).
        assert!(draws.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
    }

    #[test]
    fn ski_rental_is_deterministic_per_seed() {
        let mut a = SkiRentalPolicy::for_drive(&spec(), 7);
        let mut b = SkiRentalPolicy::for_drive(&spec(), 7);
        for i in 0..100 {
            assert_eq!(a.idle_started(0, i as f64), b.idle_started(0, i as f64));
        }
        let mut c = SkiRentalPolicy::for_drive(&spec(), 8);
        let different = (0..20).any(|i| a.idle_started(0, i as f64) != c.idle_started(0, i as f64));
        assert!(different, "distinct seeds must give distinct streams");
    }

    #[test]
    fn ski_rental_mean_draw_matches_theory() {
        // E[τ] = β²/(β(e−1)) = β/(e−1).
        let beta = 10.0;
        let mut p = SkiRentalPolicy::new(beta, 3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| p.idle_started(0, i as f64).unwrap())
            .sum::<f64>()
            / n as f64;
        let expect = beta / (std::f64::consts::E - 1.0);
        assert!(
            (mean - expect).abs() < 0.1,
            "mean draw {mean} vs theory {expect}"
        );
    }

    #[test]
    fn adaptive_starts_conservative_then_races_after_long_gaps() {
        let spec = spec();
        let be = dpm::classical_threshold(&spec);
        let mut p = AdaptivePolicy::for_drive(&spec, 0.5);
        // No history: break-even timeout, not an immediate spin-down.
        assert_eq!(p.idle_started(0, 0.0), Some(be));
        // A long observed gap (10× break-even) flips the prediction.
        p.request_arrived(0, 10.0 * be);
        assert!(p.predicted_gap_s(0) > be);
        assert_eq!(p.idle_started(0, 10.0 * be + 1.0), Some(0.0));
    }

    #[test]
    fn adaptive_learns_short_gaps_back_down() {
        let mut p = AdaptivePolicy::new(0.5, 50.0);
        // One huge gap, then a run of tiny ones: prediction must decay
        // below break-even and the policy must stop racing to sleep.
        p.idle_started(0, 0.0);
        p.request_arrived(0, 1000.0);
        assert_eq!(p.idle_started(0, 1000.0), Some(0.0));
        let mut t = 1000.0;
        for _ in 0..8 {
            p.request_arrived(0, t + 1.0); // 1 s gaps
            t += 1.0;
            p.idle_started(0, t);
        }
        assert!(p.predicted_gap_s(0) < 50.0, "pred {}", p.predicted_gap_s(0));
        assert_eq!(p.idle_started(0, t), Some(50.0));
    }

    #[test]
    fn adaptive_tracks_disks_independently() {
        let mut p = AdaptivePolicy::new(1.0, 50.0);
        p.idle_started(0, 0.0);
        p.idle_started(5, 0.0);
        p.request_arrived(0, 500.0);
        p.request_arrived(5, 2.0);
        assert!(p.predicted_gap_s(0) > 50.0);
        assert!(p.predicted_gap_s(5) < 50.0);
        assert_eq!(p.idle_started(0, 500.0), Some(0.0));
        assert_eq!(p.idle_started(5, 500.0), Some(50.0));
    }

    #[test]
    fn adaptive_ignores_arrivals_while_busy() {
        let mut p = AdaptivePolicy::new(1.0, 50.0);
        p.idle_started(0, 0.0);
        p.request_arrived(0, 10.0); // closes the gap: 10 s
        p.request_arrived(0, 11.0); // busy-time arrival: no open gap
        assert!((p.predicted_gap_s(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adaptive_rejects_bad_alpha() {
        let _ = AdaptivePolicy::new(0.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "bad beta")]
    fn ski_rental_rejects_bad_beta() {
        let _ = SkiRentalPolicy::new(0.0, 1);
    }
}
