//! Online power-policy adapters: the §2 dynamic-power-management theory of
//! [`crate::ski_rental`] and [`crate::dpm`], packaged as live
//! [`PowerPolicy`] implementations the simulator can run.
//!
//! Four policies are provided:
//!
//! - [`SkiRentalPolicy`] — the optimal *randomised* two-decision policy:
//!   every idle period draws a fresh descent threshold from the density
//!   `f(t) = e^{t/β}/(β(e−1))` on `[0, β]`, which is
//!   `e/(e−1) ≈ 1.582`-competitive in expectation (beating every
//!   deterministic threshold's factor-2 bound). Deterministic per seed;
//!   descends straight to the deepest level.
//! - [`AdaptivePolicy`] — an exponential-average idle-period predictor
//!   (Hwang & Wu style): it tracks per-disk idle-gap lengths
//!   `Î_{n+1} = α·i_n + (1−α)·Î_n` and descends *immediately* when the
//!   predicted gap already exceeds the break-even time, falling back to the
//!   classical 2-competitive break-even timeout when it does not.
//! - [`EnvelopeDescentPolicy`] — the deterministic multi-state
//!   lower-envelope strategy (Irani, Shukla & Gupta): descend into level
//!   `l` when total idle time reaches the intersection `T_l` of the
//!   per-level cost lines ([`spindown_disk::envelope_descent_times`]);
//!   2-competitive against the offline lower envelope. On a two-state
//!   ladder this is exactly the break-even timeout.
//! - [`LowerEnvelopePolicy`] — the *probability-based* multi-state
//!   strategy of the same paper: it keeps a sliding window of recently
//!   observed idle-gap lengths per disk and, at each idle start, places
//!   every per-level descent threshold where the *expected* cost over the
//!   empirical gap distribution is minimised, falling back to the
//!   deterministic envelope schedule until enough gaps have been observed.
//!
//! The per-level expected-cost minimisation decomposes: descending from
//! level `l − 1` to `l` at threshold `τ` changes the cost of a gap `g`
//! only when `g > τ`, by `ΔP_l·(β_l − (g − τ))` where `β_l` is the
//! pairwise break-even. The optimal `τ` therefore minimises
//! `f(τ) = Σ_{g_i > τ} (β_l + τ − g_i)` independently per level, and the
//! minimum lies at `τ = 0` or just above a sample point — a closed
//! candidate set the policy scans exactly. Thresholds are projected to be
//! non-decreasing with depth (a deeper level cannot be reached before a
//! shallower one).

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use spindown_disk::{envelope_descent_times, DiskSpec};
use spindown_sim::policy::{DescentStep, PowerPolicy};

use crate::{dpm, ski_rental};

/// Spread constant mixing a disk id into the base seed (the 64-bit golden
/// ratio, as used by splitmix64) so per-disk streams are decorrelated.
const DISK_SEED_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// The e/(e−1)-competitive randomised ski-rental spin-down policy.
///
/// Each disk draws from its own RNG stream, seeded from the policy seed
/// and the *global* disk id, so a disk's threshold sequence depends only
/// on its own idle history — a sharded replay (which partitions the
/// `settled` callbacks across per-shard policy clones) draws exactly the
/// same thresholds as the unsharded run. Disk 0's stream is seeded from
/// the bare policy seed, matching the legacy shared-stream behaviour on
/// single-disk fleets.
#[derive(Debug, Clone)]
pub struct SkiRentalPolicy {
    beta_s: f64,
    seed: u64,
    /// Per-disk streams, lazily grown to the highest disk id seen.
    rngs: Vec<SmallRng>,
}

impl SkiRentalPolicy {
    /// Policy with an explicit buy cost `beta_s` (seconds of idle power
    /// equivalent to one spin-down/up cycle) and RNG seed.
    pub fn new(beta_s: f64, seed: u64) -> Self {
        assert!(beta_s > 0.0 && beta_s.is_finite(), "bad beta {beta_s}");
        SkiRentalPolicy {
            beta_s,
            seed,
            rngs: Vec::new(),
        }
    }

    /// Derive β from a drive's constants (`β = E_over / P_idle`).
    pub fn for_drive(spec: &DiskSpec, seed: u64) -> Self {
        Self::new(dpm::classical_threshold(spec), seed)
    }

    /// The configured buy cost, seconds.
    pub fn beta_s(&self) -> f64 {
        self.beta_s
    }

    fn rng_for(&mut self, disk: usize) -> &mut SmallRng {
        while self.rngs.len() <= disk {
            let d = self.rngs.len() as u64;
            self.rngs.push(SmallRng::seed_from_u64(
                self.seed.wrapping_add(d.wrapping_mul(DISK_SEED_SPREAD)),
            ));
        }
        &mut self.rngs[disk]
    }

    /// The threshold `disk` would draw for its next idle period (consumes
    /// the draw — test/inspection helper).
    pub fn draw_threshold(&mut self, disk: usize) -> f64 {
        let beta = self.beta_s;
        let u: f64 = self.rng_for(disk).random();
        ski_rental::sample_threshold(beta, u)
    }
}

impl PowerPolicy for SkiRentalPolicy {
    fn name(&self) -> String {
        format!("ski_rental(beta={:.1}s, seed={})", self.beta_s, self.seed)
    }

    fn settled(&mut self, disk: usize, level: u8, _t: f64) -> Option<DescentStep> {
        if level > 0 {
            return None;
        }
        Some(DescentStep::to_deepest(self.draw_threshold(disk)))
    }
}

/// Exponential-average idle-period predictor with a break-even watchdog.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    alpha: f64,
    break_even_s: f64,
    /// Per-disk predicted idle-gap length, seconds (0 until observed).
    predicted: Vec<f64>,
    /// Per-disk start of the current idle period, if one is open.
    idle_since: Vec<Option<f64>>,
}

impl AdaptivePolicy {
    /// Policy with smoothing factor `alpha ∈ (0, 1]` and an explicit
    /// break-even time.
    pub fn new(alpha: f64, break_even_s: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        assert!(
            break_even_s > 0.0 && break_even_s.is_finite(),
            "bad break-even {break_even_s}"
        );
        AdaptivePolicy {
            alpha,
            break_even_s,
            predicted: Vec::new(),
            idle_since: Vec::new(),
        }
    }

    /// Derive the break-even watchdog from a drive's constants.
    pub fn for_drive(spec: &DiskSpec, alpha: f64) -> Self {
        Self::new(alpha, dpm::classical_threshold(spec))
    }

    fn ensure_disk(&mut self, disk: usize) {
        if disk >= self.predicted.len() {
            self.predicted.resize(disk + 1, 0.0);
            self.idle_since.resize(disk + 1, None);
        }
    }

    /// Current prediction for one disk (0 before any observation).
    pub fn predicted_gap_s(&self, disk: usize) -> f64 {
        self.predicted.get(disk).copied().unwrap_or(0.0)
    }
}

impl PowerPolicy for AdaptivePolicy {
    fn name(&self) -> String {
        format!(
            "adaptive(alpha={:.2}, be={:.1}s)",
            self.alpha, self.break_even_s
        )
    }

    fn settled(&mut self, disk: usize, level: u8, t: f64) -> Option<DescentStep> {
        if level > 0 {
            return None;
        }
        self.ensure_disk(disk);
        self.idle_since[disk] = Some(t);
        if self.predicted[disk] >= self.break_even_s {
            // Predicted long gap: race to sleep.
            Some(DescentStep::to_deepest(0.0))
        } else {
            // Predicted short gap: keep spinning, but retain the classical
            // 2-competitive safety net in case the prediction is wrong.
            Some(DescentStep::to_deepest(self.break_even_s))
        }
    }

    fn request_arrived(&mut self, disk: usize, t: f64) {
        self.ensure_disk(disk);
        if let Some(start) = self.idle_since[disk].take() {
            let gap = (t - start).max(0.0);
            self.predicted[disk] = self.alpha * gap + (1.0 - self.alpha) * self.predicted[disk];
        }
    }
}

/// The deterministic multi-state lower-envelope strategy: descend into
/// level `l` once total idle time reaches the envelope intersection `T_l`
/// — entry transitions consume part of that budget, so the rest at each
/// settled level is `T_{l+1}` minus the idle time already elapsed
/// (clamped at 0), exactly the schedule [`crate::dpm::envelope_gap_cost`]
/// models and the cold-start fallback of [`LowerEnvelopePolicy`] runs.
/// 2-competitive (Irani, Shukla & Gupta); the break-even timeout of the
/// two-state ladder is its one-level special case.
#[derive(Debug, Clone)]
pub struct EnvelopeDescentPolicy {
    /// Absolute descent times from idle start, `times[l - 1]` = level `l`.
    times: Vec<f64>,
    /// Per-disk start of the open idle period.
    idle_since: Vec<f64>,
}

impl EnvelopeDescentPolicy {
    /// Build the schedule from a drive's ladder.
    pub fn for_drive(spec: &DiskSpec) -> Self {
        EnvelopeDescentPolicy {
            times: envelope_descent_times(&spec.power_ladder()),
            idle_since: Vec::new(),
        }
    }

    /// The envelope descent times, seconds from idle start.
    pub fn times(&self) -> &[f64] {
        &self.times
    }
}

impl PowerPolicy for EnvelopeDescentPolicy {
    fn name(&self) -> String {
        format!("envelope_descent({} levels)", self.times.len() + 1)
    }

    fn settled(&mut self, disk: usize, level: u8, t: f64) -> Option<DescentStep> {
        if disk >= self.idle_since.len() {
            self.idle_since.resize(disk + 1, t);
        }
        if level == 0 {
            self.idle_since[disk] = t;
        }
        let tau = *self.times.get(level as usize)?;
        let elapsed = t - self.idle_since[disk];
        Some(DescentStep::to_level((tau - elapsed).max(0.0), level + 1))
    }
}

/// How many observed gaps the probability-based policy needs per disk
/// before it trusts the empirical distribution over the deterministic
/// envelope fallback.
const MIN_SAMPLES: usize = 8;

/// The probability-based multi-state lower-envelope policy (Irani, Shukla
/// & Gupta): per-level descent thresholds placed to minimise expected cost
/// over the empirical distribution of recently observed idle gaps.
#[derive(Debug, Clone)]
pub struct LowerEnvelopePolicy {
    /// Pairwise break-even `β_l` for descending from level `l − 1` to `l`
    /// (`betas[l - 1]`).
    betas: Vec<f64>,
    /// Deterministic envelope fallback, absolute from idle start.
    envelope: Vec<f64>,
    /// Sliding-window length for observed gaps.
    window: usize,
    /// Per-disk recent idle-gap lengths.
    gaps: Vec<VecDeque<f64>>,
    /// Per-disk start of the open idle period, if any.
    idle_since: Vec<Option<f64>>,
    /// Per-disk planned descent thresholds for the current idle period,
    /// absolute from idle start (`f64::INFINITY` = hold).
    plan: Vec<Vec<f64>>,
}

impl LowerEnvelopePolicy {
    /// Build for a drive, remembering up to `window` recent gaps per disk.
    pub fn for_drive(spec: &DiskSpec, window: usize) -> Self {
        assert!(window >= MIN_SAMPLES, "window {window} < {MIN_SAMPLES}");
        let ladder = spec.power_ladder();
        let betas: Vec<f64> = (1..ladder.len())
            .map(|l| ladder.pairwise_break_even_s(l))
            .collect();
        LowerEnvelopePolicy {
            betas,
            envelope: envelope_descent_times(&ladder),
            window,
            gaps: Vec::new(),
            idle_since: Vec::new(),
            plan: Vec::new(),
        }
    }

    fn ensure_disk(&mut self, disk: usize) {
        if disk >= self.gaps.len() {
            self.gaps.resize_with(disk + 1, VecDeque::new);
            self.idle_since.resize(disk + 1, None);
            self.plan.resize_with(disk + 1, Vec::new);
        }
    }

    /// The expected-cost-minimising threshold for pairwise break-even
    /// `beta` over `sorted` ascending gap samples: the `τ` minimising
    /// `f(τ) = Σ_{g_i > τ} (beta + τ − g_i)`, restricted to the candidate
    /// set `{0} ∪ {g_i} ∪ {hold}` where the piecewise-linear minimum must
    /// lie. Returns `f64::INFINITY` when holding (never descending) wins.
    fn best_threshold(beta: f64, sorted: &[f64]) -> f64 {
        let n = sorted.len();
        let total: f64 = sorted.iter().sum();
        let mut best_tau = f64::INFINITY;
        let mut best_cost = 0.0; // holding (never descending) costs nothing extra.
        let mut consider = |tau: f64, count_gt: usize, sum_gt: f64| {
            let cost = count_gt as f64 * (beta + tau) - sum_gt;
            if cost < best_cost - 1e-12 {
                best_cost = cost;
                best_tau = tau;
            }
        };
        // Candidate τ = 0 (race to sleep), then τ = each distinct sample
        // (descend exactly as a gap of that length would have ended) —
        // the piecewise-linear expectation attains its minimum there.
        consider(0.0, n, total);
        let mut i = 0;
        let mut prefix = 0.0; // sum of samples ≤ the candidate
        while i < n {
            let g = sorted[i];
            while i < n && sorted[i] == g {
                prefix += sorted[i];
                i += 1;
            }
            consider(g, n - i, total - prefix);
        }
        best_tau
    }

    /// Plan the absolute descent thresholds for one idle period from the
    /// disk's observed gaps (or the envelope fallback), projected
    /// non-decreasing with depth.
    fn plan_thresholds(&self, disk: usize) -> Vec<f64> {
        let samples = &self.gaps[disk];
        if samples.len() < MIN_SAMPLES {
            return self.envelope.clone();
        }
        let mut sorted: Vec<f64> = samples.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
        let mut plan: Vec<f64> = self
            .betas
            .iter()
            .map(|&beta| Self::best_threshold(beta, &sorted))
            .collect();
        // A deeper level cannot be reached before a shallower one.
        for l in 1..plan.len() {
            plan[l] = plan[l].max(plan[l - 1]);
        }
        plan
    }

    /// Observed gaps for `disk` (test/inspection helper).
    pub fn observed_gaps(&self, disk: usize) -> usize {
        self.gaps.get(disk).map_or(0, VecDeque::len)
    }
}

impl PowerPolicy for LowerEnvelopePolicy {
    fn name(&self) -> String {
        format!(
            "lower_envelope({} levels, window={})",
            self.betas.len() + 1,
            self.window
        )
    }

    fn settled(&mut self, disk: usize, level: u8, t: f64) -> Option<DescentStep> {
        self.ensure_disk(disk);
        if level == 0 {
            // Fresh idle period: observe it and plan the whole descent.
            self.idle_since[disk] = Some(t);
            self.plan[disk] = self.plan_thresholds(disk);
        }
        let l = level as usize;
        let tau = *self.plan[disk].get(l)?;
        if !tau.is_finite() {
            return None;
        }
        let rest = if l == 0 {
            tau
        } else {
            // Thresholds are absolute from idle start; entry transitions
            // consumed some of that budget already.
            let elapsed = self.idle_since[disk].map_or(0.0, |t0| t - t0);
            (tau - elapsed).max(0.0)
        };
        Some(DescentStep::to_level(rest, level + 1))
    }

    fn request_arrived(&mut self, disk: usize, t: f64) {
        self.ensure_disk(disk);
        if let Some(start) = self.idle_since[disk].take() {
            let gap = (t - start).max(0.0);
            if self.gaps[disk].len() == self.window {
                self.gaps[disk].pop_front();
            }
            self.gaps[disk].push_back(gap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_disk::PowerLadder;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    fn spec3() -> DiskSpec {
        let s = spec();
        let ladder = PowerLadder::with_low_rpm(&s);
        s.with_ladder(Some(ladder))
    }

    #[test]
    fn ski_rental_draws_fresh_thresholds_within_beta() {
        let mut p = SkiRentalPolicy::for_drive(&spec(), 42);
        let beta = p.beta_s();
        assert!((beta - 48.7).abs() < 0.1, "beta {beta}");
        let draws: Vec<f64> = (0..50)
            .map(|i| p.settled(0, 0, i as f64).unwrap().rest_s)
            .collect();
        for &d in &draws {
            assert!((0.0..=beta).contains(&d), "draw {d}");
        }
        // Draws differ (randomised, not a fixed threshold).
        assert!(draws.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9));
        // Settling deeper never draws (the idle period is already open).
        assert_eq!(p.settled(0, 1, 60.0), None);
    }

    #[test]
    fn ski_rental_is_deterministic_per_seed() {
        let mut a = SkiRentalPolicy::for_drive(&spec(), 7);
        let mut b = SkiRentalPolicy::for_drive(&spec(), 7);
        for i in 0..100 {
            assert_eq!(a.settled(0, 0, i as f64), b.settled(0, 0, i as f64));
        }
        let mut c = SkiRentalPolicy::for_drive(&spec(), 8);
        let different = (0..20).any(|i| a.settled(0, 0, i as f64) != c.settled(0, 0, i as f64));
        assert!(different, "distinct seeds must give distinct streams");
    }

    #[test]
    fn ski_rental_streams_are_per_disk_and_interleaving_invariant() {
        // Draws for one disk must not depend on how other disks' draws
        // interleave — the property that makes sharded replay (which
        // splits the callbacks across per-shard clones) bit-identical.
        let mut interleaved = SkiRentalPolicy::for_drive(&spec(), 42);
        let mut sequential = SkiRentalPolicy::for_drive(&spec(), 42);
        let mut want = vec![Vec::new(); 4];
        for round in 0..8 {
            for (d, stream) in want.iter_mut().enumerate() {
                stream.push(interleaved.settled(d, 0, round as f64).unwrap().rest_s);
            }
        }
        for (d, stream) in want.iter().enumerate() {
            for (round, &expect) in stream.iter().enumerate() {
                let got = sequential.settled(d, 0, round as f64).unwrap().rest_s;
                assert_eq!(expect, got, "disk {d} round {round}");
            }
        }
        // Distinct disks see distinct streams.
        assert!(want[0] != want[1]);
        // Disk 0's stream is the legacy bare-seed stream.
        let mut legacy = SkiRentalPolicy::for_drive(&spec(), 42);
        assert_eq!(legacy.draw_threshold(0), want[0][0]);
    }

    #[test]
    fn ski_rental_mean_draw_matches_theory() {
        // E[τ] = β²/(β(e−1)) = β/(e−1).
        let beta = 10.0;
        let mut p = SkiRentalPolicy::new(beta, 3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|i| p.settled(0, 0, i as f64).unwrap().rest_s)
            .sum::<f64>()
            / n as f64;
        let expect = beta / (std::f64::consts::E - 1.0);
        assert!(
            (mean - expect).abs() < 0.1,
            "mean draw {mean} vs theory {expect}"
        );
    }

    #[test]
    fn adaptive_starts_conservative_then_races_after_long_gaps() {
        let spec = spec();
        let be = dpm::classical_threshold(&spec);
        let mut p = AdaptivePolicy::for_drive(&spec, 0.5);
        // No history: break-even timeout, not an immediate spin-down.
        assert_eq!(p.settled(0, 0, 0.0), Some(DescentStep::to_deepest(be)));
        // A long observed gap (10× break-even) flips the prediction.
        p.request_arrived(0, 10.0 * be);
        assert!(p.predicted_gap_s(0) > be);
        assert_eq!(
            p.settled(0, 0, 10.0 * be + 1.0),
            Some(DescentStep::to_deepest(0.0))
        );
    }

    #[test]
    fn adaptive_learns_short_gaps_back_down() {
        let mut p = AdaptivePolicy::new(0.5, 50.0);
        // One huge gap, then a run of tiny ones: prediction must decay
        // below break-even and the policy must stop racing to sleep.
        p.settled(0, 0, 0.0);
        p.request_arrived(0, 1000.0);
        assert_eq!(p.settled(0, 0, 1000.0), Some(DescentStep::to_deepest(0.0)));
        let mut t = 1000.0;
        for _ in 0..8 {
            p.request_arrived(0, t + 1.0); // 1 s gaps
            t += 1.0;
            p.settled(0, 0, t);
        }
        assert!(p.predicted_gap_s(0) < 50.0, "pred {}", p.predicted_gap_s(0));
        assert_eq!(p.settled(0, 0, t), Some(DescentStep::to_deepest(50.0)));
    }

    #[test]
    fn adaptive_tracks_disks_independently() {
        let mut p = AdaptivePolicy::new(1.0, 50.0);
        p.settled(0, 0, 0.0);
        p.settled(5, 0, 0.0);
        p.request_arrived(0, 500.0);
        p.request_arrived(5, 2.0);
        assert!(p.predicted_gap_s(0) > 50.0);
        assert!(p.predicted_gap_s(5) < 50.0);
        assert_eq!(p.settled(0, 0, 500.0), Some(DescentStep::to_deepest(0.0)));
        assert_eq!(p.settled(5, 0, 500.0), Some(DescentStep::to_deepest(50.0)));
    }

    #[test]
    fn adaptive_ignores_arrivals_while_busy() {
        let mut p = AdaptivePolicy::new(1.0, 50.0);
        p.settled(0, 0, 0.0);
        p.request_arrived(0, 10.0); // closes the gap: 10 s
        p.request_arrived(0, 11.0); // busy-time arrival: no open gap
        assert!((p.predicted_gap_s(0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn envelope_descent_two_state_is_the_pairwise_break_even() {
        let mut p = EnvelopeDescentPolicy::for_drive(&spec());
        assert_eq!(p.times().len(), 1);
        let step = p.settled(0, 0, 0.0).unwrap();
        assert_eq!(step.to_level, 1);
        assert!((step.rest_s - 53.29).abs() < 0.05);
        assert_eq!(p.settled(0, 1, 100.0), None);
    }

    #[test]
    fn envelope_descent_steps_the_full_ladder() {
        let s3 = spec3();
        let ladder = s3.power_ladder();
        let mut p = EnvelopeDescentPolicy::for_drive(&s3);
        let t1 = ladder.pairwise_break_even_s(1);
        let t2 = ladder.pairwise_break_even_s(2);
        let s0 = p.settled(0, 0, 0.0).unwrap();
        assert_eq!(s0.to_level, 1);
        assert!((s0.rest_s - t1).abs() < 1e-12);
        let s1 = p.settled(0, 1, t1).unwrap();
        assert_eq!(s1.to_level, 2);
        assert!((s1.rest_s - (t2 - t1)).abs() < 1e-12);
        assert_eq!(p.settled(0, 2, t2), None);
    }

    #[test]
    fn lower_envelope_cold_start_follows_the_deterministic_envelope() {
        let s3 = spec3();
        let ladder = s3.power_ladder();
        let mut p = LowerEnvelopePolicy::for_drive(&s3, 16);
        let step = p.settled(0, 0, 0.0).unwrap();
        assert_eq!(step.to_level, 1);
        assert!((step.rest_s - ladder.pairwise_break_even_s(1)).abs() < 1e-12);
    }

    #[test]
    fn lower_envelope_learns_bimodal_gaps_and_races_to_sleep() {
        let s3 = spec3();
        let mut p = LowerEnvelopePolicy::for_drive(&s3, 16);
        // Feed a bimodal history: tiny 0.5 s gaps and huge 600 s gaps.
        let mut t = 0.0;
        for i in 0..16 {
            p.settled(0, 0, t);
            t += if i % 2 == 0 { 0.5 } else { 600.0 };
            p.request_arrived(0, t);
        }
        assert_eq!(p.observed_gaps(0), 16);
        // With gaps either ≪ β or ≫ β, the expected-cost minimiser puts
        // the first threshold just past the short mode (0.5 s) — far
        // below the deterministic envelope (≈ 22 s).
        let step = p.settled(0, 0, t).unwrap();
        assert!(
            step.rest_s <= 0.5 + 1e-9,
            "learned threshold {} should hug the short mode",
            step.rest_s
        );
    }

    #[test]
    fn lower_envelope_holds_when_all_gaps_are_short() {
        let s3 = spec3();
        let mut p = LowerEnvelopePolicy::for_drive(&s3, 16);
        let mut t = 0.0;
        for _ in 0..16 {
            p.settled(0, 0, t);
            t += 2.0; // every gap far below every β
            p.request_arrived(0, t);
        }
        // Descending can only lose: the policy holds at idle.
        assert_eq!(p.settled(0, 0, t), None);
    }

    #[test]
    fn lower_envelope_plans_monotone_thresholds() {
        let s3 = spec3();
        let mut p = LowerEnvelopePolicy::for_drive(&s3, 16);
        let mut t = 0.0;
        // Mixed gaps around the two betas.
        for i in 0..16 {
            p.settled(0, 0, t);
            t += [1.0, 30.0, 90.0, 400.0][i % 4];
            p.request_arrived(0, t);
        }
        p.settled(0, 0, t);
        let plan = p.plan[0].clone();
        assert_eq!(plan.len(), 2);
        assert!(plan[0] <= plan[1], "plan not monotone: {plan:?}");
    }

    #[test]
    fn best_threshold_picks_expected_cost_minimum() {
        // All gaps long: τ = 0 wins (race to sleep).
        assert_eq!(
            LowerEnvelopePolicy::best_threshold(10.0, &[100.0, 200.0, 300.0]),
            0.0
        );
        // All gaps short: hold.
        assert_eq!(
            LowerEnvelopePolicy::best_threshold(10.0, &[1.0, 2.0, 3.0]),
            f64::INFINITY
        );
        // Bimodal: descend just past the short mode.
        let tau = LowerEnvelopePolicy::best_threshold(10.0, &[1.0, 1.0, 1.0, 500.0, 500.0, 500.0]);
        assert_eq!(tau, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn adaptive_rejects_bad_alpha() {
        let _ = AdaptivePolicy::new(0.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "bad beta")]
    fn ski_rental_rejects_bad_beta() {
        let _ = SkiRentalPolicy::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn lower_envelope_rejects_tiny_window() {
        let _ = LowerEnvelopePolicy::for_drive(&spec(), 2);
    }
}
