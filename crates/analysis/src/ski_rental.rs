//! Exact ski-rental theory — the idealised model behind §2's dynamic power
//! management survey (Irani, Singh, Shukla & Gupta).
//!
//! In the classical abstraction an idle period of length `g` can be "rented"
//! (stay idle, cost `g` — the idle-power drain, normalised to 1/second) or
//! "bought" at any time `t ≤ g` (spin down, one-off cost `β` — the
//! normalised transition energy). The offline optimum pays `min(g, β)`.
//!
//! - The deterministic threshold policy with `τ = β` is exactly
//!   **2-competitive**, and no deterministic policy beats 2.
//! - The randomised policy drawing `τ` from density
//!   `f(t) = e^{t/β} / (β(e−1))` on `[0, β]` is **e/(e−1) ≈ 1.582**-
//!   competitive in expectation, and that is optimal.
//!
//! These functions are exact (closed forms, no simulation) and are
//! property-tested against the classical bounds; `spindown-disk` maps real
//! drive constants onto `β` via
//! [`β = E_over / P_idle`](spindown_disk::transition_energy_overhead).

/// Offline optimal cost for a gap of length `g` with buy cost `beta`.
pub fn offline_cost(beta: f64, g: f64) -> f64 {
    assert!(beta > 0.0 && g >= 0.0);
    g.min(beta)
}

/// Deterministic threshold policy: rent until `tau`, then buy.
pub fn deterministic_cost(beta: f64, tau: f64, g: f64) -> f64 {
    assert!(beta > 0.0 && tau >= 0.0 && g >= 0.0);
    if g <= tau {
        g
    } else {
        tau + beta
    }
}

/// Worst-case competitive ratio of the deterministic policy with threshold
/// `tau` (supremum over all gaps, in closed form).
pub fn deterministic_competitive_ratio(beta: f64, tau: f64) -> f64 {
    assert!(beta > 0.0 && tau >= 0.0);
    // Adversary either stops just after tau (cost tau+beta vs min(tau,beta))
    // or runs forever (cost tau+beta vs beta). The first dominates.
    let adversarial = (tau + beta) / tau.min(beta).max(f64::MIN_POSITIVE);
    // For tau ≥ beta the ratio is (tau+beta)/beta; for tau ≤ beta it is
    // (tau+beta)/tau; both are captured by `adversarial`. Gaps below tau
    // are ratio 1.
    adversarial.max(1.0)
}

/// Expected cost of the optimal randomised policy (threshold density
/// `f(t) = e^{t/β}/(β(e−1))` on `[0, β]`) for a gap `g`, in closed form.
pub fn randomized_expected_cost(beta: f64, g: f64) -> f64 {
    assert!(beta > 0.0 && g >= 0.0);
    let e = std::f64::consts::E;
    let norm = beta * (e - 1.0);
    if g >= beta {
        // E[τ] + β: every draw buys before the gap ends.
        // E[τ] = ∫ t f(t) dt over [0, β] = β(e·0 + ... ) — integrate by parts:
        // ∫₀^β t e^{t/β} dt = β²(e − e + 1) ... compute directly:
        // ∫ t e^{t/β} dt = β t e^{t/β} − β² e^{t/β}; at β: β²e − β²e = 0; at 0: −β².
        // So ∫₀^β t e^{t/β} dt = 0 − (−β²) = β².
        let expected_tau = beta * beta / norm;
        expected_tau + beta
    } else {
        // τ ≤ g: pay τ + β; τ > g: pay g.
        // ∫₀^g (t + β) f(t) dt + g·P(τ > g)
        // ∫₀^g t e^{t/β} dt = β g e^{g/β} − β² e^{g/β} + β²
        // ∫₀^g β e^{t/β} dt = β² (e^{g/β} − 1)
        let eg = (g / beta).exp();
        let int_t = beta * g * eg - beta * beta * eg + beta * beta;
        let int_b = beta * beta * (eg - 1.0);
        let p_gt = (beta * (std::f64::consts::E - eg)) / norm; // ∫_g^β f
        (int_t + int_b) / norm + g * p_gt
    }
}

/// Worst-case expected competitive ratio of the randomised policy
/// (supremum over gaps, found numerically on a fine grid — the theory says
/// it is constant `e/(e−1)` for `g ≥` a small floor).
pub fn randomized_competitive_ratio(beta: f64) -> f64 {
    let mut worst: f64 = 1.0;
    for i in 1..=10_000 {
        let g = beta * 2.0 * i as f64 / 10_000.0;
        let ratio = randomized_expected_cost(beta, g) / offline_cost(beta, g);
        worst = worst.max(ratio);
    }
    worst
}

/// The optimal competitive ratio `e/(e−1)` for reference.
pub fn e_over_e_minus_1() -> f64 {
    let e = std::f64::consts::E;
    e / (e - 1.0)
}

/// Inverse-CDF sampler for the optimal randomised threshold density
/// `f(t) = e^{t/β}/(β(e−1))` on `[0, β]`: maps a uniform `u ∈ [0, 1)` to a
/// threshold draw `τ = β·ln(1 + u(e−1))`. This is what the online
/// [`crate::online::SkiRentalPolicy`] draws once per idle period.
pub fn sample_threshold(beta: f64, u: f64) -> f64 {
    assert!(beta > 0.0, "beta must be positive");
    assert!((0.0..=1.0).contains(&u), "u must be a unit sample, got {u}");
    let e = std::f64::consts::E;
    beta * (1.0 + u * (e - 1.0)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn offline_is_min() {
        assert_eq!(offline_cost(10.0, 3.0), 3.0);
        assert_eq!(offline_cost(10.0, 30.0), 10.0);
    }

    #[test]
    fn deterministic_break_even_is_exactly_2_competitive() {
        let beta = 7.0;
        let r = deterministic_competitive_ratio(beta, beta);
        assert!((r - 2.0).abs() < 1e-12);
        // and the adversarial gap realises it
        let g = beta + 1e-9;
        let ratio = deterministic_cost(beta, beta, g) / offline_cost(beta, g);
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn no_deterministic_threshold_beats_2() {
        let beta = 5.0;
        for tau in [0.1, 1.0, 2.5, 5.0, 7.5, 20.0] {
            assert!(
                deterministic_competitive_ratio(beta, tau) >= 2.0 - 1e-9,
                "tau {tau} claims ratio {}",
                deterministic_competitive_ratio(beta, tau)
            );
        }
    }

    #[test]
    fn randomized_achieves_e_over_e_minus_1() {
        let beta = 3.0;
        let r = randomized_competitive_ratio(beta);
        let target = e_over_e_minus_1(); // ≈ 1.58198
        assert!(
            (r - target).abs() < 1e-3,
            "randomised ratio {r} vs e/(e-1) {target}"
        );
    }

    #[test]
    fn randomized_beats_deterministic_on_adversarial_gap() {
        let beta = 4.0;
        let g = beta + 1e-6;
        let det = deterministic_cost(beta, beta, g) / offline_cost(beta, g);
        let rnd = randomized_expected_cost(beta, g) / offline_cost(beta, g);
        assert!(
            rnd < det,
            "randomised {rnd} should beat deterministic {det}"
        );
    }

    #[test]
    fn expected_cost_long_gap_closed_form() {
        // For g ≥ β: E[cost] = β²/(β(e−1)) + β = β(1/(e−1) + 1) = β·e/(e−1).
        let beta = 2.0;
        let expect = beta * e_over_e_minus_1();
        let got = randomized_expected_cost(beta, 10.0 * beta);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn sample_threshold_spans_zero_to_beta() {
        let beta = 6.0;
        assert_eq!(sample_threshold(beta, 0.0), 0.0);
        assert!((sample_threshold(beta, 1.0) - beta).abs() < 1e-12);
    }

    #[test]
    fn sample_threshold_matches_cdf() {
        // CDF F(t) = (e^{t/β} − 1)/(e − 1); the sampler must invert it:
        // F(sample(u)) = u.
        let beta = 3.0;
        let e = std::f64::consts::E;
        for u in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let t = sample_threshold(beta, u);
            let cdf = ((t / beta).exp() - 1.0) / (e - 1.0);
            assert!((cdf - u).abs() < 1e-12, "u {u} round-trips to {cdf}");
        }
    }

    proptest! {
        #[test]
        fn sampled_thresholds_stay_in_unit_beta_interval(
            beta in 0.1f64..100.0, u in 0.0f64..1.0
        ) {
            let t = sample_threshold(beta, u);
            prop_assert!((0.0..=beta).contains(&t), "draw {t} outside [0, {beta}]");
        }

        #[test]
        fn randomized_cost_continuous_at_beta(beta in 0.1f64..50.0) {
            let below = randomized_expected_cost(beta, beta * (1.0 - 1e-9));
            let above = randomized_expected_cost(beta, beta);
            prop_assert!((below - above).abs() < 1e-4 * beta);
        }

        #[test]
        fn randomized_never_worse_than_e_ratio(beta in 0.1f64..50.0, g in 0.0f64..500.0) {
            let off = offline_cost(beta, g);
            if off > 1e-9 {
                let ratio = randomized_expected_cost(beta, g) / off;
                prop_assert!(ratio <= e_over_e_minus_1() + 1e-6, "ratio {ratio}");
            }
        }

        #[test]
        fn deterministic_cost_matches_piecewise_definition(
            beta in 0.1f64..50.0, tau in 0.0f64..100.0, g in 0.0f64..200.0
        ) {
            let c = deterministic_cost(beta, tau, g);
            if g <= tau {
                prop_assert_eq!(c, g);
            } else {
                prop_assert_eq!(c, tau + beta);
            }
        }

        #[test]
        fn costs_are_monotone_in_gap(beta in 0.1f64..20.0, g1 in 0.0f64..100.0, g2 in 0.0f64..100.0) {
            let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
            prop_assert!(offline_cost(beta, lo) <= offline_cost(beta, hi) + 1e-12);
            prop_assert!(
                randomized_expected_cost(beta, lo) <= randomized_expected_cost(beta, hi) + 1e-9
            );
        }
    }
}
