#![warn(missing_docs)]
//! # spindown-analysis
//!
//! Analytic companions to the simulator:
//!
//! - [`stats`] — streaming moments (Welford) and histograms.
//! - [`mg1`] — M/G/1 queueing (Pollaczek–Khinchine): predicts per-disk
//!   response times from the load constraint `L`, giving the analytic side
//!   of the Figure 4 trade-off curve.
//! - [`dpm`] — dynamic power management theory (§2 of the paper): offline
//!   optimal spin-down cost per idle gap, the online fixed-threshold policy
//!   and its competitive ratio (the classical 2-competitive bound).
//! - [`regression`] — least-squares fits (log-log Zipf checks of §5.1).
//! - [`ski_rental`] — exact ski-rental theory: the 2-competitive
//!   deterministic and e/(e−1)-competitive randomised spin-down policies in
//!   closed form.
//! - [`online`] — the theory made executable: randomised ski-rental and
//!   adaptive idle-prediction policies implementing the simulator's
//!   `PowerPolicy` trait.
//! - [`capacity`] — capacity planning: disks needed by storage/load and the
//!   response-time-constrained utilisation cap (the paper's "percentage of
//!   disks that must be maintained on-line … under budget constraints").

pub mod capacity;
pub mod dpm;
pub mod mg1;
pub mod online;
pub mod regression;
pub mod ski_rental;
pub mod stats;
pub mod tradeoff;

pub use dpm::{
    competitive_ratio, envelope_gap_cost, multi_state_offline_gap_cost, offline_gap_cost,
    online_gap_cost,
};
pub use mg1::{mg1_mean_response, mg1_mean_wait, utilisation_for_response};
pub use online::{AdaptivePolicy, EnvelopeDescentPolicy, LowerEnvelopePolicy, SkiRentalPolicy};
pub use stats::Welford;
pub use tradeoff::{knee_index, pareto_front, TradeoffPoint};
