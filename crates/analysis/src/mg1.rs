//! M/G/1 queueing: the analytic model behind the load constraint `L`.
//!
//! The paper bounds per-disk load (`Σ l_i ≤ L`) as a proxy for response
//! time. For Poisson arrivals and general service times, the
//! Pollaczek–Khinchine formula makes that proxy precise: a disk offered
//! utilisation `ρ = λ·E[S]` has mean waiting time
//!
//! ```text
//! W_q = λ·E[S²] / (2(1 − ρ))
//! ```
//!
//! and mean response `W = W_q + E[S]`. [`utilisation_for_response`] inverts
//! this: the highest `ρ` (hence the highest admissible `L`) that keeps mean
//! response below a budget — the analytic form of the Figure 4 trade-off.

/// Mean waiting time (queueing delay, excluding service) of an M/G/1 queue.
/// `None` when the queue is unstable (`ρ ≥ 1`) or inputs are invalid.
pub fn mg1_mean_wait(lambda: f64, mean_service: f64, second_moment: f64) -> Option<f64> {
    if !(lambda >= 0.0) || !(mean_service > 0.0) || !(second_moment >= 0.0) {
        return None;
    }
    let rho = lambda * mean_service;
    if rho >= 1.0 {
        return None;
    }
    Some(lambda * second_moment / (2.0 * (1.0 - rho)))
}

/// Mean response time (wait + service). `None` when unstable.
pub fn mg1_mean_response(lambda: f64, mean_service: f64, second_moment: f64) -> Option<f64> {
    mg1_mean_wait(lambda, mean_service, second_moment).map(|w| w + mean_service)
}

/// The largest utilisation `ρ` such that the M/G/1 mean response stays at or
/// below `response_budget`, for a service distribution with the given
/// moments. Returns 0 when even an idle queue misses the budget
/// (`budget < E[S]`), and `None` on invalid inputs.
///
/// Derivation: with `λ = ρ/E[S]`, `W = E[S] + ρ·E[S²]/(2·E[S]·(1−ρ))`;
/// setting `q = budget − E[S]` and solving for `ρ`:
/// `ρ* = 2·E[S]·q / (E[S²] + 2·E[S]·q)`.
pub fn utilisation_for_response(
    mean_service: f64,
    second_moment: f64,
    response_budget: f64,
) -> Option<f64> {
    if !(mean_service > 0.0) || !(second_moment >= 0.0) || !response_budget.is_finite() {
        return None;
    }
    let q = response_budget - mean_service;
    if q <= 0.0 {
        return Some(0.0);
    }
    if second_moment == 0.0 {
        // Deterministic zero-variance limit isn't physical here (E[S²] ≥
        // E[S]² > 0), treat as invalid.
        return None;
    }
    Some((2.0 * mean_service * q) / (second_moment + 2.0 * mean_service * q))
}

/// Service-time moments of a discrete file mix: files with popularity `p_i`
/// and service time `t_i` give `E[S] = Σ p_i t_i`, `E[S²] = Σ p_i t_i²`.
pub fn mixture_moments(popularity: &[f64], service_times: &[f64]) -> (f64, f64) {
    assert_eq!(popularity.len(), service_times.len());
    let mut es = 0.0;
    let mut es2 = 0.0;
    for (&p, &t) in popularity.iter().zip(service_times) {
        es += p * t;
        es2 += p * t * t;
    }
    (es, es2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_special_case() {
        // Exponential service: E[S²] = 2E[S]² → W = E[S]/(1−ρ).
        let es = 2.0;
        let es2 = 2.0 * es * es;
        let lambda = 0.25; // ρ = 0.5
        let w = mg1_mean_response(lambda, es, es2).unwrap();
        assert!((w - es / 0.5).abs() < 1e-12);
    }

    #[test]
    fn md1_special_case() {
        // Deterministic service: E[S²] = E[S]² → W_q = ρE[S]/(2(1−ρ)).
        let es = 1.0;
        let es2 = 1.0;
        let lambda = 0.8;
        let wq = mg1_mean_wait(lambda, es, es2).unwrap();
        assert!((wq - 0.8 / (2.0 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_is_none() {
        assert_eq!(mg1_mean_wait(1.0, 1.0, 1.0), None);
        assert_eq!(mg1_mean_wait(2.0, 1.0, 1.0), None);
    }

    #[test]
    fn wait_grows_with_utilisation() {
        let es = 1.0;
        let es2 = 2.0;
        let mut last = 0.0;
        for rho in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let w = mg1_mean_wait(rho / es, es, es2).unwrap();
            assert!(w > last);
            last = w;
        }
    }

    #[test]
    fn utilisation_inversion_roundtrip() {
        let es = 2.5;
        let es2 = 9.0;
        for budget in [3.0, 5.0, 12.0, 60.0] {
            let rho = utilisation_for_response(es, es2, budget).unwrap();
            assert!(rho > 0.0 && rho < 1.0);
            let w = mg1_mean_response(rho / es, es, es2).unwrap();
            assert!(
                (w - budget).abs() < 1e-9,
                "budget {budget}: rho {rho} gives response {w}"
            );
        }
    }

    #[test]
    fn impossible_budget_gives_zero_utilisation() {
        assert_eq!(utilisation_for_response(5.0, 30.0, 4.0), Some(0.0));
        assert_eq!(utilisation_for_response(5.0, 30.0, 5.0), Some(0.0));
    }

    #[test]
    fn tighter_budget_means_lower_utilisation() {
        let es = 1.0;
        let es2 = 3.0;
        let tight = utilisation_for_response(es, es2, 2.0).unwrap();
        let loose = utilisation_for_response(es, es2, 20.0).unwrap();
        assert!(tight < loose);
        assert!(loose < 1.0);
    }

    #[test]
    fn mixture_moments_hand_case() {
        let (es, es2) = mixture_moments(&[0.5, 0.5], &[1.0, 3.0]);
        assert!((es - 2.0).abs() < 1e-12);
        assert!((es2 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert_eq!(mg1_mean_wait(-1.0, 1.0, 1.0), None);
        assert_eq!(mg1_mean_wait(0.5, 0.0, 1.0), None);
        assert_eq!(utilisation_for_response(0.0, 1.0, 5.0), None);
        assert_eq!(utilisation_for_response(1.0, 0.0, 5.0), None);
    }
}
