//! Least-squares fits, including the log-log power-law fit used for the
//! §5.1 Zipf checks.

/// Result of a simple linear regression `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in [0, 1].
    pub r2: f64,
}

/// Ordinary least squares over `(x, y)` points. `None` with fewer than two
/// distinct x values.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let syy: f64 = points.iter().map(|p| p.1 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let ss_tot = syy - sy * sy / n;
    let r2 = if ss_tot > 0.0 {
        let r_num = n * sxy - sx * sy;
        (r_num * r_num) / (denom * (n * syy - sy * sy))
    } else {
        1.0 // constant y fitted exactly
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Fit `y = c·x^a` by linear regression in log-log space over points with
/// positive coordinates; returns `(a, r2)`.
pub fn power_law_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    linear_fit(&logged).map(|f| (f.slope, f.r2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, x + if i % 2 == 0 { 2.0 } else { -2.0 })
            })
            .collect();
        let f = linear_fit(&pts).unwrap();
        assert!((f.slope - 1.0).abs() < 0.05);
        assert!(f.r2 < 1.0 && f.r2 > 0.9);
    }

    #[test]
    fn power_law_exponent_recovered() {
        let pts: Vec<(f64, f64)> = (1..100)
            .map(|i| {
                let x = i as f64;
                (x, 5.0 * x.powf(-0.7))
            })
            .collect();
        let (a, r2) = power_law_fit(&pts).unwrap();
        assert!((a + 0.7).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_ignores_nonpositive_points() {
        let mut pts: Vec<(f64, f64)> = (1..50).map(|i| (i as f64, (i as f64).powi(2))).collect();
        pts.push((0.0, 5.0));
        pts.push((3.0, 0.0));
        pts.push((-1.0, 2.0));
        let (a, _) = power_law_fit(&pts).unwrap();
        assert!((a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn constant_y_has_unit_r2() {
        let f = linear_fit(&[(0.0, 4.0), (1.0, 4.0), (2.0, 4.0)]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }
}
