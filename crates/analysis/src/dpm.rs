//! Dynamic power management theory (the §2 related-work results, made
//! executable): per-gap energy costs of the offline optimal policy and the
//! online fixed-threshold policy, and the competitive ratio between them.
//!
//! The classical result (Irani et al.): for a two-state system the
//! break-even threshold is 2-competitive, and no deterministic online
//! policy does better. These functions let experiments *measure* the ratio
//! on real idle-gap distributions; the property tests confirm the ≤ 2 bound
//! (up to the small refinement that our model also charges idle power
//! during the spin transitions).
//!
//! ## Multi-state systems
//!
//! With an N-level power ladder the offline optimum for a gap `g` is the
//! *lower envelope* of the per-level cost lines `C_l(g) = E_l + P_l·g`
//! (reach-and-wake overhead plus resident draw) —
//! [`multi_state_offline_gap_cost`]. The deterministic online strategy
//! that descends into level `l` at the envelope intersection time `T_l`
//! ([`spindown_disk::envelope_descent_times`]) pays
//! [`envelope_gap_cost`] and remains **2-competitive** (Irani, Shukla &
//! Gupta): at the moment the gap ends it has spent at most the envelope
//! value once on residency and once on transition overheads. The
//! probability-based refinement (implemented live in
//! [`crate::online::LowerEnvelopePolicy`]) places the descent times to
//! minimise *expected* cost against an idle-length distribution instead,
//! approaching the e/(e−1) randomised bound when the distribution is
//! known. Both functions use the classical energy abstraction (transition
//! *times* folded into their energies), which is also what makes the
//! per-level threshold optimisation decompose cleanly.

use spindown_disk::{envelope_descent_times, transition_energy_overhead, DiskSpec, PowerLadder};

/// Energy an *offline* optimal policy spends on one idle gap of `gap_s`
/// seconds: the cheaper of idling through or spinning down immediately.
pub fn offline_gap_cost(spec: &DiskSpec, gap_s: f64) -> f64 {
    assert!(gap_s >= 0.0);
    let idle = spec.idle_power_w * gap_s;
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let sleep =
        transition_energy_overhead(spec) + (gap_s - transit).max(0.0) * spec.standby_power_w;
    idle.min(sleep)
}

/// Energy the online fixed-threshold policy spends on one idle gap: idle for
/// `threshold_s`, then spin down, sleep, and spin up at the gap's end. Gaps
/// shorter than the threshold are idled through.
pub fn online_gap_cost(spec: &DiskSpec, threshold_s: f64, gap_s: f64) -> f64 {
    assert!(gap_s >= 0.0 && threshold_s >= 0.0);
    if gap_s <= threshold_s {
        return spec.idle_power_w * gap_s;
    }
    let transit = spec.spin_down_time_s + spec.spin_up_time_s;
    let standby_s = (gap_s - threshold_s - transit).max(0.0);
    spec.idle_power_w * threshold_s
        + transition_energy_overhead(spec)
        + standby_s * spec.standby_power_w
}

/// Total online/offline cost ratio over a gap sequence. `None` when the
/// offline cost is zero (no gaps).
pub fn competitive_ratio(spec: &DiskSpec, threshold_s: f64, gaps: &[f64]) -> Option<f64> {
    let offline: f64 = gaps.iter().map(|&g| offline_gap_cost(spec, g)).sum();
    let online: f64 = gaps
        .iter()
        .map(|&g| online_gap_cost(spec, threshold_s, g))
        .sum();
    if offline <= 0.0 {
        return None;
    }
    Some(online / offline)
}

/// The threshold that equalises "idle through the threshold" and "the
/// transition overhead" — the classical 2-competitive choice
/// `τ* = E_over / P_idle`.
pub fn classical_threshold(spec: &DiskSpec) -> f64 {
    transition_energy_overhead(spec) / spec.idle_power_w
}

/// Offline optimal energy for one idle gap on an N-level ladder: the lower
/// envelope `min_l (E_l + P_l·g)` of the per-level cost lines, in the
/// classical energy abstraction (transition times folded into energies;
/// `E_0 = 0`).
pub fn multi_state_offline_gap_cost(ladder: &PowerLadder, gap_s: f64) -> f64 {
    assert!(gap_s >= 0.0);
    (0..ladder.len())
        .map(|l| ladder.descent_overhead_j(l as u8) + ladder.level(l as u8).power_w * gap_s)
        .fold(f64::INFINITY, f64::min)
}

/// Energy the deterministic lower-envelope online strategy spends on one
/// idle gap: rest at each level until its envelope intersection time, then
/// descend; pay the reach-and-wake overhead of the deepest level reached.
pub fn envelope_gap_cost(ladder: &PowerLadder, gap_s: f64) -> f64 {
    assert!(gap_s >= 0.0);
    let times = envelope_descent_times(ladder);
    let mut cost = 0.0;
    let mut reached = 0u8;
    let mut segment_start = 0.0;
    for (i, &t_l) in times.iter().enumerate() {
        if gap_s <= t_l {
            break;
        }
        cost += ladder.level(reached).power_w * (t_l - segment_start);
        segment_start = t_l;
        reached = (i + 1) as u8;
    }
    cost += ladder.level(reached).power_w * (gap_s - segment_start);
    cost + ladder.descent_overhead_j(reached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use spindown_disk::break_even_threshold;

    fn spec() -> DiskSpec {
        DiskSpec::seagate_st3500630as()
    }

    #[test]
    fn offline_picks_the_cheaper_branch() {
        let s = spec();
        // Short gap: idling is cheaper.
        assert!((offline_gap_cost(&s, 10.0) - 93.0).abs() < 1e-9);
        // Long gap: sleeping is cheaper.
        let long = offline_gap_cost(&s, 10_000.0);
        assert!(long < s.idle_power_w * 10_000.0);
    }

    #[test]
    fn online_matches_idle_below_threshold() {
        let s = spec();
        let c = online_gap_cost(&s, 53.3, 40.0);
        assert!((c - s.idle_power_w * 40.0).abs() < 1e-9);
    }

    #[test]
    fn online_cost_continuous_at_threshold() {
        let s = spec();
        let tau = 53.3;
        let below = online_gap_cost(&s, tau, tau - 1e-9);
        let above = online_gap_cost(&s, tau, tau + 1e-9);
        // jump equals the transition overhead (sleep decision taken)
        assert!((above - below - transition_energy_overhead(&s)).abs() < 1e-6);
    }

    #[test]
    fn break_even_threshold_is_at_most_2_competitive_per_gap() {
        let s = spec();
        let tau = break_even_threshold(&s);
        for gap in [0.5, 10.0, 53.0, 54.0, 100.0, 1000.0, 100_000.0] {
            let ratio = online_gap_cost(&s, tau, gap) / offline_gap_cost(&s, gap).max(1e-9);
            assert!(ratio <= 2.0 + 1e-6, "gap {gap}: per-gap ratio {ratio} > 2");
        }
    }

    #[test]
    fn random_gap_sequences_within_2x() {
        let s = spec();
        let tau = break_even_threshold(&s);
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..20 {
            let gaps: Vec<f64> = (0..200).map(|_| rng.random::<f64>() * 2000.0).collect();
            let r = competitive_ratio(&s, tau, &gaps).unwrap();
            assert!(r <= 2.0 + 1e-6, "ratio {r}");
            assert!(r >= 1.0 - 1e-9, "online can't beat offline: {r}");
        }
    }

    #[test]
    fn adversarial_gap_just_past_threshold_is_worst() {
        // The classic adversary: gaps slightly longer than the threshold
        // make the online policy pay both idle and transition.
        let s = spec();
        let tau = classical_threshold(&s);
        let adversarial = vec![tau + 1e-6; 50];
        let r = competitive_ratio(&s, tau, &adversarial).unwrap();
        assert!(r > 1.8, "adversarial ratio only {r}");
        assert!(r <= 2.0 + 1e-6);
    }

    #[test]
    fn zero_threshold_races_to_sleep() {
        let s = spec();
        // With τ=0 every gap pays the transition — bad for short gaps.
        let short_gaps = vec![1.0; 100];
        let r = competitive_ratio(&s, 0.0, &short_gaps).unwrap();
        assert!(r > 10.0, "racing to sleep should be very bad here: {r}");
    }

    #[test]
    fn empty_gaps_give_none() {
        assert_eq!(competitive_ratio(&spec(), 10.0, &[]), None);
    }

    #[test]
    fn classical_threshold_value() {
        // 453 J / 9.3 W ≈ 48.7 s
        assert!((classical_threshold(&spec()) - 48.7).abs() < 0.05);
    }

    #[test]
    fn multi_state_offline_is_the_lower_envelope() {
        let ladder = spindown_disk::PowerLadder::with_low_rpm(&spec());
        // Tiny gap: idling (level 0, zero overhead) wins.
        assert!((multi_state_offline_gap_cost(&ladder, 1.0) - 9.3).abs() < 1e-9);
        // Huge gap: the deepest level wins.
        let g = 100_000.0;
        let deep = ladder.descent_overhead_j(2) + ladder.level(2).power_w * g;
        assert!((multi_state_offline_gap_cost(&ladder, g) - deep).abs() < 1e-9);
        // In between, the low-RPM level carries a stretch of the envelope
        // (it is non-dominated by validation).
        let t1 = ladder.pairwise_break_even_s(1);
        let t2 = ladder.pairwise_break_even_s(2);
        let mid = 0.5 * (t1 + t2);
        let low = ladder.descent_overhead_j(1) + ladder.level(1).power_w * mid;
        assert!((multi_state_offline_gap_cost(&ladder, mid) - low).abs() < 1e-9);
    }

    #[test]
    fn envelope_strategy_is_2_competitive_on_the_ladder() {
        for s in [
            DiskSpec::seagate_st3500630as(),
            DiskSpec::enterprise_15k(),
            DiskSpec::archival_5400(),
        ] {
            let ladder = spindown_disk::PowerLadder::with_low_rpm(&s);
            let t2 = ladder.pairwise_break_even_s(2);
            for i in 1..200 {
                let gap = t2 * 2.0 * i as f64 / 100.0;
                let online = envelope_gap_cost(&ladder, gap);
                let offline = multi_state_offline_gap_cost(&ladder, gap);
                let ratio = online / offline.max(1e-9);
                assert!(
                    (1.0 - 1e-9..=2.0 + 1e-6).contains(&ratio),
                    "{}: gap {gap:.1} ratio {ratio}",
                    s.model
                );
            }
        }
    }

    #[test]
    fn envelope_cost_matches_idle_below_the_first_intersection() {
        let ladder = spindown_disk::PowerLadder::with_low_rpm(&spec());
        let t1 = ladder.pairwise_break_even_s(1);
        let g = 0.5 * t1;
        assert!((envelope_gap_cost(&ladder, g) - 9.3 * g).abs() < 1e-9);
    }
}
