//! Minimal `rand` shim for offline builds.
//!
//! Provides exactly the API surface the workspace uses:
//!
//! - [`rngs::SmallRng`] — a xoshiro256++ generator seeded via SplitMix64.
//! - [`SeedableRng::seed_from_u64`] — deterministic construction.
//! - [`Rng`] — the core `next_u64` source trait (object- and `?Sized`-safe).
//! - [`RngExt`] — `random::<T>()` and `random_range(range)`, blanket-
//!   implemented for every [`Rng`].
//!
//! Statistical quality: xoshiro256++ passes BigCrush; the range sampler uses
//! the widening-multiply method (Lemire) whose bias is ≤ span/2⁶⁴ —
//! negligible for simulation seeding and property-test case generation.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for u8 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromRng for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply.
#[inline]
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::from_rng(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` for u just
        // below 1; clamp to keep the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draw a uniform value of type `T` (`f64` is uniform in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draw uniformly from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the shim's stand-in for rand's
    /// `SmallRng`: fast, small state, deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(3..=4u64);
            assert!(v == 3 || v == 4);
        }
        let f = rng.random_range(2.0..3.0);
        assert!((2.0..3.0).contains(&f));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.random_range(5..5usize);
    }
}
