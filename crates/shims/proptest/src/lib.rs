//! Minimal `proptest` shim for offline builds.
//!
//! Implements the subset of proptest this workspace uses — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any::<T>()`,
//! `prop::collection::vec`, `Just`, range strategies, tuple strategies and
//! `.prop_map` — by *pure random sampling*. There is no shrinking and no
//! persistence of failing cases; a failure panics with the case number and
//! the generator seed is a stable function of the test name, so failures
//! reproduce exactly on re-run.

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Box a strategy (used by `prop_oneof!` to unify arm types).
    pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let i = rng.random_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            // Sampling the half-open range loses only the supremum, which
            // has measure zero; good enough for a test-case generator.
            let (s, e) = (*self.start(), *self.end());
            if s == e {
                return s;
            }
            rng.random_range(s..e)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` — full-domain strategies.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw from the full domain.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.random::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.random()
        }
    }

    /// Strategy over `T`'s full domain.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec<T>` strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration and error type.
pub mod test_runner {
    /// Number of random cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Construct from a rendered assertion message.
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

// Re-exported so the `proptest!` expansion can name the RNG through
// `$crate::` without requiring `rand` in every consumer's dev-dependencies.
#[doc(hidden)]
pub use ::rand as rand_shim;

/// Stable 64-bit FNV-1a over the test name: the per-test RNG seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Define property tests: `proptest! { #[test] fn p(x in 0..10u32) {...} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                <$crate::rand_shim::rngs::SmallRng as $crate::rand_shim::SeedableRng>::seed_from_u64(
                    $crate::seed_of(concat!(module_path!(), "::", stringify!($name))),
                );
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let ($($arg,)+) = strategies.sample(&mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Property assertion; returns an error from the enclosing case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                let msg = format!($($fmt)+);
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), msg, l, r
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::box_strategy($arm)),+
        ])
    };
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Tri {
        A,
        B,
        C(f64),
    }

    fn tri() -> impl Strategy<Value = Tri> {
        prop_oneof![Just(Tri::A), Just(Tri::B), (0.0f64..1.0).prop_map(Tri::C),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.5f64..2.5, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(t in tri(), pair in (1u8..4, 0.0f64..1.0)) {
            if let Tri::C(f) = t {
                prop_assert!((0.0..1.0).contains(&f));
            }
            prop_assert!(pair.0 >= 1 && pair.0 < 4);
        }

        #[test]
        fn early_ok_return_is_allowed(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_of("a::b"), crate::seed_of("a::b"));
        assert_ne!(crate::seed_of("a::b"), crate::seed_of("a::c"));
    }
}
