//! Minimal serde shim for offline builds.
//!
//! Re-exports the no-op derive macros and declares empty marker traits so
//! `use serde::{Deserialize, Serialize}` resolves in both the macro and the
//! trait namespace. No serialisation machinery is provided — nothing in the
//! workspace serialises at runtime.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented by the no-op
/// derive; present so trait-position imports and bounds still parse).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
