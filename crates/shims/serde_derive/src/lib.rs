//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds in offline containers with no crates.io access, so
//! the real serde is unavailable. Nothing in the workspace currently
//! serialises at runtime — the derives only need to *exist* so annotated
//! types compile. Each derive expands to an empty token stream (no trait
//! impl is generated); the `#[serde(...)]` helper attribute is accepted and
//! ignored.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
