//! Minimal `criterion` shim for offline builds.
//!
//! Implements the subset of the criterion API this workspace's benches use:
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!` and `criterion_main!`.
//! Measurement is a plain wall-clock loop — one warm-up iteration, then
//! `sample_size` timed iterations — reporting mean and minimum per-iteration
//! time (and derived throughput) on stdout. No statistics, plots or HTML.
//!
//! Setting `CRITERION_QUICK=1` in the environment caps every benchmark at
//! one timed iteration (after the warm-up) — the CI smoke lane uses this to
//! verify the benches run and to diff their output against
//! `BENCH_BASELINE.json` without paying full measurement time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as criterion renders it.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the closure under test and records timings.
pub struct Bencher {
    iters: u64,
    total: Duration,
    min: Duration,
}

/// True when the `CRITERION_QUICK` smoke mode is active (see the module
/// docs): every benchmark runs exactly one timed iteration.
pub fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters: if quick_mode() { 1 } else { iters },
            total: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Time `f` over the configured number of iterations (plus one untimed
    /// warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.iters {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 || self.total.is_zero() {
            println!("{name}: no samples");
            return;
        }
        let mean = self.total / self.iters as u32;
        let mut line = format!(
            "{name}\n  time: [mean {} | min {}] over {} iterations",
            fmt_duration(mean),
            fmt_duration(self.min),
            self.iters
        );
        if let Some(tp) = throughput {
            let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("\n  thrpt: {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("\n  thrpt: {:.3} MB/s", per_sec(n) / 1e6));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Timed iterations per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declare per-iteration work for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{id}", self.name), self.throughput);
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{id}", self.name), self.throughput);
    }

    /// End the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark with default settings.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, mut f: F) {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(&id.to_string(), None);
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        // 1 warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        let id = BenchmarkId::new("requests", "r4");
        assert_eq!(id.to_string(), "requests/r4");
    }
}
