//! Joint (cache × allocation × policy × discipline × ladder) planning.
//!
//! The paper treats allocation and spin-down as separate knobs: pack files
//! under a load constraint, then pick a threshold. Its own trade-off curves
//! show the two interact — concentrating load on fewer disks deepens idle
//! gaps and makes aggressive policies pay, while spreading the hot tail
//! shortens queues at the cost of sleep opportunities. This module searches
//! the *quintuple* space instead of fixing the other dimensions:
//!
//! - **cache** — any [`CacheChoice`]: no cache, a flat front, or a
//!   two-tier DRAM→SSD hierarchy. A bigger cache absorbs reuse before it
//!   reaches the fleet, deepening idle gaps — which can flip the winning
//!   (policy, ladder) pair at equal hardware budget;
//! - **allocation** — the paper's allocators plus the load-shaping legs
//!   ([`Allocator::Concentrate`], [`Allocator::SpreadTail`]);
//! - **policy** — any [`PolicyChoice`], including the Irani–Shukla–Gupta
//!   multi-state lower-envelope strategies;
//! - **discipline** — any [`DisciplineChoice`] (elevator batching pairs
//!   naturally with concentrated wake batches);
//! - **ladder** — any [`LadderChoice`] (deep ladders pay on archival
//!   shards, two-state on the latency tail).
//!
//! Every candidate plans and evaluates against the **same** [`DiskSpec`]
//! (the planner's single source of truth, `base.sim.disk`), with the
//! ladder applied to that spec *before* the policy is built from it — the
//! ordering `experiments::sweep::run_sweep` pins. The result is the set of
//! evaluated cells, their Pareto frontier over (energy, p95 response), and
//! a scalarised winner under a configurable [`JointObjective`].
//!
//! The search itself is deliberately sequential and dependency-free; the
//! `experiments` crate fans the same cells across threads with its sweep
//! machinery (`experiments::sweep::run_joint`).

use serde::{Deserialize, Serialize};
use spindown_disk::{DiskSpec, LadderChoice};
use spindown_packing::Allocator;
use spindown_sim::discipline::DisciplineChoice;
use spindown_sim::engine::SimError;
use spindown_sim::hierarchy::CacheChoice;
use spindown_sim::metrics::MetricsMode;
use spindown_workload::{FaultPlan, FileCatalog, Trace};

use crate::planner::{Plan, PlanError, Planner, PlannerConfig};
use crate::policy::PolicyChoice;

/// Scalarisation of the (energy, p95) trade-off: the winner minimises
/// `energy_j^energy_weight · p95_s^p95_weight`. The default (1, 1) is the
/// energy×p95 product; raising a weight leans the winner toward that axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointObjective {
    /// Exponent on total energy (joules). Must be ≥ 0.
    pub energy_weight: f64,
    /// Exponent on the p95 response time (seconds). Must be ≥ 0.
    pub p95_weight: f64,
}

impl JointObjective {
    /// The energy×p95 product (both weights 1).
    pub fn energy_p95() -> Self {
        JointObjective {
            energy_weight: 1.0,
            p95_weight: 1.0,
        }
    }

    /// Score a cell; lower is better. Non-finite inputs score `+∞` so a
    /// degenerate cell can never win.
    pub fn score(&self, energy_j: f64, p95_s: f64) -> f64 {
        let s = energy_j.powf(self.energy_weight) * p95_s.powf(self.p95_weight);
        if s.is_finite() {
            s
        } else {
            f64::INFINITY
        }
    }
}

impl Default for JointObjective {
    fn default() -> Self {
        Self::energy_p95()
    }
}

/// The fault regime the whole grid evaluates under. Faults are a property
/// of the *environment*, not of a candidate: every cell replays under the
/// same injected faults, so the planner's winner is the quintuple that
/// holds up best when disks crash, wakes fail and I/O flakes — the planner
/// pays for availability through the same (energy, p95) objective, since
/// retries and cold restarts inflate both.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum FaultChoice {
    /// Fault-free replay — the legacy bit-identical fast path.
    #[default]
    None,
    /// Inject this plan into every cell's replay.
    Inject(FaultPlan),
}

impl FaultChoice {
    /// Parse a fault spec; empty or `none` selects the fault-free regime,
    /// anything else must parse as a [`FaultPlan`].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let trimmed = spec.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("none") {
            return Ok(FaultChoice::None);
        }
        let plan = FaultPlan::parse(trimmed)?;
        if plan.is_none() {
            return Ok(FaultChoice::None);
        }
        Ok(FaultChoice::Inject(plan))
    }

    /// True for the fault-free regime.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultChoice::None)
    }

    /// The plan to lower into a [`spindown_sim::config::SimConfig`].
    pub fn plan(&self) -> FaultPlan {
        match self {
            FaultChoice::None => FaultPlan::none(),
            FaultChoice::Inject(p) => p.clone(),
        }
    }

    /// Short human label (`none`, or the plan's compact spec).
    pub fn label(&self) -> String {
        match self {
            FaultChoice::None => "none".to_owned(),
            FaultChoice::Inject(p) => p.label(),
        }
    }
}

/// One quintuple of the joint search space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointCandidate {
    /// The allocation strategy.
    pub allocator: Allocator,
    /// The spin-down policy.
    pub policy: PolicyChoice,
    /// The per-disk queue discipline.
    pub discipline: DisciplineChoice,
    /// The power-state ladder.
    pub ladder: LadderChoice,
    /// The cache hierarchy fronting the fleet.
    pub cache: CacheChoice,
}

impl JointCandidate {
    /// The paper's default quintuple: Pack_Disks + the fixed break-even
    /// threshold + FIFO queues + the two-state ladder, no cache. The joint
    /// bracket measures every other cell against this one.
    pub fn paper_default() -> Self {
        JointCandidate {
            allocator: Allocator::PackDisks,
            policy: PolicyChoice::break_even(),
            discipline: DisciplineChoice::Fifo,
            ladder: LadderChoice::TwoState,
            cache: CacheChoice::None,
        }
    }

    /// Fully-spelled label `alloc+policy+discipline+ladder[+cache]` (the
    /// joint bracket never elides the paper's four knobs — the quadruple is
    /// the point; only the cache-free default drops its suffix, keeping
    /// historical labels stable).
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}+{}+{}+{}",
            self.allocator.label(),
            self.policy.label(),
            self.discipline.label(),
            self.ladder.label()
        );
        if self.cache != CacheChoice::None {
            label.push('+');
            label.push_str(&self.cache.label());
        }
        label
    }
}

/// Configuration of the joint search: the shared base planner config (one
/// drive spec, one load constraint) and the grid along each dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointConfig {
    /// Base planner configuration. Its `sim.disk` is the single drive
    /// model every candidate plans and evaluates against; its allocator,
    /// discipline and policy fields are overridden per candidate.
    pub base: PlannerConfig,
    /// Allocation strategies to cross (≥ 1).
    pub allocators: Vec<Allocator>,
    /// Spin-down policies to cross (≥ 1).
    pub policies: Vec<PolicyChoice>,
    /// Queue disciplines to cross (≥ 1).
    pub disciplines: Vec<DisciplineChoice>,
    /// Power-state ladders to cross (≥ 1).
    pub ladders: Vec<LadderChoice>,
    /// Cache hierarchies to cross (≥ 1). Defaults to `[CacheChoice::None]`
    /// — the cache-free quadruple grid the earlier brackets ran.
    pub caches: Vec<CacheChoice>,
    /// The fault regime every cell replays under (not crossed: faults are
    /// the environment, not a knob). Defaults to fault-free.
    #[serde(default)]
    pub fault: FaultChoice,
    /// Scalarisation picking the winner among non-dominated cells.
    pub objective: JointObjective,
    /// Fleet-size floor every cell simulates (energy is only comparable
    /// across cells at equal fleet). The effective fleet is this floor
    /// raised to the largest allocation's slot count, so no candidate can
    /// overflow it; `None` means just the largest allocation's slots.
    pub fleet: Option<usize>,
}

impl JointConfig {
    /// The default search grid: the paper's allocator plus both
    /// load-shaping legs × the fixed break-even threshold and both
    /// lower-envelope multi-state policies × FIFO and elevator batching ×
    /// both ladders × no cache — 3·3·2·2·1 = 36 cells including the
    /// paper's default quintuple. Widen `caches` to bracket cache sizing
    /// as the fifth leg.
    pub fn default_grid() -> Self {
        JointConfig {
            base: PlannerConfig::default(),
            allocators: vec![
                Allocator::PackDisks,
                Allocator::Concentrate,
                Allocator::SpreadTail,
            ],
            policies: vec![
                PolicyChoice::break_even(),
                PolicyChoice::EnvelopeDescent,
                PolicyChoice::lower_envelope(),
            ],
            disciplines: vec![DisciplineChoice::Fifo, DisciplineChoice::ElevatorBatch],
            ladders: LadderChoice::all(),
            caches: vec![CacheChoice::None],
            fault: FaultChoice::None,
            objective: JointObjective::energy_p95(),
            fleet: None,
        }
    }

    /// The cross product of the five grids, allocation-outer / cache-inner
    /// (row-major, deterministic).
    pub fn candidates(&self) -> Vec<JointCandidate> {
        let mut out = Vec::with_capacity(
            self.allocators.len()
                * self.policies.len()
                * self.disciplines.len()
                * self.ladders.len()
                * self.caches.len(),
        );
        for &allocator in &self.allocators {
            for &policy in &self.policies {
                for &discipline in &self.disciplines {
                    for &ladder in &self.ladders {
                        for &cache in &self.caches {
                            out.push(JointCandidate {
                                allocator,
                                policy,
                                discipline,
                                ladder,
                                cache,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl Default for JointConfig {
    fn default() -> Self {
        Self::default_grid()
    }
}

/// One evaluated cell of the joint grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointCell {
    /// The quadruple this cell ran.
    pub candidate: JointCandidate,
    /// Disks the allocation loaded.
    pub disks_used: usize,
    /// Total fleet energy over the replay, joules.
    pub energy_j: f64,
    /// Mean response time, seconds.
    pub mean_resp_s: f64,
    /// 95th-percentile response time, seconds.
    pub p95_s: f64,
    /// Fleet availability fraction when the grid ran under a fault regime
    /// (`None` on fault-free runs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub availability: Option<f64>,
}

impl JointCell {
    /// True when `self` dominates `other`: no worse on both energy and
    /// p95, strictly better on at least one.
    pub fn dominates(&self, other: &JointCell) -> bool {
        self.energy_j <= other.energy_j
            && self.p95_s <= other.p95_s
            && (self.energy_j < other.energy_j || self.p95_s < other.p95_s)
    }
}

/// Errors from the joint search.
#[derive(Debug)]
pub enum JointError {
    /// A candidate allocation failed to plan.
    Plan(PlanError),
    /// A cell failed to simulate.
    Sim(SimError),
    /// The grid was empty along some dimension.
    EmptyGrid,
}

impl std::fmt::Display for JointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JointError::Plan(e) => write!(f, "joint candidate failed to plan: {e}"),
            JointError::Sim(e) => write!(f, "joint cell failed to simulate: {e}"),
            JointError::EmptyGrid => write!(f, "joint grid is empty along some dimension"),
        }
    }
}

impl std::error::Error for JointError {}

impl From<PlanError> for JointError {
    fn from(e: PlanError) -> Self {
        JointError::Plan(e)
    }
}

impl From<SimError> for JointError {
    fn from(e: SimError) -> Self {
        JointError::Sim(e)
    }
}

/// Indices of the mutually non-dominated cells, ascending (ties kept:
/// two cells with identical (energy, p95) both stay on the frontier).
/// Cells with a non-finite coordinate are excluded outright — NaN
/// compares false against everything, so without the guard a degenerate
/// cell would sit "undominated" on the frontier while [`JointObjective`]
/// rightly scores it `+∞`.
pub fn pareto_frontier(cells: &[JointCell]) -> Vec<usize> {
    (0..cells.len())
        .filter(|&i| cells[i].energy_j.is_finite() && cells[i].p95_s.is_finite())
        .filter(|&i| !cells.iter().any(|c| c.dominates(&cells[i])))
        .collect()
}

/// The outcome of a joint search: every evaluated cell, the Pareto
/// frontier over (energy, p95), and the scalarised winner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointOutcome {
    /// Every evaluated cell, in candidate order.
    pub cells: Vec<JointCell>,
    /// The fleet size every cell simulated. Energy — and any saving
    /// column derived from it — is only comparable to a baseline run at
    /// this exact fleet; [`JointPlanner::fleet_for`] may raise it above
    /// the configured floor when an allocation needs more slots.
    pub fleet: usize,
    /// Indices into `cells` of the non-dominated set, ascending.
    pub frontier: Vec<usize>,
    /// Index into `cells` of the cell minimising the objective (the first
    /// such cell on ties).
    pub winner: usize,
}

impl JointOutcome {
    /// Rank cells evaluated at `fleet`: frontier + winner under
    /// `objective`. `None` when `cells` is empty.
    pub fn from_cells(
        cells: Vec<JointCell>,
        objective: JointObjective,
        fleet: usize,
    ) -> Option<Self> {
        if cells.is_empty() {
            return None;
        }
        let frontier = pareto_frontier(&cells);
        let winner = (0..cells.len())
            .min_by(|&a, &b| {
                objective
                    .score(cells[a].energy_j, cells[a].p95_s)
                    .total_cmp(&objective.score(cells[b].energy_j, cells[b].p95_s))
            })
            .expect("non-empty");
        Some(JointOutcome {
            cells,
            fleet,
            frontier,
            winner,
        })
    }

    /// The winning cell.
    pub fn winner_cell(&self) -> &JointCell {
        &self.cells[self.winner]
    }

    /// The frontier cells, in index order.
    pub fn frontier_cells(&self) -> impl Iterator<Item = &JointCell> {
        self.frontier.iter().map(|&i| &self.cells[i])
    }

    /// The evaluated cell for a specific candidate, if it was in the grid.
    pub fn cell_for(&self, candidate: &JointCandidate) -> Option<&JointCell> {
        self.cells.iter().find(|c| c.candidate == *candidate)
    }
}

/// The joint planner: generates candidate quadruples, evaluates each cell
/// against a shared catalog/trace with one drive spec end to end, and
/// ranks the results.
#[derive(Debug, Clone)]
pub struct JointPlanner {
    cfg: JointConfig,
}

impl JointPlanner {
    /// Construct from a configuration.
    pub fn new(cfg: JointConfig) -> Self {
        JointPlanner { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &JointConfig {
        &self.cfg
    }

    /// The single drive spec every cell plans and evaluates against
    /// (before any per-candidate ladder is applied).
    pub fn disk(&self) -> &DiskSpec {
        self.cfg.base.disk()
    }

    /// All candidate quadruples, in deterministic row-major order.
    pub fn candidates(&self) -> Vec<JointCandidate> {
        self.cfg.candidates()
    }

    /// Plan each allocation strategy once at `rate` (packing is policy-,
    /// discipline- and ladder-independent: none of those change the
    /// drive's capacity or transfer rate, so one plan serves a whole
    /// allocation row of the grid).
    pub fn plan_allocations(
        &self,
        catalog: &FileCatalog,
        rate: f64,
    ) -> Result<Vec<(Allocator, Plan)>, PlanError> {
        self.cfg
            .allocators
            .iter()
            .map(|&allocator| {
                let mut cfg = self.cfg.base.clone();
                cfg.allocator = allocator;
                Planner::new(cfg)
                    .plan(catalog, rate)
                    .map(|p| (allocator, p))
            })
            .collect()
    }

    /// The fleet every cell simulates: the configured floor raised to the
    /// largest allocation's slot count (energy across cells is only
    /// comparable at equal fleet, and no allocation may overflow it).
    pub fn fleet_for(&self, plans: &[(Allocator, Plan)]) -> usize {
        let largest = plans.iter().map(|(_, p)| p.disk_slots()).max().unwrap_or(0);
        self.cfg.fleet.unwrap_or(0).max(largest)
    }

    /// The per-candidate planner: base config with the candidate's
    /// allocator and discipline, the ladder applied to the one drive spec
    /// *before* the policy choice is attached — so
    /// [`Planner::power_policy`] builds the policy from the exact spec the
    /// engine runs (the ordering `run_sweep` pins). Responses aggregate in
    /// [`MetricsMode::Histogram`]: a grid holds O(buckets) per cell. A
    /// non-`None` cache lowers to `sim.cache_hierarchy`, fronting the
    /// fleet before any disk sees the request; a non-`None` fault regime
    /// lowers to `sim.faults`, so every cell replays under it.
    pub fn planner_for(&self, candidate: &JointCandidate) -> Planner {
        let mut cfg = self.cfg.base.clone();
        cfg.allocator = candidate.allocator;
        cfg.sim.discipline = candidate.discipline;
        cfg.sim.metrics = MetricsMode::Histogram;
        cfg.sim.cache_hierarchy = candidate.cache.hierarchy();
        cfg.sim.faults = self.cfg.fault.plan();
        candidate.ladder.apply(&mut cfg.sim.disk);
        cfg.policy = Some(candidate.policy);
        Planner::new(cfg)
    }

    /// Evaluate one cell: simulate `plan` under the candidate's policy,
    /// discipline and ladder over `fleet` disks.
    pub fn evaluate(
        &self,
        candidate: &JointCandidate,
        plan: &Plan,
        catalog: &FileCatalog,
        trace: &Trace,
        fleet: usize,
    ) -> Result<JointCell, JointError> {
        let planner = self.planner_for(candidate);
        let report = planner.evaluate_with_fleet(plan, catalog, trace, fleet)?;
        Ok(JointCell {
            candidate: *candidate,
            disks_used: plan.disks_used(),
            energy_j: report.energy.total_joules(),
            mean_resp_s: report.responses.mean(),
            p95_s: report.response_p95(),
            availability: report.availability.as_ref().map(|a| a.availability),
        })
    }

    /// The plan backing `candidate`'s allocation row of the grid.
    pub fn plan_for<'a>(
        &self,
        plans: &'a [(Allocator, Plan)],
        candidate: &JointCandidate,
    ) -> &'a Plan {
        &plans
            .iter()
            .find(|(a, _)| *a == candidate.allocator)
            .expect("every candidate's allocator was planned")
            .1
    }

    /// Rank evaluated cells into frontier + scalarised winner.
    pub fn outcome(&self, cells: Vec<JointCell>, fleet: usize) -> Result<JointOutcome, JointError> {
        JointOutcome::from_cells(cells, self.cfg.objective, fleet).ok_or(JointError::EmptyGrid)
    }

    /// Run the full search sequentially: plan each allocation, evaluate
    /// every quadruple, return frontier + winner. (The `experiments` crate
    /// provides the thread-fanned equivalent, `sweep::run_joint`.)
    pub fn search(
        &self,
        catalog: &FileCatalog,
        trace: &Trace,
        rate: f64,
    ) -> Result<JointOutcome, JointError> {
        let plans = self.plan_allocations(catalog, rate)?;
        let fleet = self.fleet_for(&plans);
        let candidates = self.candidates();
        let mut cells = Vec::with_capacity(candidates.len());
        for cand in &candidates {
            let plan = self.plan_for(&plans, cand);
            cells.push(self.evaluate(cand, plan, catalog, trace, fleet)?);
        }
        self.outcome(cells, fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(label: u32, energy_j: f64, p95_s: f64) -> JointCell {
        let mut candidate = JointCandidate::paper_default();
        candidate.policy = PolicyChoice::fixed(label as f64);
        JointCell {
            candidate,
            disks_used: 1,
            energy_j,
            mean_resp_s: p95_s / 2.0,
            p95_s,
            availability: None,
        }
    }

    #[test]
    fn frontier_keeps_only_non_dominated_cells() {
        let cells = vec![
            cell(0, 10.0, 1.0),
            cell(1, 5.0, 2.0),
            cell(2, 12.0, 1.5), // dominated by 0
            cell(3, 5.0, 2.5),  // dominated by 1
            cell(4, 2.0, 9.0),
        ];
        assert_eq!(pareto_frontier(&cells), vec![0, 1, 4]);
    }

    #[test]
    fn frontier_keeps_exact_ties() {
        let cells = vec![cell(0, 1.0, 1.0), cell(1, 1.0, 1.0)];
        assert_eq!(pareto_frontier(&cells), vec![0, 1]);
    }

    #[test]
    fn winner_minimises_the_product_objective() {
        let cells = vec![cell(0, 10.0, 1.0), cell(1, 4.0, 2.0), cell(2, 3.0, 5.0)];
        let out = JointOutcome::from_cells(cells, JointObjective::energy_p95(), 1).unwrap();
        assert_eq!(out.winner, 1); // 8 < 10 < 15
        assert!(out.frontier.contains(&out.winner));
    }

    #[test]
    fn objective_weights_lean_the_winner() {
        let cells = vec![cell(0, 10.0, 1.0), cell(1, 4.0, 2.0)];
        let latency_leaning = JointObjective {
            energy_weight: 0.1,
            p95_weight: 2.0,
        };
        let out = JointOutcome::from_cells(cells, latency_leaning, 1).unwrap();
        assert_eq!(out.winner, 0);
    }

    #[test]
    fn non_finite_scores_never_win() {
        let cells = vec![cell(0, f64::NAN, 1.0), cell(1, 4.0, 2.0)];
        let out = JointOutcome::from_cells(cells, JointObjective::energy_p95(), 1).unwrap();
        assert_eq!(out.winner, 1);
        // …and the NaN cell does not masquerade as Pareto-optimal either.
        assert_eq!(out.frontier, vec![1]);
    }

    #[test]
    fn empty_cells_yield_none() {
        assert!(JointOutcome::from_cells(vec![], JointObjective::energy_p95(), 1).is_none());
    }

    #[test]
    fn default_grid_covers_the_acceptance_dimensions() {
        let cfg = JointConfig::default_grid();
        assert!(cfg.allocators.len() >= 2);
        assert!(cfg.policies.len() >= 3);
        assert!(cfg.disciplines.len() >= 2);
        assert!(cfg.ladders.len() >= 2);
        assert!(!cfg.caches.is_empty());
        let cands = cfg.candidates();
        assert_eq!(
            cands.len(),
            cfg.allocators.len()
                * cfg.policies.len()
                * cfg.disciplines.len()
                * cfg.ladders.len()
                * cfg.caches.len()
        );
        // The paper's default quadruple is one of the cells, so the winner
        // can never be worse than it.
        assert!(cands.contains(&JointCandidate::paper_default()));
    }

    #[test]
    fn candidate_labels_spell_the_full_quadruple() {
        assert_eq!(
            JointCandidate::paper_default().label(),
            "pack_disks+break_even+fifo+2state"
        );
        let c = JointCandidate {
            allocator: Allocator::Concentrate,
            policy: PolicyChoice::lower_envelope(),
            discipline: DisciplineChoice::ElevatorBatch,
            ladder: LadderChoice::ThreeState,
            cache: CacheChoice::None,
        };
        assert_eq!(c.label(), "concentrate+lower_env+elevator+3state");
    }

    #[test]
    fn non_default_caches_extend_the_label() {
        let c = JointCandidate {
            cache: CacheChoice::parse("lru:16").unwrap(),
            ..JointCandidate::paper_default()
        };
        assert_eq!(c.label(), "pack_disks+break_even+fifo+2state+lru:16");
    }

    #[test]
    fn planner_for_applies_the_ladder_before_policy_construction() {
        let planner = JointPlanner::new(JointConfig::default_grid());
        let c = JointCandidate {
            allocator: Allocator::PackDisks,
            policy: PolicyChoice::EnvelopeDescent,
            discipline: DisciplineChoice::Fifo,
            ladder: LadderChoice::ThreeState,
            cache: CacheChoice::None,
        };
        let p = planner.planner_for(&c);
        // The single spec carries the three-level ladder…
        assert_eq!(p.disk().deepest_level(), 2);
        // …and the policy built from it sees all three levels: it
        // schedules a second descent step from level 1, which the
        // two-state envelope policy never does.
        let mut policy = p.power_policy();
        let step = policy.settled(0, 0, 0.0).expect("descends");
        assert!(policy.settled(0, 1, step.rest_s).is_some());
    }

    #[test]
    fn fault_choice_parses_lowers_and_labels() {
        assert!(FaultChoice::parse("").unwrap().is_none());
        assert!(FaultChoice::parse("none").unwrap().is_none());
        assert!(FaultChoice::parse("garbage!").is_err());
        let choice = FaultChoice::parse("wakefail:p=0.02 | mttr=120").unwrap();
        assert!(!choice.is_none());
        assert_eq!(choice.plan().wakefail_p, 0.02);
        assert!(choice.label().contains("wakefail"));
        // The regime lowers into every cell's sim config…
        let mut cfg = JointConfig::default_grid();
        cfg.fault = choice;
        let planner = JointPlanner::new(cfg);
        let p = planner.planner_for(&JointCandidate::paper_default());
        assert_eq!(p.config().sim.faults.wakefail_p, 0.02);
        // …and the default regime leaves the fault-free fast path intact.
        let p = JointPlanner::new(JointConfig::default_grid())
            .planner_for(&JointCandidate::paper_default());
        assert!(p.config().sim.faults.is_none());
    }

    #[test]
    fn faulted_search_reports_availability_on_every_cell() {
        let catalog = FileCatalog::paper_table1(200, 0);
        let trace = Trace::poisson(&catalog, 0.1, 300.0, 9);
        let mut cfg = JointConfig::default_grid();
        cfg.allocators = vec![Allocator::PackDisks];
        cfg.policies = vec![PolicyChoice::break_even()];
        cfg.disciplines = vec![DisciplineChoice::Fifo];
        cfg.ladders = vec![LadderChoice::TwoState];
        cfg.fault = FaultChoice::parse("transient:p=0.01 | wakefail:p=0.1").unwrap();
        let out = JointPlanner::new(cfg)
            .search(&catalog, &trace, 0.1)
            .unwrap();
        for c in &out.cells {
            let a = c.availability.expect("faulted cells carry availability");
            assert!((0.0..=1.0).contains(&a), "availability {a}");
        }
    }

    #[test]
    fn planner_for_lowers_the_cache_choice_into_the_sim_config() {
        let planner = JointPlanner::new(JointConfig::default_grid());
        let cached = JointCandidate {
            cache: CacheChoice::parse("lru:2+lru:16").unwrap(),
            ..JointCandidate::paper_default()
        };
        let p = planner.planner_for(&cached);
        let hierarchy = p.config().sim.cache_hierarchy.as_ref().expect("cache set");
        assert_eq!(hierarchy.tiers.len(), 2);
        // The cache-free default leaves the sim config untouched.
        let p = planner.planner_for(&JointCandidate::paper_default());
        assert!(p.config().sim.cache_hierarchy.is_none());
    }

    #[test]
    fn search_on_a_tiny_grid_is_deterministic_and_ranked() {
        let catalog = FileCatalog::paper_table1(300, 0);
        let trace = Trace::poisson(&catalog, 0.1, 300.0, 21);
        let mut cfg = JointConfig::default_grid();
        // Shrink the grid so the unit test stays fast: 2×2×1×2 = 8 cells.
        cfg.allocators = vec![Allocator::PackDisks, Allocator::Concentrate];
        cfg.policies = vec![PolicyChoice::break_even(), PolicyChoice::never()];
        cfg.disciplines = vec![DisciplineChoice::Fifo];
        let planner = JointPlanner::new(cfg);
        let a = planner.search(&catalog, &trace, 0.1).unwrap();
        let b = planner.search(&catalog, &trace, 0.1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cells.len(), 8);
        assert!(!a.frontier.is_empty());
        for c in &a.cells {
            assert!(c.energy_j > 0.0);
        }
        // Sleeping policies beat never-spin-down on energy at equal
        // allocation/discipline/ladder.
        let be = a
            .cell_for(&JointCandidate::paper_default())
            .expect("paper default in grid");
        let never = a
            .cell_for(&JointCandidate {
                policy: PolicyChoice::never(),
                ..JointCandidate::paper_default()
            })
            .unwrap();
        assert!(be.energy_j <= never.energy_j + 1e-9);
    }
}
