//! Periodic reorganization (§1) and popularity-drift migration (§6).
//!
//! The paper applies its "off-line" allocation "in a semi-dynamic manner by
//! accumulating access statistics over periodic intervals and performing
//! reorganization of file allocations", and lists as future work "dynamic
//! decisions about migrating files between disks if … the frequency of
//! retrieval of a file deviates significantly from the initial estimates".
//!
//! [`plan_reorg`] implements the reorganization step: given the current
//! assignment and *fresh* load estimates, it recomputes a `Pack_Disks`
//! allocation and derives a [`MigrationPlan`] — which files move where and
//! how many bytes that costs. New disk indices are matched to old disks by
//! maximum byte overlap (greedy), so an allocation that barely changed
//! produces a near-empty plan instead of a full reshuffle.

use serde::{Deserialize, Serialize};
use spindown_packing::{pack_disks, Assignment, Instance};

/// One file move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// The file (instance/catalog index).
    pub item: usize,
    /// Source disk (old assignment's index).
    pub from: usize,
    /// Destination disk (old assignment's index space; new disks get fresh
    /// indices past the old fleet).
    pub to: usize,
}

/// The outcome of a reorganization pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The new assignment, with disks renumbered into the old index space
    /// wherever an overlap match exists.
    pub new_assignment: Assignment,
    /// Files that change disks.
    pub moves: Vec<Move>,
    /// Total bytes that must be copied.
    pub bytes_moved: u64,
    /// Seconds of transfer time the migration costs (read + write at the
    /// given rate; a single-stream estimate).
    pub migration_seconds: f64,
}

impl MigrationPlan {
    /// Fraction of all catalog bytes that must move.
    pub fn moved_fraction(&self, total_bytes: u64) -> f64 {
        if total_bytes == 0 {
            0.0
        } else {
            self.bytes_moved as f64 / total_bytes as f64
        }
    }
}

/// Plan a reorganization: re-pack `instance` (with *updated* loads) and
/// diff against `current`. `sizes_bytes[i]` is file `i`'s size;
/// `transfer_rate_bps` prices the migration.
///
/// # Panics
/// If `sizes_bytes` is shorter than the instance.
pub fn plan_reorg(
    current: &Assignment,
    instance: &Instance,
    sizes_bytes: &[u64],
    transfer_rate_bps: f64,
) -> MigrationPlan {
    assert!(sizes_bytes.len() >= instance.len());
    assert!(transfer_rate_bps > 0.0);
    let fresh = pack_disks(instance);
    let relabelled = relabel_by_overlap(current, &fresh, sizes_bytes, instance.len());

    let old_map = current.item_to_disk(instance.len());
    let new_map = relabelled.item_to_disk(instance.len());
    let mut moves = Vec::new();
    let mut bytes_moved = 0u64;
    for item in 0..instance.len() {
        let (from, to) = (old_map[item], new_map[item]);
        if from != to && from != usize::MAX {
            moves.push(Move { item, from, to });
            bytes_moved += sizes_bytes[item];
        }
    }
    // Each moved byte is read once and written once.
    let migration_seconds = 2.0 * bytes_moved as f64 / transfer_rate_bps;
    MigrationPlan {
        new_assignment: relabelled,
        moves,
        bytes_moved,
        migration_seconds,
    }
}

/// Renumber `fresh`'s disks into `current`'s index space by greedy maximum
/// byte overlap; unmatched fresh disks get indices past the old fleet.
fn relabel_by_overlap(
    current: &Assignment,
    fresh: &Assignment,
    sizes_bytes: &[u64],
    n_items: usize,
) -> Assignment {
    let old_map = current.item_to_disk(n_items);
    // overlap[new][old] in bytes
    let mut overlaps: Vec<(u64, usize, usize)> = Vec::new(); // (bytes, new, old)
    for (new_idx, bin) in fresh.disks.iter().enumerate() {
        let mut per_old: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for &item in &bin.items {
            let old = old_map[item];
            if old != usize::MAX {
                *per_old.entry(old).or_default() += sizes_bytes[item];
            }
        }
        for (old, bytes) in per_old {
            overlaps.push((bytes, new_idx, old));
        }
    }
    // Greedy: largest overlaps first, each new/old disk used once.
    overlaps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut new_to_label = vec![usize::MAX; fresh.disks.len()];
    let mut old_taken = vec![false; current.disks.len()];
    for (_, new_idx, old) in overlaps {
        if new_to_label[new_idx] == usize::MAX && !old_taken[old] {
            new_to_label[new_idx] = old;
            old_taken[old] = true;
        }
    }
    let mut next_fresh_label = current.disks.len();
    for label in new_to_label.iter_mut() {
        if *label == usize::MAX {
            *label = next_fresh_label;
            next_fresh_label += 1;
        }
    }
    // Build the relabelled assignment: slots up to the max label.
    let slots = next_fresh_label.max(current.disks.len());
    let mut disks = vec![spindown_packing::DiskBin::default(); slots];
    for (new_idx, bin) in fresh.disks.iter().enumerate() {
        disks[new_to_label[new_idx]] = bin.clone();
    }
    Assignment { disks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_packing::{Instance, PackItem};

    fn instance(loads: &[f64]) -> (Instance, Vec<u64>) {
        let sizes: Vec<u64> = (0..loads.len()).map(|i| 100 + i as u64).collect();
        let items = loads
            .iter()
            .zip(&sizes)
            .map(|(&l, &s)| PackItem {
                s: s as f64 / 1_000.0,
                l,
            })
            .collect();
        (Instance::new(items).unwrap(), sizes)
    }

    #[test]
    fn unchanged_loads_need_no_migration() {
        let (inst, sizes) = instance(&[0.3, 0.2, 0.4, 0.1]);
        let current = pack_disks(&inst);
        let plan = plan_reorg(&current, &inst, &sizes, 72e6);
        assert!(plan.moves.is_empty(), "spurious moves: {:?}", plan.moves);
        assert_eq!(plan.bytes_moved, 0);
        assert_eq!(plan.migration_seconds, 0.0);
        assert_eq!(
            plan.new_assignment.item_to_disk(inst.len()),
            current.item_to_disk(inst.len())
        );
    }

    #[test]
    fn drifted_loads_produce_a_feasible_new_assignment() {
        let (inst_old, sizes) = instance(&[0.30, 0.20, 0.40, 0.10, 0.05, 0.25]);
        let current = pack_disks(&inst_old);
        // Popularities shift drastically.
        let (inst_new, _) = instance(&[0.05, 0.45, 0.10, 0.45, 0.40, 0.02]);
        let plan = plan_reorg(&current, &inst_new, &sizes, 72e6);
        plan.new_assignment.verify(&inst_new).unwrap();
        // Moves are consistent with the new map.
        let new_map = plan.new_assignment.item_to_disk(inst_new.len());
        let old_map = current.item_to_disk(inst_old.len());
        for m in &plan.moves {
            assert_eq!(old_map[m.item], m.from);
            assert_eq!(new_map[m.item], m.to);
            assert_ne!(m.from, m.to);
        }
        // bytes_moved equals the sum of moved sizes
        let expect: u64 = plan.moves.iter().map(|m| sizes[m.item]).sum();
        assert_eq!(plan.bytes_moved, expect);
        assert!((plan.migration_seconds - 2.0 * expect as f64 / 72e6).abs() < 1e-12);
    }

    #[test]
    fn relabelling_minimises_gratuitous_moves() {
        // Two clearly separable groups; re-packing the same instance with
        // items listed in a different internal order must not relabel the
        // disks and cause fake migrations.
        let (inst, sizes) = instance(&[0.9, 0.9, 0.05, 0.05]);
        let current = pack_disks(&inst);
        let plan = plan_reorg(&current, &inst, &sizes, 72e6);
        assert_eq!(plan.bytes_moved, 0);
    }

    #[test]
    fn moved_fraction() {
        let plan = MigrationPlan {
            new_assignment: Assignment::default(),
            moves: vec![],
            bytes_moved: 250,
            migration_seconds: 0.0,
        };
        assert!((plan.moved_fraction(1_000) - 0.25).abs() < 1e-12);
        assert_eq!(plan.moved_fraction(0), 0.0);
    }

    #[test]
    fn growth_adds_fresh_disk_labels() {
        // New instance needs more disks than the old fleet had.
        let (small, sizes_small) = instance(&[0.2, 0.2]);
        let current = pack_disks(&small);
        let slots_before = current.disk_slots();
        let loads: Vec<f64> = (0..40).map(|i| 0.3 + 0.01 * (i % 3) as f64).collect();
        let (big, _sizes_big) = instance(&loads);
        // sizes for the bigger instance
        let sizes: Vec<u64> = (0..big.len()).map(|i| 100 + i as u64).collect();
        let _ = sizes_small;
        let plan = plan_reorg(&current, &big, &sizes, 72e6);
        plan.new_assignment.verify(&big).unwrap();
        assert!(plan.new_assignment.disk_slots() > slots_before);
    }
}
