#![warn(missing_docs)]
//! # spindown-core
//!
//! The high-level API of the spindown system: plan a power-aware file
//! allocation for a catalog and workload, evaluate it in simulation, and
//! quantify the power/response-time trade-off against baselines — i.e. the
//! workflow of Otoo, Rotem & Tsao (IPPS 2009) as a library.
//!
//! ```
//! use spindown_core::{Planner, PlannerConfig};
//! use spindown_workload::{FileCatalog, Trace};
//!
//! let catalog = FileCatalog::paper_table1(500, 0);
//! let planner = Planner::new(PlannerConfig::default());
//! // Plan an allocation for an aggregate arrival rate of 1 request/s.
//! let plan = planner.plan(&catalog, 1.0).unwrap();
//! assert!(plan.disks_used() >= 1);
//!
//! // Evaluate it on a concrete trace.
//! let trace = Trace::poisson(&catalog, 1.0, 300.0, 7);
//! let report = planner.evaluate(&plan, &catalog, &trace).unwrap();
//! assert_eq!(report.responses.len(), trace.len());
//! ```

pub mod comparison;
pub mod joint;
pub mod planner;
pub mod policy;
pub mod reorg;
pub mod writes;

pub use comparison::{compare, Comparison};
pub use joint::{
    pareto_frontier, FaultChoice, JointCandidate, JointCell, JointConfig, JointError,
    JointObjective, JointOutcome, JointPlanner,
};
pub use planner::{Plan, PlanError, Planner, PlannerConfig, ServiceModel};
pub use policy::PolicyChoice;
pub use reorg::{plan_reorg, MigrationPlan};
// Queue disciplines select *how* each disk orders its pending requests,
// exactly as `PolicyChoice` selects *when* it sleeps; re-exported so
// planner/sweep callers configure both from one place.
pub use spindown_sim::discipline::DisciplineChoice;
// The metrics mode picks *how much memory* evaluating a plan costs (exact
// samples vs a constant-memory streaming histogram), the same way the
// discipline picks how each disk orders work; re-exported so sweep/planner
// callers configure everything from one place.
pub use spindown_sim::metrics::MetricsMode;
// The ladder choice picks *how many power levels* each drive descends
// through (the paper's two-state machine vs a low-RPM three-state ladder),
// the sweep grid's fourth dimension; re-exported alongside the policy and
// discipline choices it composes with.
pub use spindown_disk::LadderChoice;
// The cache choice picks *what fronts the fleet* (nothing, a flat LRU, or
// a DRAM→SSD hierarchy), the joint grid's fifth dimension; re-exported
// with the policy picker so planner/sweep callers name tiers directly.
pub use spindown_sim::hierarchy::{CacheChoice, CachePolicyChoice};
// The fault plan picks *what goes wrong* during a replay (crashes,
// transient errors, wake failures, fail-slow windows); re-exported so
// planner callers build a `FaultChoice` regime without a workload import.
pub use spindown_workload::FaultPlan;
// The rate curve picks *how the offered load moves* over a replay
// (diurnal cycles, flash crowds, tenant ramps), and the windowed report
// is how that movement shows up in the results — time-resolved metrics
// instead of one end-of-run aggregate; re-exported together so callers
// drive and read a non-stationary experiment from one place.
pub use spindown_sim::windows::{WindowRow, WindowedReport};
pub use spindown_workload::RateCurve;
pub use writes::{WriteFit, WritePlacer};
