//! Policy selection: a closed, serialisable description of *which* spin-down
//! policy to run, and the factory that builds the live [`PowerPolicy`] for a
//! drive.
//!
//! The simulator consumes policies as boxed trait objects, and randomised
//! policies are deliberately single-use (each run re-seeds). A
//! [`PolicyChoice`] is the value-semantics handle the planner and the
//! experiment sweeps pass around instead: `Copy`, comparable, and buildable
//! into a fresh policy instance any number of times.

use serde::{Deserialize, Serialize};
use spindown_analysis::online::{
    AdaptivePolicy, EnvelopeDescentPolicy, LowerEnvelopePolicy, SkiRentalPolicy,
};
use spindown_disk::DiskSpec;
use spindown_sim::config::ThresholdPolicy;
use spindown_sim::policy::{PowerPolicy, TimeoutPolicy};

/// Which spin-down policy a simulation should run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// The paper's fixed-threshold family (Fixed / BreakEven / Never).
    Threshold(ThresholdPolicy),
    /// The e/(e−1)-competitive randomised ski-rental policy; β derives from
    /// the drive (`E_over / P_idle`).
    SkiRental {
        /// RNG seed — one seed, one reproducible run.
        seed: u64,
    },
    /// The exponential-average adaptive idle predictor with break-even
    /// watchdog; the break-even time derives from the drive.
    Adaptive {
        /// Smoothing factor in (0, 1].
        alpha: f64,
    },
    /// The deterministic multi-state lower-envelope descent: step into
    /// each ladder level at its cost-line intersection time (2-competitive;
    /// the break-even timeout on a two-state ladder).
    EnvelopeDescent,
    /// The probability-based multi-state lower-envelope policy: per-level
    /// descent thresholds minimise expected cost over a sliding window of
    /// observed idle gaps.
    LowerEnvelope {
        /// Gaps remembered per disk (≥ 8; 32 is a good default).
        window: u32,
    },
}

impl PolicyChoice {
    /// The paper's default: the drive's break-even threshold.
    pub fn break_even() -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::BreakEven)
    }

    /// A fixed threshold in seconds.
    pub fn fixed(threshold_s: f64) -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::Fixed(threshold_s))
    }

    /// Never spin down.
    pub fn never() -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::Never)
    }

    /// The probability-based lower-envelope policy with its default
    /// 32-gap window.
    pub fn lower_envelope() -> Self {
        PolicyChoice::LowerEnvelope { window: 32 }
    }

    /// Build a fresh policy instance for `spec`. Randomised policies come
    /// back identically seeded every time, so repeated runs of the same
    /// choice are reproducible. Ladder-aware policies (envelope descent,
    /// lower envelope) read `spec.power_ladder()`, so hand them the spec
    /// the simulation will actually run.
    pub fn build(&self, spec: &DiskSpec) -> Box<dyn PowerPolicy> {
        match *self {
            PolicyChoice::Threshold(t) => Box::new(TimeoutPolicy::from_config(t, spec)),
            PolicyChoice::SkiRental { seed } => Box::new(SkiRentalPolicy::for_drive(spec, seed)),
            PolicyChoice::Adaptive { alpha } => Box::new(AdaptivePolicy::for_drive(spec, alpha)),
            PolicyChoice::EnvelopeDescent => Box::new(EnvelopeDescentPolicy::for_drive(spec)),
            PolicyChoice::LowerEnvelope { window } => {
                Box::new(LowerEnvelopePolicy::for_drive(spec, window as usize))
            }
        }
    }

    /// Short stable label for figures and CSV notes.
    pub fn label(&self) -> String {
        match *self {
            PolicyChoice::Threshold(ThresholdPolicy::Fixed(s)) => format!("fixed_{s:.0}s"),
            PolicyChoice::Threshold(ThresholdPolicy::BreakEven) => "break_even".into(),
            PolicyChoice::Threshold(ThresholdPolicy::Never) => "never".into(),
            PolicyChoice::SkiRental { .. } => "ski_rental".into(),
            PolicyChoice::Adaptive { alpha } => {
                format!("adaptive_a{:02}", (alpha * 100.0).round() as u32)
            }
            PolicyChoice::EnvelopeDescent => "envelope".into(),
            PolicyChoice::LowerEnvelope { .. } => "lower_env".into(),
        }
    }
}

impl Default for PolicyChoice {
    fn default() -> Self {
        Self::break_even()
    }
}

impl From<ThresholdPolicy> for PolicyChoice {
    fn from(t: ThresholdPolicy) -> Self {
        PolicyChoice::Threshold(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        let spec = DiskSpec::seagate_st3500630as();
        let choices = [
            PolicyChoice::fixed(30.0),
            PolicyChoice::break_even(),
            PolicyChoice::never(),
            PolicyChoice::SkiRental { seed: 1 },
            PolicyChoice::Adaptive { alpha: 0.5 },
            PolicyChoice::EnvelopeDescent,
            PolicyChoice::lower_envelope(),
        ];
        for c in choices {
            let mut p = c.build(&spec);
            // Every policy must answer an idle-start consultation.
            let d = p.settled(0, 0, 0.0);
            match c {
                PolicyChoice::Threshold(ThresholdPolicy::Never) => assert_eq!(d, None),
                _ => assert!(d.is_some()),
            }
            assert!(!p.name().is_empty());
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn ladder_policies_read_the_spec_ladder() {
        let spec = DiskSpec::seagate_st3500630as();
        let three = spec
            .clone()
            .with_ladder(Some(spindown_disk::PowerLadder::with_low_rpm(&spec)));
        // On the three-level ladder the envelope policy steps into level 1
        // first; on the two-state ladder it goes straight to level 1 (the
        // deepest) at the aggregate break-even.
        let mut p2 = PolicyChoice::EnvelopeDescent.build(&spec);
        let mut p3 = PolicyChoice::EnvelopeDescent.build(&three);
        let s2 = p2.settled(0, 0, 0.0).unwrap();
        let s3 = p3.settled(0, 0, 0.0).unwrap();
        assert_eq!(s2.to_level, 1);
        assert_eq!(s3.to_level, 1);
        assert!(s3.rest_s < s2.rest_s, "low-RPM pays off sooner");
        assert!(p3.settled(0, 1, s3.rest_s).is_some());
        assert!(p2.settled(0, 1, s2.rest_s).is_none());
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        assert_eq!(PolicyChoice::fixed(1800.0).label(), "fixed_1800s");
        assert_eq!(PolicyChoice::break_even().label(), "break_even");
        assert_eq!(PolicyChoice::never().label(), "never");
        assert_eq!(PolicyChoice::SkiRental { seed: 9 }.label(), "ski_rental");
        assert_eq!(
            PolicyChoice::Adaptive { alpha: 0.25 }.label(),
            "adaptive_a25"
        );
        assert_eq!(PolicyChoice::EnvelopeDescent.label(), "envelope");
        assert_eq!(PolicyChoice::lower_envelope().label(), "lower_env");
    }

    #[test]
    fn rebuilt_randomised_policies_replay_identically() {
        let spec = DiskSpec::seagate_st3500630as();
        let c = PolicyChoice::SkiRental { seed: 404 };
        let mut a = c.build(&spec);
        let mut b = c.build(&spec);
        for i in 0..50 {
            assert_eq!(a.settled(0, 0, i as f64), b.settled(0, 0, i as f64));
        }
    }

    #[test]
    fn threshold_conversion() {
        let c: PolicyChoice = ThresholdPolicy::Fixed(5.0).into();
        assert_eq!(c, PolicyChoice::fixed(5.0));
        assert_eq!(PolicyChoice::default(), PolicyChoice::break_even());
    }
}
