//! Policy selection: a closed, serialisable description of *which* spin-down
//! policy to run, and the factory that builds the live [`PowerPolicy`] for a
//! drive.
//!
//! The simulator consumes policies as boxed trait objects, and randomised
//! policies are deliberately single-use (each run re-seeds). A
//! [`PolicyChoice`] is the value-semantics handle the planner and the
//! experiment sweeps pass around instead: `Copy`, comparable, and buildable
//! into a fresh policy instance any number of times.

use serde::{Deserialize, Serialize};
use spindown_analysis::online::{AdaptivePolicy, SkiRentalPolicy};
use spindown_disk::DiskSpec;
use spindown_sim::config::ThresholdPolicy;
use spindown_sim::policy::{PowerPolicy, TimeoutPolicy};

/// Which spin-down policy a simulation should run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// The paper's fixed-threshold family (Fixed / BreakEven / Never).
    Threshold(ThresholdPolicy),
    /// The e/(e−1)-competitive randomised ski-rental policy; β derives from
    /// the drive (`E_over / P_idle`).
    SkiRental {
        /// RNG seed — one seed, one reproducible run.
        seed: u64,
    },
    /// The exponential-average adaptive idle predictor with break-even
    /// watchdog; the break-even time derives from the drive.
    Adaptive {
        /// Smoothing factor in (0, 1].
        alpha: f64,
    },
}

impl PolicyChoice {
    /// The paper's default: the drive's break-even threshold.
    pub fn break_even() -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::BreakEven)
    }

    /// A fixed threshold in seconds.
    pub fn fixed(threshold_s: f64) -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::Fixed(threshold_s))
    }

    /// Never spin down.
    pub fn never() -> Self {
        PolicyChoice::Threshold(ThresholdPolicy::Never)
    }

    /// Build a fresh policy instance for `spec`. Randomised policies come
    /// back identically seeded every time, so repeated runs of the same
    /// choice are reproducible.
    pub fn build(&self, spec: &DiskSpec) -> Box<dyn PowerPolicy> {
        match *self {
            PolicyChoice::Threshold(t) => Box::new(TimeoutPolicy::from_config(t, spec)),
            PolicyChoice::SkiRental { seed } => Box::new(SkiRentalPolicy::for_drive(spec, seed)),
            PolicyChoice::Adaptive { alpha } => Box::new(AdaptivePolicy::for_drive(spec, alpha)),
        }
    }

    /// Short stable label for figures and CSV notes.
    pub fn label(&self) -> String {
        match *self {
            PolicyChoice::Threshold(ThresholdPolicy::Fixed(s)) => format!("fixed_{s:.0}s"),
            PolicyChoice::Threshold(ThresholdPolicy::BreakEven) => "break_even".into(),
            PolicyChoice::Threshold(ThresholdPolicy::Never) => "never".into(),
            PolicyChoice::SkiRental { .. } => "ski_rental".into(),
            PolicyChoice::Adaptive { alpha } => {
                format!("adaptive_a{:02}", (alpha * 100.0).round() as u32)
            }
        }
    }
}

impl Default for PolicyChoice {
    fn default() -> Self {
        Self::break_even()
    }
}

impl From<ThresholdPolicy> for PolicyChoice {
    fn from(t: ThresholdPolicy) -> Self {
        PolicyChoice::Threshold(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        let spec = DiskSpec::seagate_st3500630as();
        let choices = [
            PolicyChoice::fixed(30.0),
            PolicyChoice::break_even(),
            PolicyChoice::never(),
            PolicyChoice::SkiRental { seed: 1 },
            PolicyChoice::Adaptive { alpha: 0.5 },
        ];
        for c in choices {
            let mut p = c.build(&spec);
            // Every policy must answer an idle-start consultation.
            let d = p.idle_started(0, 0.0);
            match c {
                PolicyChoice::Threshold(ThresholdPolicy::Never) => assert_eq!(d, None),
                _ => assert!(d.is_some()),
            }
            assert!(!p.name().is_empty());
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn labels_are_distinct_and_stable() {
        assert_eq!(PolicyChoice::fixed(1800.0).label(), "fixed_1800s");
        assert_eq!(PolicyChoice::break_even().label(), "break_even");
        assert_eq!(PolicyChoice::never().label(), "never");
        assert_eq!(PolicyChoice::SkiRental { seed: 9 }.label(), "ski_rental");
        assert_eq!(
            PolicyChoice::Adaptive { alpha: 0.25 }.label(),
            "adaptive_a25"
        );
    }

    #[test]
    fn rebuilt_randomised_policies_replay_identically() {
        let spec = DiskSpec::seagate_st3500630as();
        let c = PolicyChoice::SkiRental { seed: 404 };
        let mut a = c.build(&spec);
        let mut b = c.build(&spec);
        for i in 0..50 {
            assert_eq!(a.idle_started(0, i as f64), b.idle_started(0, i as f64));
        }
    }

    #[test]
    fn threshold_conversion() {
        let c: PolicyChoice = ThresholdPolicy::Fixed(5.0).into();
        assert_eq!(c, PolicyChoice::fixed(5.0));
        assert_eq!(PolicyChoice::default(), PolicyChoice::break_even());
    }
}
