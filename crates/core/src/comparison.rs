//! Head-to-head comparison of two allocation policies under identical
//! workloads — the measurement behind Figures 2 and 3.

use serde::{Deserialize, Serialize};
use spindown_sim::engine::{SimError, Simulator};
use spindown_sim::metrics::SimReport;
use spindown_workload::{FileCatalog, Trace};

use crate::planner::{Plan, Planner};

/// Result of comparing a candidate plan against a reference plan on the
/// same catalog, trace and fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Comparison {
    /// The candidate's simulation report (e.g. `Pack_Disks`).
    pub candidate: SimReport,
    /// The reference's simulation report (e.g. random placement).
    pub reference: SimReport,
}

impl Comparison {
    /// Power saving of the candidate relative to the reference:
    /// `1 − E_candidate/E_reference` (Figure 2's y-axis).
    pub fn power_saving(&self) -> f64 {
        let e_ref = self.reference.energy.total_joules();
        if e_ref <= 0.0 {
            return 0.0;
        }
        1.0 - self.candidate.energy.total_joules() / e_ref
    }

    /// Mean-response-time ratio candidate/reference (Figure 3's y-axis).
    /// `None` when the reference served nothing.
    pub fn response_ratio(&self) -> Option<f64> {
        let r = self.reference.responses.mean();
        if r <= 0.0 {
            return None;
        }
        Some(self.candidate.responses.mean() / r)
    }

    /// Candidate mean power, watts.
    pub fn candidate_power_w(&self) -> f64 {
        self.candidate.mean_power_w()
    }

    /// Reference mean power, watts.
    pub fn reference_power_w(&self) -> f64 {
        self.reference.mean_power_w()
    }
}

/// Run candidate and reference plans over the same trace and fleet (the
/// fleet is the larger of the two slot counts, so both see identical
/// hardware).
pub fn compare(
    planner: &Planner,
    candidate: &Plan,
    reference: &Plan,
    catalog: &FileCatalog,
    trace: &Trace,
    fleet: Option<usize>,
) -> Result<Comparison, SimError> {
    let fleet = fleet.unwrap_or_else(|| candidate.disk_slots().max(reference.disk_slots()));
    let sim = &planner.config().sim;
    let candidate_report =
        Simulator::run_with_fleet(catalog, trace, &candidate.assignment, sim, fleet)?;
    let reference_report =
        Simulator::run_with_fleet(catalog, trace, &reference.assignment, sim, fleet)?;
    Ok(Comparison {
        candidate: candidate_report,
        reference: reference_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerConfig;
    use spindown_packing::Allocator;

    #[test]
    fn pack_disks_saves_power_vs_random() {
        // A small version of the Figure 2 measurement: skewed catalog, low
        // rate → Pack_Disks concentrates load, random keeps all disks warm.
        let catalog = FileCatalog::paper_table1(600, 0);
        let rate = 0.5;
        let planner = Planner::new(PlannerConfig::default());
        let pack = planner.plan(&catalog, rate).unwrap();

        let mut rnd_cfg = PlannerConfig::default();
        rnd_cfg.allocator = Allocator::RandomFixed { disks: 40, seed: 9 };
        let rnd_planner = Planner::new(rnd_cfg);
        let random = rnd_planner.plan(&catalog, rate).unwrap();

        let trace = Trace::poisson(&catalog, rate, 2000.0, 3);
        let cmp = compare(&planner, &pack, &random, &catalog, &trace, Some(40)).unwrap();
        let saving = cmp.power_saving();
        assert!(
            saving > 0.15,
            "expected Pack_Disks to save power vs random, got {saving}"
        );
        // Both reports served every request.
        assert_eq!(cmp.candidate.responses.len(), trace.len());
        assert_eq!(cmp.reference.responses.len(), trace.len());
    }

    #[test]
    fn comparison_ratios_well_defined() {
        let catalog = FileCatalog::paper_table1(200, 0);
        let planner = Planner::new(PlannerConfig::default());
        let plan = planner.plan(&catalog, 0.2).unwrap();
        let trace = Trace::poisson(&catalog, 0.2, 500.0, 1);
        let cmp = compare(&planner, &plan, &plan, &catalog, &trace, None).unwrap();
        // identical plans → saving 0, ratio 1
        assert!(cmp.power_saving().abs() < 1e-9);
        assert!((cmp.response_ratio().unwrap() - 1.0).abs() < 1e-9);
        assert!(cmp.candidate_power_w() > 0.0);
        assert!((cmp.candidate_power_w() - cmp.reference_power_w()).abs() < 1e-9);
    }
}
