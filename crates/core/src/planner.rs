//! Planning: catalog + rate + constraints → allocation.

use serde::{Deserialize, Serialize};
use spindown_disk::mechanics::ServiceTimer;
use spindown_disk::DiskSpec;
use spindown_packing::{Allocator, Assignment, Instance, InstanceError};
use spindown_sim::config::SimConfig;
use spindown_sim::engine::{SimError, Simulator};
use spindown_sim::metrics::SimReport;
use spindown_sim::policy::PowerPolicy;
use spindown_workload::{FileCatalog, Trace};

use crate::policy::PolicyChoice;

/// How file service time is modelled when computing loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceModel {
    /// `µ_i = s_i / transfer_rate` — the paper's load definition
    /// (`l_i = r_i · s_i`, §4).
    TransferOnly,
    /// `µ_i = seek + rotation + s_i / transfer_rate` — the full mechanical
    /// model (matters only for small files).
    WithPositioning,
}

/// Configuration for [`Planner`].
///
/// The drive model lives in **one** place — `sim.disk` — and feeds
/// everything: instance building (capacity normalises sizes, transfer rate
/// defines loads), policy construction ([`Planner::power_policy`]) and
/// simulation ([`Planner::evaluate`]). Earlier versions carried a second,
/// independent `DiskSpec` for the packing side, which let a caller plan
/// against one drive and silently evaluate against another; use
/// [`PlannerConfig::with_disk`] (or set `sim.disk` directly) to swap drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// The load constraint `L` as a fraction of the disk's service capacity
    /// (the paper sweeps 0.5–0.8).
    pub load_constraint: f64,
    /// Load/service model.
    pub service_model: ServiceModel,
    /// Which allocation algorithm to run.
    pub allocator: Allocator,
    /// Simulation configuration used by [`Planner::evaluate`]; its `disk`
    /// is the single drive model for planning *and* simulation.
    pub sim: SimConfig,
    /// Spin-down policy selection. `None` (the default) derives the policy
    /// from `sim.threshold`, preserving the fixed-threshold behaviour;
    /// `Some(choice)` overrides it, opening the full online-policy space.
    pub policy: Option<PolicyChoice>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            load_constraint: 0.7,
            service_model: ServiceModel::TransferOnly,
            allocator: Allocator::PackDisks,
            sim: SimConfig::paper_default(),
            policy: None,
        }
    }
}

impl PlannerConfig {
    /// Swap the drive model everywhere at once (packing, policies,
    /// simulation).
    pub fn with_disk(mut self, disk: DiskSpec) -> Self {
        self.sim.disk = disk;
        self
    }

    /// The single drive model this configuration plans and evaluates with.
    pub fn disk(&self) -> &DiskSpec {
        &self.sim.disk
    }
}

/// Errors from planning.
#[derive(Debug)]
pub enum PlanError {
    /// The instance could not be built (a file exceeds disk capacity in
    /// size or load).
    Instance(InstanceError),
    /// The allocator failed (e.g. random placement ran out of space).
    Allocation(spindown_packing::FeasibilityError),
    /// The load constraint is outside (0, 1].
    BadLoadConstraint(f64),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Instance(e) => write!(f, "cannot build packing instance: {e}"),
            PlanError::Allocation(e) => write!(f, "allocation failed: {e}"),
            PlanError::BadLoadConstraint(l) => {
                write!(f, "load constraint {l} outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<InstanceError> for PlanError {
    fn from(e: InstanceError) -> Self {
        PlanError::Instance(e)
    }
}

impl From<spindown_packing::FeasibilityError> for PlanError {
    fn from(e: spindown_packing::FeasibilityError) -> Self {
        PlanError::Allocation(e)
    }
}

/// A planned allocation plus the instance it solves.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The file→disk assignment.
    pub assignment: Assignment,
    /// The normalised 2DVPP instance.
    pub instance: Instance,
    /// The arrival rate the loads were computed for.
    pub rate: f64,
    /// The load constraint used.
    pub load_constraint: f64,
}

impl Plan {
    /// Disks the plan actually loads.
    pub fn disks_used(&self) -> usize {
        self.assignment.disks_used()
    }

    /// Total disk slots (≥ `disks_used`; random placement keeps empties).
    pub fn disk_slots(&self) -> usize {
        self.assignment.disk_slots()
    }

    /// Empirical approximation ratio against the packing lower bound.
    pub fn approximation_ratio(&self) -> Option<f64> {
        spindown_packing::bounds::approximation_ratio(&self.instance, self.disks_used())
    }
}

/// Plans allocations and evaluates them in simulation.
#[derive(Debug, Clone)]
pub struct Planner {
    cfg: PlannerConfig,
}

impl Planner {
    /// Construct from a configuration.
    pub fn new(cfg: PlannerConfig) -> Self {
        Planner { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.cfg
    }

    /// The drive model the planner packs against *and* simulates with.
    pub fn disk(&self) -> &DiskSpec {
        &self.cfg.sim.disk
    }

    /// The per-byte service function implied by the config.
    pub fn service_time(&self, bytes: u64) -> f64 {
        let timer = ServiceTimer::new(&self.cfg.sim.disk);
        match self.cfg.service_model {
            ServiceModel::TransferOnly => timer.transfer_time(bytes),
            ServiceModel::WithPositioning => timer.service_time(bytes),
        }
    }

    /// Build the normalised packing instance for a catalog at `rate`
    /// requests/second: `s_i = size_i/S`, `l_i = rate·p_i·µ_i / L`.
    pub fn instance(&self, catalog: &FileCatalog, rate: f64) -> Result<Instance, PlanError> {
        let l = self.cfg.load_constraint;
        if !(l > 0.0 && l <= 1.0) {
            return Err(PlanError::BadLoadConstraint(l));
        }
        let sizes: Vec<u64> = catalog.iter().map(|f| f.size_bytes).collect();
        let loads = catalog.loads(rate, |b| self.service_time(b));
        Ok(Instance::from_raw(
            &sizes,
            &loads,
            self.cfg.sim.disk.capacity_bytes,
            l,
        )?)
    }

    /// Plan an allocation for `catalog` at `rate` requests/second.
    pub fn plan(&self, catalog: &FileCatalog, rate: f64) -> Result<Plan, PlanError> {
        let instance = self.instance(catalog, rate)?;
        let assignment = self.cfg.allocator.run(&instance)?;
        Ok(Plan {
            assignment,
            instance,
            rate,
            load_constraint: self.cfg.load_constraint,
        })
    }

    /// The queue discipline every simulated disk runs (configured through
    /// `sim.discipline`, FIFO by default).
    pub fn discipline(&self) -> spindown_sim::discipline::DisciplineChoice {
        self.cfg.sim.discipline
    }

    /// The effective spin-down policy choice: the explicit `policy` field,
    /// or the fixed-threshold family configured in `sim.threshold`.
    pub fn policy_choice(&self) -> PolicyChoice {
        self.cfg
            .policy
            .unwrap_or(PolicyChoice::Threshold(self.cfg.sim.threshold))
    }

    /// Build a fresh live policy instance for this planner's drive.
    pub fn power_policy(&self) -> Box<dyn PowerPolicy> {
        self.policy_choice().build(&self.cfg.sim.disk)
    }

    /// Simulate a plan against a trace over exactly the plan's disks.
    pub fn evaluate(
        &self,
        plan: &Plan,
        catalog: &FileCatalog,
        trace: &Trace,
    ) -> Result<SimReport, SimError> {
        self.evaluate_with_fleet(plan, catalog, trace, plan.disk_slots())
    }

    /// Simulate a plan over a fixed fleet (the paper keeps 100 disks).
    pub fn evaluate_with_fleet(
        &self,
        plan: &Plan,
        catalog: &FileCatalog,
        trace: &Trace,
        fleet: usize,
    ) -> Result<SimReport, SimError> {
        Simulator::run_sharded(
            catalog,
            trace,
            &plan.assignment,
            &self.cfg.sim,
            fleet,
            |_| self.power_policy(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_sim::config::ThresholdPolicy;

    fn catalog() -> FileCatalog {
        FileCatalog::paper_table1(400, 0)
    }

    #[test]
    fn plan_is_feasible_and_bounded() {
        let planner = Planner::new(PlannerConfig::default());
        let plan = planner.plan(&catalog(), 0.5).unwrap();
        plan.assignment.verify(&plan.instance).unwrap();
        assert!(plan.disks_used() >= 1);
        assert!(plan.approximation_ratio().unwrap() >= 1.0);
    }

    #[test]
    fn higher_rate_needs_at_least_as_many_disks() {
        let planner = Planner::new(PlannerConfig::default());
        let lo = planner.plan(&catalog(), 0.1).unwrap().disks_used();
        let hi = planner.plan(&catalog(), 1.0).unwrap().disks_used();
        assert!(hi >= lo, "hi {hi} < lo {lo}");
    }

    #[test]
    fn looser_load_constraint_uses_fewer_or_equal_disks() {
        let mut cfg = PlannerConfig::default();
        cfg.load_constraint = 0.5;
        let tight = Planner::new(cfg.clone()).plan(&catalog(), 0.8).unwrap();
        cfg.load_constraint = 0.9;
        let loose = Planner::new(cfg).plan(&catalog(), 0.8).unwrap();
        assert!(loose.disks_used() <= tight.disks_used());
    }

    #[test]
    fn bad_load_constraint_rejected() {
        let mut cfg = PlannerConfig::default();
        cfg.load_constraint = 0.0;
        let err = Planner::new(cfg).plan(&catalog(), 1.0).unwrap_err();
        assert!(matches!(err, PlanError::BadLoadConstraint(_)));
    }

    #[test]
    fn infeasible_file_load_reported() {
        // Extreme rate: the most popular file alone exceeds the load cap.
        let planner = Planner::new(PlannerConfig::default());
        let err = planner.plan(&catalog(), 1e6).unwrap_err();
        assert!(matches!(err, PlanError::Instance(_)));
    }

    #[test]
    fn service_models_differ_by_positioning() {
        let mut cfg = PlannerConfig::default();
        cfg.service_model = ServiceModel::TransferOnly;
        let transfer = Planner::new(cfg.clone()).service_time(72_000_000);
        cfg.service_model = ServiceModel::WithPositioning;
        let with_pos = Planner::new(cfg).service_time(72_000_000);
        assert!((transfer - 1.0).abs() < 1e-12);
        assert!((with_pos - 1.0 - 0.0085 - 0.00416).abs() < 1e-12);
    }

    #[test]
    fn policy_override_changes_behaviour_and_stays_deterministic() {
        let cat = catalog();
        let trace = Trace::poisson(&cat, 0.2, 600.0, 3);
        let mut cfg = PlannerConfig::default();
        cfg.sim = cfg.sim.with_threshold(ThresholdPolicy::Never);
        let never = Planner::new(cfg.clone());
        let plan = never.plan(&cat, 0.2).unwrap();
        let r_never = never.evaluate(&plan, &cat, &trace).unwrap();
        assert_eq!(r_never.spin_downs, 0);

        cfg.policy = Some(crate::policy::PolicyChoice::SkiRental { seed: 11 });
        let ski = Planner::new(cfg);
        let a = ski.evaluate(&plan, &cat, &trace).unwrap();
        let b = ski.evaluate(&plan, &cat, &trace).unwrap();
        // The override takes effect (the ski policy sleeps) and repeated
        // runs replay the same seeded draws.
        assert!(a.spin_downs > 0);
        assert_eq!(a.energy.total_joules(), b.energy.total_joules());
        assert_eq!(a.responses, b.responses);
        assert_eq!(ski.policy_choice().label(), "ski_rental");
    }

    #[test]
    fn discipline_flows_through_the_planner_into_simulation() {
        use spindown_sim::discipline::DisciplineChoice;
        let cat = catalog();
        let trace = Trace::poisson(&cat, 0.5, 400.0, 9);
        let mut cfg = PlannerConfig::default();
        cfg.sim = cfg.sim.with_threshold(ThresholdPolicy::Never);
        let fifo = Planner::new(cfg.clone());
        assert_eq!(fifo.discipline(), DisciplineChoice::Fifo);
        let plan = fifo.plan(&cat, 0.5).unwrap();
        let r_fifo = fifo.evaluate(&plan, &cat, &trace).unwrap();

        cfg.sim = cfg.sim.with_discipline(DisciplineChoice::sjf());
        let sjf = Planner::new(cfg);
        assert_eq!(sjf.discipline(), DisciplineChoice::sjf());
        let a = sjf.evaluate(&plan, &cat, &trace).unwrap();
        let b = sjf.evaluate(&plan, &cat, &trace).unwrap();
        // Same requests served either way, deterministically.
        assert_eq!(a.responses.len(), r_fifo.responses.len());
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.energy.total_joules(), b.energy.total_joules());
    }

    #[test]
    fn default_policy_choice_follows_sim_threshold() {
        let mut cfg = PlannerConfig::default();
        cfg.sim = cfg.sim.with_threshold(ThresholdPolicy::Fixed(12.0));
        let planner = Planner::new(cfg);
        assert_eq!(
            planner.policy_choice(),
            crate::policy::PolicyChoice::fixed(12.0)
        );
    }

    #[test]
    fn non_default_drive_is_honoured_end_to_end() {
        // Regression for the split-brain config: planning and evaluation
        // must see the *same* non-default drive. Plan on the archival
        // drive and evaluate under Never-spin-down: the fleet then idles
        // at exactly the archival drive's idle power between requests, so
        // the report's mean power is bracketed by that drive's idle and
        // active draws — impossible if evaluation fell back to the Table 2
        // drive (9.3 W idle vs 5.0 W).
        let drive = spindown_disk::DiskSpec::archival_5400();
        let mut cfg = PlannerConfig::default().with_disk(drive.clone());
        cfg.sim = cfg.sim.with_threshold(ThresholdPolicy::Never);
        let planner = Planner::new(cfg);
        assert_eq!(planner.disk().model, drive.model);
        let cat = catalog();
        let plan = planner.plan(&cat, 0.2).unwrap();
        // The packing side normalised against the archival capacity (1 TB),
        // not the default 500 GB.
        let max_s = plan
            .instance
            .items()
            .iter()
            .map(|it| it.s)
            .fold(0.0, f64::max);
        let expected_max = 20.0e9 / drive.capacity_bytes as f64;
        assert!((max_s - expected_max).abs() < 1e-9, "max_s {max_s}");
        let trace = Trace::poisson(&cat, 0.2, 400.0, 5);
        let report = planner.evaluate(&plan, &cat, &trace).unwrap();
        let mean_w = report.energy.total_joules() / report.sim_time_s / plan.disk_slots() as f64;
        assert!(
            mean_w >= drive.idle_power_w && mean_w <= drive.active_power_w,
            "per-disk mean power {mean_w} W outside the archival drive's \
             [{}, {}] W envelope",
            drive.idle_power_w,
            drive.active_power_w
        );
        // And well below the default drive's idle floor, proving the
        // simulation did not run the Table 2 spec.
        assert!(mean_w < spindown_disk::DiskSpec::seagate_st3500630as().idle_power_w);
    }

    #[test]
    fn end_to_end_plan_and_evaluate() {
        let mut cfg = PlannerConfig::default();
        cfg.sim = cfg.sim.with_threshold(ThresholdPolicy::BreakEven);
        let planner = Planner::new(cfg);
        let cat = catalog();
        let plan = planner.plan(&cat, 0.3).unwrap();
        let trace = Trace::poisson(&cat, 0.3, 400.0, 11);
        let report = planner.evaluate(&plan, &cat, &trace).unwrap();
        assert_eq!(report.responses.len(), trace.len());
        assert!(report.energy.total_joules() > 0.0);
        // fleet evaluation with extra standby disks uses more energy
        let fleet = planner
            .evaluate_with_fleet(&plan, &cat, &trace, plan.disk_slots() + 10)
            .unwrap();
        assert!(fleet.energy.total_joules() > report.energy.total_joules());
    }
}
