//! Energy-friendly online write placement (§1 of the paper).
//!
//! "In case the access sequence includes write requests we propose to …
//! write files into an already spinning disk if sufficient space is found
//! on it or write it into any other disk (using best-fit or first-fit
//! policy) where sufficient space can be found. The written file may be
//! re-allocated to a better location later during a reorganization
//! process."
//!
//! [`WritePlacer`] implements exactly that: it tracks per-disk free space,
//! prefers disks that are currently spinning (so no spin-up energy is
//! paid), and falls back to the full fleet. Files placed by the fallback
//! path are flagged for the next [`crate::reorg`] pass.

use serde::{Deserialize, Serialize};

/// Fit policy within the preferred (spinning) and fallback disk sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteFit {
    /// First disk (lowest index) with enough space.
    FirstFit,
    /// Disk whose remaining space after the write is smallest.
    BestFit,
}

/// Outcome of one placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePlacement {
    /// The chosen disk.
    pub disk: usize,
    /// Whether the disk was spinning when chosen (no spin-up cost).
    pub on_spinning_disk: bool,
}

/// Tracks fleet free space and places incoming writes.
#[derive(Debug, Clone)]
pub struct WritePlacer {
    capacity_bytes: u64,
    used_bytes: Vec<u64>,
    fit: WriteFit,
    /// Disks that received a fallback (spun-down) write since the last
    /// reorganization — candidates for re-allocation.
    pending_reorg: Vec<usize>,
}

impl WritePlacer {
    /// A placer over `disks` drives of `capacity_bytes`, with the given
    /// per-disk `used` bytes (e.g. from an existing [`Assignment`]'s
    /// totals).
    ///
    /// # Panics
    /// If any disk is already over capacity.
    ///
    /// [`Assignment`]: spindown_packing::Assignment
    pub fn new(capacity_bytes: u64, used: Vec<u64>, fit: WriteFit) -> Self {
        for (d, &u) in used.iter().enumerate() {
            assert!(u <= capacity_bytes, "disk {d} over capacity at start");
        }
        WritePlacer {
            capacity_bytes,
            used_bytes: used,
            fit,
            pending_reorg: Vec::new(),
        }
    }

    /// Build from a packing assignment over drives of `capacity_bytes`
    /// (uses the assignment's normalised storage totals).
    pub fn from_assignment(
        assignment: &spindown_packing::Assignment,
        capacity_bytes: u64,
        fit: WriteFit,
    ) -> Self {
        let used = assignment
            .disks
            .iter()
            .map(|b| (b.total_s * capacity_bytes as f64).round() as u64)
            .collect();
        Self::new(capacity_bytes, used, fit)
    }

    /// Number of disks tracked.
    pub fn disks(&self) -> usize {
        self.used_bytes.len()
    }

    /// Free bytes on `disk`.
    pub fn free_bytes(&self, disk: usize) -> u64 {
        self.capacity_bytes - self.used_bytes[disk]
    }

    /// Disks flagged for reorganization (fallback writes since the last
    /// [`Self::clear_reorg_flags`]).
    pub fn pending_reorg(&self) -> &[usize] {
        &self.pending_reorg
    }

    /// Reset the reorganization flags (call after a reorg pass).
    pub fn clear_reorg_flags(&mut self) {
        self.pending_reorg.clear();
    }

    /// Place a write of `size_bytes`, preferring disks where
    /// `spinning[d]` is true. Returns `None` when no disk can hold the
    /// file.
    pub fn place(&mut self, size_bytes: u64, spinning: &[bool]) -> Option<WritePlacement> {
        assert_eq!(
            spinning.len(),
            self.used_bytes.len(),
            "spinning mask must cover the fleet"
        );
        // Pass 1: spinning disks only (the energy-friendly path).
        if let Some(disk) = self.pick(size_bytes, |d| spinning[d]) {
            self.commit(disk, size_bytes);
            return Some(WritePlacement {
                disk,
                on_spinning_disk: true,
            });
        }
        // Pass 2: anywhere with space; flag for reorganization.
        let disk = self.pick(size_bytes, |_| true)?;
        self.commit(disk, size_bytes);
        if !self.pending_reorg.contains(&disk) {
            self.pending_reorg.push(disk);
        }
        Some(WritePlacement {
            disk,
            on_spinning_disk: false,
        })
    }

    fn pick(&self, size_bytes: u64, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let fits = |d: usize| eligible(d) && self.used_bytes[d] + size_bytes <= self.capacity_bytes;
        match self.fit {
            WriteFit::FirstFit => (0..self.used_bytes.len()).find(|&d| fits(d)),
            WriteFit::BestFit => (0..self.used_bytes.len())
                .filter(|&d| fits(d))
                .min_by_key(|&d| self.free_bytes(d) - size_bytes),
        }
    }

    fn commit(&mut self, disk: usize, size_bytes: u64) {
        self.used_bytes[disk] += size_bytes;
        debug_assert!(self.used_bytes[disk] <= self.capacity_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placer(fit: WriteFit) -> WritePlacer {
        // 3 disks of 100 bytes, used 90/50/10
        WritePlacer::new(100, vec![90, 50, 10], fit)
    }

    #[test]
    fn prefers_spinning_disks() {
        let mut p = placer(WriteFit::FirstFit);
        // only disk 2 spinning: even though disk 1 fits, disk 2 is chosen
        let got = p.place(20, &[false, false, true]).unwrap();
        assert_eq!(got.disk, 2);
        assert!(got.on_spinning_disk);
        assert!(p.pending_reorg().is_empty());
    }

    #[test]
    fn falls_back_to_spun_down_disks_and_flags_reorg() {
        let mut p = placer(WriteFit::FirstFit);
        // spinning disk 0 has only 10 free; a 30-byte write must fall back
        let got = p.place(30, &[true, false, false]).unwrap();
        assert_eq!(got.disk, 1);
        assert!(!got.on_spinning_disk);
        assert_eq!(p.pending_reorg(), &[1]);
        p.clear_reorg_flags();
        assert!(p.pending_reorg().is_empty());
    }

    #[test]
    fn best_fit_picks_tightest_disk() {
        let mut p = placer(WriteFit::BestFit);
        // all spinning; 10-byte write → disk 0 (free 10) is tightest
        let got = p.place(10, &[true, true, true]).unwrap();
        assert_eq!(got.disk, 0);
        assert_eq!(p.free_bytes(0), 0);
    }

    #[test]
    fn first_fit_picks_lowest_index() {
        let mut p = placer(WriteFit::FirstFit);
        let got = p.place(10, &[true, true, true]).unwrap();
        assert_eq!(got.disk, 0);
    }

    #[test]
    fn rejects_when_nothing_fits() {
        let mut p = placer(WriteFit::BestFit);
        assert!(p.place(95, &[true, true, true]).is_none());
        // state unchanged
        assert_eq!(p.free_bytes(0), 10);
        assert_eq!(p.free_bytes(2), 90);
    }

    #[test]
    fn capacity_is_respected_over_many_writes() {
        let mut p = WritePlacer::new(1_000, vec![0; 4], WriteFit::BestFit);
        let spinning = vec![true; 4];
        let mut placed = 0u64;
        while let Some(w) = p.place(37, &spinning) {
            placed += 37;
            assert!(p.free_bytes(w.disk) <= 1_000);
        }
        // 4 × ⌊1000/37⌋ × 37 bytes must have been placed
        assert_eq!(placed, 4 * (1_000 / 37) * 37);
    }

    #[test]
    fn from_assignment_reads_totals() {
        use spindown_packing::{Assignment, DiskBin};
        let a = Assignment {
            disks: vec![DiskBin {
                items: vec![0],
                total_s: 0.25,
                total_l: 0.1,
            }],
        };
        let p = WritePlacer::from_assignment(&a, 1_000, WriteFit::FirstFit);
        assert_eq!(p.free_bytes(0), 750);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overfull_start_rejected() {
        let _ = WritePlacer::new(100, vec![101], WriteFit::FirstFit);
    }
}
