//! Property-based tests of the simulator's global invariants: time/energy
//! conservation, response-time lower bounds, power-state bookkeeping and
//! determinism, over randomized small workloads.

use proptest::prelude::*;
use spindown_disk::mechanics::ServiceTimer;
use spindown_disk::{DiskSpec, PowerState};
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::cache::CacheStats;
use spindown_sim::config::{ArrivalMode, SimConfig, ThresholdPolicy};
use spindown_sim::discipline::DisciplineChoice;
use spindown_sim::engine::Simulator;
use spindown_workload::trace::Request;
use spindown_workload::FaultPlan;
use spindown_workload::{FileCatalog, FileId, Trace};

/// A randomized mini-workload: n files (1–6 disks), m requests in [0, 500 s].
#[derive(Debug, Clone)]
struct MiniWorkload {
    catalog: FileCatalog,
    trace: Trace,
    assignment: Assignment,
}

fn mini_workload() -> impl Strategy<Value = MiniWorkload> {
    let files = prop::collection::vec(1_000_000u64..2_000_000_000, 1..12);
    (
        files,
        1usize..6,
        prop::collection::vec((0.0f64..500.0, any::<u8>()), 0..60),
    )
        .prop_map(|(sizes, disks, raw_reqs)| {
            let n = sizes.len();
            let pop = vec![1.0 / n as f64; n];
            let catalog = FileCatalog::from_parts(sizes, pop);
            // round-robin layout over `disks` disks
            let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
            for i in 0..n {
                bins[i % disks].items.push(i);
            }
            let assignment = Assignment { disks: bins };
            let mut reqs: Vec<Request> = raw_reqs
                .into_iter()
                .map(|(time, f)| Request {
                    time,
                    file: FileId((f as usize % n) as u32),
                })
                .collect();
            reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
            let trace = Trace::new(reqs, 500.0);
            MiniWorkload {
                catalog,
                trace,
                assignment,
            }
        })
}

/// A randomized *active* fault plan: independent transient / wake-failure
/// rates, a retry budget down to zero (exhaustion → counted failures), an
/// optional backlog watermark (0 disables shedding) and a free seed.
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        0.0f64..0.5,
        0.0f64..0.5,
        0u32..4,
        prop_oneof![Just(0usize), 1usize..6],
        any::<u64>(),
    )
        .prop_map(|(tp, wp, retries, shed, seed)| {
            let mut spec = format!(
                "transient:p={tp} | wakefail:p={wp} | retries={retries} | mttr=60 | seed={seed}"
            );
            if shed > 0 {
                spec.push_str(&format!(" | shed={shed}"));
            }
            FaultPlan::parse(&spec).expect("generated spec parses")
        })
}

fn discipline_strategy() -> impl Strategy<Value = DisciplineChoice> {
    prop_oneof![
        Just(DisciplineChoice::Fifo),
        (1.0f64..120.0)
            .prop_map(|aging_bound_s| DisciplineChoice::ShortestJobFirst { aging_bound_s }),
        Just(DisciplineChoice::ElevatorBatch),
    ]
}

fn threshold_strategy() -> impl Strategy<Value = ThresholdPolicy> {
    prop_oneof![
        Just(ThresholdPolicy::Never),
        Just(ThresholdPolicy::BreakEven),
        (1.0f64..300.0).prop_map(ThresholdPolicy::Fixed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn time_is_conserved_across_states(w in mini_workload(), th in threshold_strategy()) {
        let cfg = SimConfig::paper_default().with_threshold(th);
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let covered = report.energy.total_seconds();
        let expected = report.sim_time_s * report.disks as f64;
        prop_assert!((covered - expected).abs() < 1e-6 * expected.max(1.0),
            "covered {covered} vs {expected}");
    }

    #[test]
    fn every_request_is_answered_no_faster_than_service(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default().with_threshold(th);
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        prop_assert_eq!(report.responses.len(), w.trace.len());
        if w.trace.is_empty() {
            return Ok(());
        }
        let timer = ServiceTimer::new(&cfg.disk);
        let min_service = w
            .catalog
            .iter()
            .map(|f| timer.service_time(f.size_bytes))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(report.response_quantile(0.0) >= min_service - 1e-9,
            "response below the smallest possible service time");
    }

    #[test]
    fn energy_bounded_between_standby_and_max_power(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default().with_threshold(th);
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let t = report.energy.total_seconds();
        let spec = DiskSpec::seagate_st3500630as();
        prop_assert!(report.energy.total_joules() >= spec.standby_power_w * t - 1e-6);
        prop_assert!(report.energy.total_joules() <= spec.spin_up_power_w * t + 1e-6);
    }

    #[test]
    fn never_policy_never_sleeps(w in mini_workload()) {
        let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::Never);
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        prop_assert_eq!(report.spin_downs, 0);
        prop_assert_eq!(report.spin_ups, 0);
        prop_assert_eq!(report.fleet_seconds_in(PowerState::Standby), 0.0);
        prop_assert_eq!(report.fleet_seconds_in(PowerState::SpinningUp), 0.0);
    }

    #[test]
    fn spin_bookkeeping_is_consistent(w in mini_workload(), fixed in 1.0f64..120.0) {
        let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(fixed));
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        // A spin-up can only follow a spin-down.
        prop_assert!(report.spin_ups <= report.spin_downs);
        // Transitional residency equals count × fixed transition time.
        let spec = &cfg.disk;
        let down_s = report.fleet_seconds_in(PowerState::SpinningDown);
        prop_assert!((down_s - report.spin_downs as f64 * spec.spin_down_time_s).abs() < 1e-6,
            "spin-down residency {down_s} vs {} transitions", report.spin_downs);
        let up_s = report.fleet_seconds_in(PowerState::SpinningUp);
        prop_assert!((up_s - report.spin_ups as f64 * spec.spin_up_time_s).abs() < 1e-6);
    }

    #[test]
    fn sleepier_policies_never_serve_fewer_requests(w in mini_workload()) {
        let sleepy = SimConfig::paper_default().with_threshold(ThresholdPolicy::Fixed(5.0));
        let awake = SimConfig::paper_default().with_threshold(ThresholdPolicy::Never);
        let a = Simulator::run(&w.catalog, &w.trace, &w.assignment, &sleepy).unwrap();
        let b = Simulator::run(&w.catalog, &w.trace, &w.assignment, &awake).unwrap();
        prop_assert_eq!(a.responses.len(), b.responses.len());
        // and the awake fleet is at least as fast on average
        prop_assert!(b.responses.mean() <= a.responses.mean() + 1e-9);
    }

    #[test]
    fn simulation_is_deterministic(w in mini_workload(), th in threshold_strategy()) {
        let cfg = SimConfig::paper_default().with_threshold(th);
        let a = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let b = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        prop_assert_eq!(a.energy.total_joules(), b.energy.total_joules());
        prop_assert_eq!(a.responses, b.responses);
        prop_assert_eq!(a.spin_downs, b.spin_downs);
    }

    #[test]
    fn streamed_arrivals_match_preloaded_bit_for_bit(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let streamed = SimConfig::paper_default().with_threshold(th);
        let preloaded = streamed.clone().with_arrival_mode(ArrivalMode::Preloaded);
        let a = Simulator::run(&w.catalog, &w.trace, &w.assignment, &streamed).unwrap();
        let b = Simulator::run(&w.catalog, &w.trace, &w.assignment, &preloaded).unwrap();
        prop_assert_eq!(a.energy.total_joules(), b.energy.total_joules());
        prop_assert_eq!(a.energy.total_seconds(), b.energy.total_seconds());
        prop_assert_eq!(a.responses, b.responses);
        prop_assert_eq!(a.spin_downs, b.spin_downs);
        prop_assert_eq!(a.spin_ups, b.spin_ups);
        prop_assert_eq!(a.per_disk_served, b.per_disk_served);
        prop_assert_eq!(a.sim_time_s, b.sim_time_s);
    }

    #[test]
    fn streamed_peak_event_queue_is_fleet_bound(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default().with_threshold(th);
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        // At most one service-completion and one live timer per disk (plus
        // transiently retired entries) — never the trace length.
        prop_assert!(
            report.peak_event_queue_max() <= 3 * report.disks + 1,
            "peak {} for {} disks and {} requests",
            report.peak_event_queue_max(), report.disks, w.trace.len()
        );
    }

    // Fault conservation: whatever goes wrong, every arrival is
    // accounted for exactly once — completed, shed, failed, or stranded
    // in flight by an unrepaired outage — under every queue discipline
    // and every shard count, with the sharded counters merging exactly.
    #[test]
    fn fault_conservation_arrivals_balance_outcomes(
        w in mini_workload(),
        th in threshold_strategy(),
        plan in fault_plan_strategy(),
        discipline in discipline_strategy(),
        shards in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let mut cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_shards(shards);
        cfg.discipline = discipline;
        cfg.faults = plan;
        let report = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let a = report.availability.as_ref().expect("active plan has stats");
        prop_assert_eq!(a.arrivals as usize, w.trace.len(), "every request arrives");
        prop_assert!(
            a.conservation_holds(),
            "arrivals {} != completed {} + shed {} + failed {} + in-flight {}",
            a.arrivals, a.completed, a.shed, a.failed, a.in_flight
        );
        // Only completions carry a response sample.
        prop_assert_eq!(report.responses.len() as u64, a.completed);
        // Downtime can never exceed the per-disk wall clock.
        for (d, &down) in a.per_disk_downtime_s.iter().enumerate() {
            prop_assert!(
                (0.0..=report.sim_time_s + 1e-9).contains(&down),
                "disk {} downtime {} vs sim time {}", d, down, report.sim_time_s
            );
        }
        prop_assert!((0.0..=1.0).contains(&a.availability));
    }

    // The streaming completion log's k-way merge: per-shard writers each
    // emit their own canonically ordered stream; the merger must weave
    // them back into exactly the unsharded sequence — same records, same
    // byte count, same FNV-1a digest — for any trace and any shard count.
    #[test]
    fn completion_log_merge_matches_the_unsharded_log(
        w in mini_workload(),
        th in threshold_strategy(),
        shards in prop_oneof![Just(2usize), Just(3), Just(8)],
    ) {
        let base = SimConfig::paper_default()
            .with_threshold(th)
            .with_completion_log();
        let solo = Simulator::run(&w.catalog, &w.trace, &w.assignment, &base).unwrap();
        let sharded = Simulator::run(
            &w.catalog, &w.trace, &w.assignment, &base.clone().with_shards(shards),
        )
        .unwrap();
        let a = solo.completions.as_ref().expect("memory-mode records");
        let b = sharded.completions.as_ref().expect("merged records");
        prop_assert_eq!(a.len(), w.trace.len(), "one record per request");
        // Canonical (time, req) order with ties broken by request seq.
        for win in b.windows(2) {
            prop_assert!(
                win[0].time_s < win[1].time_s
                    || (win[0].time_s == win[1].time_s && win[0].req < win[1].req),
                "merged stream out of canonical order"
            );
        }
        prop_assert_eq!(a, b, "S={}: merged records", shards);
        let sa = solo.completion_log.as_ref().expect("summary");
        let sb = sharded.completion_log.as_ref().expect("summary");
        prop_assert_eq!(sa.records, sb.records);
        prop_assert_eq!(sa.bytes, sb.bytes);
        prop_assert_eq!(sa.fnv1a, sb.fnv1a);
    }

    // The merged-report fold for cache counters: absorbing any partition
    // of per-shard rows (each folded in ascending order, then partitions
    // in shard order) equals one bulk fold in ascending global order —
    // integer addition commutes exactly, which is what lets the sharded
    // merge sum per-tier rows in tier-then-shard order.
    #[test]
    fn cache_stats_partitioned_fold_equals_the_bulk_fold(
        rows in prop::collection::vec(
            (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
            0..24,
        ),
        shards in 1usize..5,
    ) {
        let rows: Vec<CacheStats> = rows
            .into_iter()
            .map(|(hits, misses, resident, evicted, oversize)| CacheStats {
                hits,
                misses,
                resident_bytes: resident,
                evicted_bytes: evicted,
                oversize_rejections: oversize,
            })
            .collect();
        let mut bulk = CacheStats::default();
        for row in &rows {
            bulk.absorb(row);
        }
        let mut merged = CacheStats::default();
        for shard in 0..shards {
            let mut partial = CacheStats::default();
            for row in rows.iter().skip(shard).step_by(shards) {
                partial.absorb(row);
            }
            merged.absorb(&partial);
        }
        prop_assert_eq!(bulk, merged);
    }

    #[test]
    fn fleet_extension_only_adds_idle_or_sleeping_disks(w in mini_workload()) {
        let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::BreakEven);
        let base = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let bigger = Simulator::run_with_fleet(
            &w.catalog, &w.trace, &w.assignment, &cfg, w.assignment.disk_slots() + 3,
        )
        .unwrap();
        // Responses are identical — extra disks never serve anything.
        prop_assert_eq!(base.responses, bigger.responses);
        // Energy strictly grows (idle/standby power of the extras).
        prop_assert!(bigger.energy.total_joules() >= base.energy.total_joules());
    }
}
