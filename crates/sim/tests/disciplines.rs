//! Property-based tests of the queue-discipline layer: every discipline
//! only *reorders* work — it serves each request exactly once, per-disk
//! completions stay time-ordered, and the FIFO discipline is bit-identical
//! to the engine's default path (extending PR 1's `ArrivalMode`
//! equivalence properties to the discipline dimension).

use proptest::prelude::*;
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{ArrivalMode, SimConfig, ThresholdPolicy};
use spindown_sim::discipline::DisciplineChoice;
use spindown_sim::engine::Simulator;
use spindown_sim::metrics::SimReport;
use spindown_workload::trace::Request;
use spindown_workload::{FileCatalog, FileId, Trace};

/// A randomized mini-workload: 1–12 files over 1–6 disks, ≤ 60 requests.
#[derive(Debug, Clone)]
struct MiniWorkload {
    catalog: FileCatalog,
    trace: Trace,
    assignment: Assignment,
}

fn mini_workload() -> impl Strategy<Value = MiniWorkload> {
    let files = prop::collection::vec(1_000_000u64..2_000_000_000, 1..12);
    (
        files,
        1usize..6,
        prop::collection::vec((0.0f64..500.0, any::<u8>()), 0..60),
    )
        .prop_map(|(sizes, disks, raw_reqs)| {
            let n = sizes.len();
            let pop = vec![1.0 / n as f64; n];
            let catalog = FileCatalog::from_parts(sizes, pop);
            let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
            for i in 0..n {
                bins[i % disks].items.push(i);
            }
            let assignment = Assignment { disks: bins };
            let mut reqs: Vec<Request> = raw_reqs
                .into_iter()
                .map(|(time, f)| Request {
                    time,
                    file: FileId((f as usize % n) as u32),
                })
                .collect();
            reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
            let trace = Trace::new(reqs, 500.0);
            MiniWorkload {
                catalog,
                trace,
                assignment,
            }
        })
}

fn discipline_strategy() -> impl Strategy<Value = DisciplineChoice> {
    prop_oneof![
        Just(DisciplineChoice::Fifo),
        (1.0f64..300.0)
            .prop_map(|aging_bound_s| DisciplineChoice::ShortestJobFirst { aging_bound_s }),
        Just(DisciplineChoice::ElevatorBatch),
    ]
}

fn threshold_strategy() -> impl Strategy<Value = ThresholdPolicy> {
    prop_oneof![
        Just(ThresholdPolicy::Never),
        Just(ThresholdPolicy::BreakEven),
        (1.0f64..300.0).prop_map(ThresholdPolicy::Fixed),
    ]
}

fn run(w: &MiniWorkload, cfg: &SimConfig) -> SimReport {
    Simulator::run(&w.catalog, &w.trace, &w.assignment, cfg).unwrap()
}

fn assert_bit_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.energy.total_joules(), b.energy.total_joules());
    assert_eq!(a.energy.total_seconds(), b.energy.total_seconds());
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.per_disk_responses, b.per_disk_responses);
    assert_eq!(a.spin_downs, b.spin_downs);
    assert_eq!(a.spin_ups, b.spin_ups);
    assert_eq!(a.per_disk_served, b.per_disk_served);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    assert_eq!(a.completions, b.completions);
}

/// The pre-PR SJF implementation, verbatim: linear `min_by_key` over
/// `(bytes, seq)` with the aging bound probed at the front of the
/// arrival-ordered pending list. The heap-backed queue must pop in exactly
/// this sequence (including every aging escape) on any schedule.
mod sjf_reference {
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct RefEntry {
        pub req: usize,
        pub bytes: u64,
        pub arrival_s: f64,
        pub seq: u64,
    }

    #[derive(Debug, Default)]
    pub struct LinearSjf {
        entries: Vec<RefEntry>,
        next_seq: u64,
    }

    impl LinearSjf {
        pub fn push(&mut self, req: usize, bytes: u64, arrival_s: f64) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.entries.push(RefEntry {
                req,
                bytes,
                arrival_s,
                seq,
            });
        }

        pub fn pop(&mut self, now: f64, aging_bound_s: f64) -> Option<RefEntry> {
            let oldest = self.entries.first()?;
            if now - oldest.arrival_s >= aging_bound_s {
                return Some(self.entries.remove(0));
            }
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.bytes, e.seq))
                .expect("non-empty");
            Some(self.entries.remove(idx))
        }

        pub fn len(&self) -> usize {
            self.entries.len()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Conservation: every discipline serves each request exactly once —
    // the completion log holds a permutation of the trace indices.
    #[test]
    fn every_discipline_serves_each_request_exactly_once(
        w in mini_workload(), d in discipline_strategy(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_discipline(d)
            .with_completion_log();
        let report = run(&w, &cfg);
        prop_assert_eq!(report.responses.len(), w.trace.len());
        let log = report.completions.as_ref().expect("log enabled");
        prop_assert_eq!(log.len(), w.trace.len());
        let mut served: Vec<usize> = log.iter().map(|c| c.req).collect();
        served.sort_unstable();
        let expected: Vec<usize> = (0..w.trace.len()).collect();
        prop_assert_eq!(served, expected, "not a permutation of the trace");
        // The per-disk response stats partition the global samples.
        let split: usize = report.per_disk_responses.iter().map(|r| r.len()).sum();
        prop_assert_eq!(split, report.responses.len());
    }

    // Per-disk completion times never go backwards (a disk serves one
    // request at a time), and no completion precedes its arrival.
    #[test]
    fn completions_are_time_ordered_per_disk(
        w in mini_workload(), d in discipline_strategy(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_discipline(d)
            .with_completion_log();
        let report = run(&w, &cfg);
        let log = report.completions.as_ref().expect("log enabled");
        let mut last_per_disk = vec![f64::NEG_INFINITY; report.disks];
        for c in log {
            prop_assert!(
                c.time_s >= last_per_disk[c.disk],
                "disk {} completed {} after {}", c.disk, c.time_s, last_per_disk[c.disk]
            );
            last_per_disk[c.disk] = c.time_s;
            prop_assert!(c.time_s >= w.trace.requests()[c.req].time,
                "request {} completed before it arrived", c.req);
        }
    }

    // The FIFO discipline serves each disk's requests in arrival order —
    // trace indices are increasing within each disk's completion
    // subsequence.
    #[test]
    fn fifo_serves_in_arrival_order_per_disk(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_completion_log();
        let report = run(&w, &cfg);
        let log = report.completions.as_ref().expect("log enabled");
        let mut last_req = vec![None::<usize>; report.disks];
        for c in log {
            if let Some(prev) = last_req[c.disk] {
                prop_assert!(c.req > prev, "disk {} served {} after {}", c.disk, c.req, prev);
            }
            last_req[c.disk] = Some(c.req);
        }
    }

    // Selecting `Fifo` explicitly is bit-identical to the engine default
    // — same energy, same per-request completions, same everything.
    #[test]
    fn explicit_fifo_is_bit_identical_to_the_default_engine(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let default_cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_completion_log();
        let fifo_cfg = default_cfg.clone().with_discipline(DisciplineChoice::Fifo);
        let a = run(&w, &default_cfg);
        let b = run(&w, &fifo_cfg);
        assert_bit_identical(&a, &b);
    }

    // The streamed/preloaded equivalence of PR 1 must survive every
    // discipline: both arrival modes drive the same dispatch points.
    #[test]
    fn streamed_matches_preloaded_under_every_discipline(
        w in mini_workload(), d in discipline_strategy(), th in threshold_strategy()
    ) {
        let streamed = SimConfig::paper_default()
            .with_threshold(th)
            .with_discipline(d)
            .with_completion_log();
        let preloaded = streamed.clone().with_arrival_mode(ArrivalMode::Preloaded);
        let a = run(&w, &streamed);
        let b = run(&w, &preloaded);
        assert_bit_identical(&a, &b);
    }

    // Reordering work never changes how much of it there is: every
    // discipline reports the same served counts per disk as FIFO.
    #[test]
    fn disciplines_only_reorder_per_disk_work(
        w in mini_workload(), d in discipline_strategy(), th in threshold_strategy()
    ) {
        let fifo = SimConfig::paper_default().with_threshold(th);
        let other = fifo.clone().with_discipline(d);
        let a = run(&w, &fifo);
        let b = run(&w, &other);
        prop_assert_eq!(a.per_disk_served, b.per_disk_served);
        prop_assert_eq!(a.responses.len(), b.responses.len());
        // Energy–time conservation holds regardless of discipline.
        let covered = b.energy.total_seconds();
        let expected = b.sim_time_s * b.disks as f64;
        prop_assert!((covered - expected).abs() < 1e-6 * expected.max(1.0));
    }

    // Every discipline is deterministic: identical runs replay
    // bit-identically.
    #[test]
    fn every_discipline_is_deterministic(
        w in mini_workload(), d in discipline_strategy(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_discipline(d)
            .with_completion_log();
        let a = run(&w, &cfg);
        let b = run(&w, &cfg);
        assert_bit_identical(&a, &b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    // The heap-backed SJF queue pops bit-identically to the linear-scan
    // implementation it replaced: same (bytes, seq) order, same aging
    // escapes, on randomized interleaved push/pop schedules.
    #[test]
    fn heap_backed_sjf_matches_the_linear_scan_reference(
        // Each step: a request (size, inter-arrival gap) plus how many pops
        // follow it (0–3), so queues both deepen and drain mid-schedule.
        steps in prop::collection::vec(
            (1u64..5_000, 0.0f64..20.0, 0usize..4), 1..120),
        aging_bound_s in 1.0f64..60.0,
    ) {
        use spindown_sim::discipline::{DisciplineChoice, RequestQueue};

        let mut heap_q = RequestQueue::new(DisciplineChoice::ShortestJobFirst { aging_bound_s });
        let mut linear_q = sjf_reference::LinearSjf::default();
        let mut now = 0.0;
        for (req, &(bytes, gap, pops)) in steps.iter().enumerate() {
            now += gap;
            heap_q.push(req, bytes, now, req as u64);
            linear_q.push(req, bytes, now);
            for _ in 0..pops {
                let got = heap_q.pop(now);
                let want = linear_q.pop(now, aging_bound_s);
                match (got, want) {
                    (None, None) => {}
                    (Some(g), Some(w)) => {
                        prop_assert_eq!(g.entry.req, w.req, "pop order diverged at t={}", now);
                        prop_assert!(!g.amortised, "SJF never amortises seeks");
                    }
                    (g, w) => prop_assert!(false, "emptiness diverged: heap {:?} vs linear {:?}", g, w),
                }
                prop_assert_eq!(heap_q.len(), linear_q.len());
            }
        }
        // Drain the remainder at a late enough time that aging also fires.
        loop {
            now += 7.0;
            let got = heap_q.pop(now);
            let want = linear_q.pop(now, aging_bound_s);
            match (got, want) {
                (None, None) => break,
                (Some(g), Some(w)) => prop_assert_eq!(g.entry.req, w.req),
                (g, w) => prop_assert!(false, "drain diverged: heap {:?} vs linear {:?}", g, w),
            }
        }
        prop_assert!(heap_q.is_empty());
        prop_assert_eq!(linear_q.len(), 0);
    }
}
