//! `TraceSource` equivalence properties: the engine driven from a source
//! cursor must be bit-identical to the engine driven from the materialised
//! trace — for the in-memory cursor on arbitrary workloads, for the CSV
//! reader on round-tripped files, and for the synthetic generator against
//! `Trace::poisson` with the same seed.

use proptest::prelude::*;
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::{ArrivalMode, SimConfig, ThresholdPolicy};
use spindown_sim::engine::Simulator;
use spindown_sim::metrics::SimReport;
use spindown_workload::trace::Request;
use spindown_workload::{
    CsvTraceSource, FileCatalog, FileId, InMemorySource, SyntheticSource, Trace,
};

/// A randomized mini-workload (mirrors `disciplines.rs`).
#[derive(Debug, Clone)]
struct MiniWorkload {
    catalog: FileCatalog,
    trace: Trace,
    assignment: Assignment,
}

fn mini_workload() -> impl Strategy<Value = MiniWorkload> {
    let files = prop::collection::vec(1_000_000u64..2_000_000_000, 1..12);
    (
        files,
        1usize..6,
        prop::collection::vec((0.0f64..500.0, any::<u8>()), 0..60),
    )
        .prop_map(|(sizes, disks, raw_reqs)| {
            let n = sizes.len();
            let pop = vec![1.0 / n as f64; n];
            let catalog = FileCatalog::from_parts(sizes, pop);
            let mut bins: Vec<DiskBin> = (0..disks).map(|_| DiskBin::default()).collect();
            for i in 0..n {
                bins[i % disks].items.push(i);
            }
            let assignment = Assignment { disks: bins };
            let mut reqs: Vec<Request> = raw_reqs
                .into_iter()
                .map(|(time, f)| Request {
                    time,
                    file: FileId((f as usize % n) as u32),
                })
                .collect();
            reqs.sort_by(|a, b| a.time.total_cmp(&b.time));
            let trace = Trace::new(reqs, 500.0);
            MiniWorkload {
                catalog,
                trace,
                assignment,
            }
        })
}

fn threshold_strategy() -> impl Strategy<Value = ThresholdPolicy> {
    prop_oneof![
        Just(ThresholdPolicy::Never),
        Just(ThresholdPolicy::BreakEven),
        (1.0f64..300.0).prop_map(ThresholdPolicy::Fixed),
    ]
}

fn assert_bit_identical(a: &SimReport, b: &SimReport) {
    assert_eq!(a.energy.total_joules(), b.energy.total_joules());
    assert_eq!(a.energy.total_seconds(), b.energy.total_seconds());
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.per_disk_responses, b.per_disk_responses);
    assert_eq!(a.spin_downs, b.spin_downs);
    assert_eq!(a.spin_ups, b.spin_ups);
    assert_eq!(a.per_disk_served, b.per_disk_served);
    assert_eq!(a.sim_time_s, b.sim_time_s);
    // (per_shard_event_peaks is deliberately excluded: it differs across
    // arrival modes by design — O(disks) streamed vs O(requests) preloaded.)
    assert_eq!(a.completions, b.completions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // TraceSource::InMemory is the engine's own arrival path: running from
    // the cursor must equal running from the trace, bit for bit.
    #[test]
    fn in_memory_source_is_bit_identical_to_the_trace_engine(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let cfg = SimConfig::paper_default()
            .with_threshold(th)
            .with_completion_log();
        let direct = Simulator::run(&w.catalog, &w.trace, &w.assignment, &cfg).unwrap();
        let sourced = Simulator::run_from_source(
            &w.catalog,
            InMemorySource::new(&w.trace),
            &w.assignment,
            &cfg,
            w.assignment.disk_slots(),
        )
        .unwrap();
        assert_bit_identical(&direct, &sourced);
        // Same arrival mode on both sides: even the peak heap size agrees.
        assert_eq!(direct.per_shard_event_peaks, sourced.per_shard_event_peaks);
    }

    // Preloaded mode reached through a source materialises and must still
    // agree with the streamed run.
    #[test]
    fn preloaded_source_run_matches_streamed_source_run(
        w in mini_workload(), th in threshold_strategy()
    ) {
        let streamed = SimConfig::paper_default().with_threshold(th);
        let preloaded = streamed.clone().with_arrival_mode(ArrivalMode::Preloaded);
        let fleet = w.assignment.disk_slots();
        let a = Simulator::run_from_source(
            &w.catalog, InMemorySource::new(&w.trace), &w.assignment, &streamed, fleet).unwrap();
        let b = Simulator::run_from_source(
            &w.catalog, InMemorySource::new(&w.trace), &w.assignment, &preloaded, fleet).unwrap();
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn synthetic_source_replay_is_bit_identical_to_trace_poisson_replay() {
    let catalog = FileCatalog::paper_table1(64, 0);
    let (rate, horizon, seed) = (3.0, 800.0, 9_001);
    let trace = Trace::poisson(&catalog, rate, horizon, seed);
    let mut bins: Vec<DiskBin> = (0..4).map(|_| DiskBin::default()).collect();
    for file in 0..catalog.len() {
        bins[file % 4].items.push(file);
    }
    let assignment = Assignment { disks: bins };
    let cfg = SimConfig::paper_default().with_threshold(ThresholdPolicy::BreakEven);
    let from_trace = Simulator::run(&catalog, &trace, &assignment, &cfg).unwrap();
    let from_generator = Simulator::run_from_source(
        &catalog,
        SyntheticSource::poisson(&catalog, rate, horizon, seed),
        &assignment,
        &cfg,
        4,
    )
    .unwrap();
    assert_eq!(from_trace.responses.len(), trace.len());
    assert_bit_identical(&from_trace, &from_generator);
}

#[test]
fn csv_source_replay_matches_the_parsed_trace_replay() {
    let catalog = FileCatalog::paper_table1(32, 0);
    let trace = Trace::poisson(&catalog, 2.0, 300.0, 321);
    let mut csv = Vec::new();
    trace.write_csv(&mut csv).unwrap();
    // Parse the whole file the old way…
    let parsed = Trace::read_csv(std::io::Cursor::new(&csv), Some(300.0)).unwrap();
    let mut bins: Vec<DiskBin> = (0..3).map(|_| DiskBin::default()).collect();
    for file in 0..catalog.len() {
        bins[file % 3].items.push(file);
    }
    let assignment = Assignment { disks: bins };
    let cfg = SimConfig::paper_default();
    let from_parsed = Simulator::run(&catalog, &parsed, &assignment, &cfg).unwrap();
    // …and stream it line by line: same simulation.
    let from_stream = Simulator::run_from_source(
        &catalog,
        CsvTraceSource::from_reader(std::io::Cursor::new(&csv), 300.0),
        &assignment,
        &cfg,
        3,
    )
    .unwrap();
    assert_bit_identical(&from_parsed, &from_stream);
}

#[test]
fn unmapped_file_from_a_source_errors_at_arrival() {
    let catalog = FileCatalog::from_parts(vec![1_000_000; 2], vec![0.5, 0.5]);
    let trace = Trace::new(
        vec![Request {
            time: 1.0,
            file: FileId(1),
        }],
        10.0,
    );
    // Assignment covers only file 0.
    let assignment = Assignment {
        disks: vec![DiskBin {
            items: vec![0],
            total_s: 0.0,
            total_l: 0.0,
        }],
    };
    let cfg = SimConfig::paper_default();
    let err =
        Simulator::run_from_source(&catalog, InMemorySource::new(&trace), &assignment, &cfg, 1)
            .unwrap_err();
    assert!(matches!(
        err,
        spindown_sim::engine::SimError::UnmappedFile { file } if file == FileId(1)
    ));
}

#[test]
fn malformed_csv_surfaces_as_a_source_error_mid_replay() {
    let catalog = FileCatalog::from_parts(vec![1_000_000], vec![1.0]);
    let assignment = Assignment {
        disks: vec![DiskBin {
            items: vec![0],
            total_s: 0.0,
            total_l: 0.0,
        }],
    };
    let cfg = SimConfig::paper_default();
    let bad = "time_s,file_id\n1.0,0\nBROKEN\n";
    let err = Simulator::run_from_source(
        &catalog,
        CsvTraceSource::from_reader(std::io::Cursor::new(bad), 10.0),
        &assignment,
        &cfg,
        1,
    )
    .unwrap_err();
    assert!(matches!(err, spindown_sim::engine::SimError::Source(_)));
}
