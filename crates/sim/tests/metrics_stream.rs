//! Property tests of the streaming-histogram metrics mode: on random
//! workloads the histogram's quantiles stay within the documented relative
//! error bound of the exact sorted quantiles, and an engine run in
//! histogram mode reports the same exact scalar statistics (count, mean,
//! max) as the same run in exact mode.

use proptest::prelude::*;
use spindown_packing::{Assignment, DiskBin};
use spindown_sim::config::SimConfig;
use spindown_sim::engine::Simulator;
use spindown_sim::metrics::{MetricsMode, ResponseStats, StreamingHistogram};
use spindown_workload::{FileCatalog, Trace};

const QS: [f64; 9] = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];

/// Absolute slack for samples at the histogram's ≈1 ns resolution floor.
const FLOOR: f64 = 1e-9;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    // The documented contract: every quantile of the histogram is within
    // RELATIVE_ERROR_BOUND (relative) of the exact nearest-rank quantile,
    // for arbitrary sample sets spanning the whole dynamic range the
    // simulator produces (sub-millisecond cache hits to multi-hour waits).
    #[test]
    fn histogram_quantiles_within_relative_error_of_exact(
        samples in prop::collection::vec(0.0f64..100_000.0, 1..400),
        scale_exp in 0u32..7,
    ) {
        // Spread the decade coverage: scale by 10^-scale_exp so some cases
        // exercise the fine-grained sub-second buckets.
        let scale = 10f64.powi(-(scale_exp as i32));
        let mut exact = ResponseStats::exact();
        let mut hist = ResponseStats::histogram();
        for &s in &samples {
            exact.record(s * scale);
            hist.record(s * scale);
        }
        // The scalar statistics are exact, not approximate. (Compared
        // before any quantile call: exact-mode quantiles sort the sample
        // vector in place, which changes the float summation order.)
        prop_assert_eq!(exact.len(), hist.len());
        prop_assert_eq!(exact.mean(), hist.mean());
        prop_assert_eq!(exact.max(), hist.max());
        let bound = hist.quantile_error_bound();
        prop_assert!(bound > 0.0 && bound <= 1.0 / 256.0 + 1e-15);
        for q in QS {
            let e = exact.quantile(q);
            let h = hist.quantile(q);
            prop_assert!(
                (h - e).abs() <= bound * e + FLOOR,
                "q={}: histogram {} vs exact {} (bound {})", q, h, e, bound
            );
        }
    }

    // Memory stays bucket-bound however many samples stream through.
    #[test]
    fn histogram_memory_is_independent_of_sample_count(
        samples in prop::collection::vec(0.0f64..1.0e6, 1..400),
    ) {
        let mut h = StreamingHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert!(h.buckets() <= StreamingHistogram::max_buckets());
    }
}

/// One shared fixture for the engine-level mode comparison.
fn fixture() -> (FileCatalog, Trace, Assignment) {
    let catalog = FileCatalog::paper_table1(64, 0);
    let trace = Trace::poisson(&catalog, 2.0, 600.0, 4242);
    let mut bins: Vec<DiskBin> = (0..4).map(|_| DiskBin::default()).collect();
    for file in 0..catalog.len() {
        bins[file % 4].items.push(file);
    }
    (catalog, trace, Assignment { disks: bins })
}

#[test]
fn engine_histogram_mode_matches_exact_mode_scalars_and_tails() {
    let (catalog, trace, assignment) = fixture();
    let exact_cfg = SimConfig::paper_default();
    let hist_cfg = SimConfig::paper_default().with_metrics(MetricsMode::Histogram);
    let exact = Simulator::run(&catalog, &trace, &assignment, &exact_cfg).unwrap();
    let hist = Simulator::run(&catalog, &trace, &assignment, &hist_cfg).unwrap();

    // Identical simulation, different aggregation: count and max are
    // bit-identical. The histogram-mode global mean is summed in the
    // canonical per-disk merge order (the derivation that makes sharded
    // reports bit-identical), not in completion order, so it agrees with
    // the exact-mode mean only up to float-summation reordering.
    assert_eq!(exact.responses.len(), hist.responses.len());
    let (me, mh) = (exact.responses.mean(), hist.responses.mean());
    assert!(
        (me - mh).abs() <= 1e-12 * me.abs(),
        "mean {me} vs {mh} beyond summation-order slack"
    );
    assert_eq!(exact.responses.max(), hist.responses.max());
    assert_eq!(exact.energy.total_joules(), hist.energy.total_joules());
    assert_eq!(exact.spin_downs, hist.spin_downs);
    assert_eq!(hist.responses.mode(), MetricsMode::Histogram);

    // Quantiles agree to the documented bound.
    let bound = hist.responses.quantile_error_bound();
    for q in QS {
        let e = exact.response_quantile(q);
        let h = hist.response_quantile(q);
        assert!(
            (h - e).abs() <= bound * e + FLOOR,
            "q={q}: histogram {h} vs exact {e}"
        );
    }

    // Per-disk collectors follow the configured mode too.
    for d in 0..hist.disks {
        assert_eq!(hist.per_disk_responses[d].mode(), MetricsMode::Histogram);
        assert_eq!(
            hist.per_disk_responses[d].len(),
            exact.per_disk_responses[d].len()
        );
    }
}
