//! Response-time statistics and the simulation report.

use serde::{Deserialize, Serialize};
use spindown_disk::energy::EnergyBreakdown;
use spindown_disk::PowerState;

use crate::cache::CacheStats;

/// Collects response times and summarises them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    samples: Vec<f64>,
    sorted: bool,
}

impl ResponseStats {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one response time (seconds).
    ///
    /// # Panics
    /// If the sample is negative or not finite.
    pub fn record(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "bad sample {seconds}"
        );
        self.samples.push(seconds);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// `q`-quantile with nearest-rank semantics, `q ∈ [0, 1]`
    /// (0 when empty).
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile — the tail metric the queue-discipline work targets.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Fraction of samples at or below `bound` seconds (1.0 when empty —
    /// an empty workload vacuously meets any deadline).
    pub fn fraction_within(&self, bound: f64) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        let ok = self.samples.iter().filter(|&&s| s <= bound).count();
        ok as f64 / self.samples.len() as f64
    }

    /// Merge another collector into this one.
    pub fn merge(&mut self, other: &ResponseStats) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// One served request, for the optional completion log
/// (`SimConfig::with_completion_log`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Index into the trace.
    pub req: usize,
    /// Disk that served it.
    pub disk: usize,
    /// Completion time, seconds.
    pub time_s: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock span of the simulation (≥ trace horizon), seconds.
    pub sim_time_s: f64,
    /// Fleet-aggregate energy.
    pub energy: EnergyBreakdown,
    /// Per-disk energy, in disk order.
    pub per_disk_energy: Vec<EnergyBreakdown>,
    /// Response-time samples for requests served by disks *and* the cache.
    pub responses: ResponseStats,
    /// Response-time samples per disk, in disk order (cache hits excluded —
    /// they never reach a disk).
    pub per_disk_responses: Vec<ResponseStats>,
    /// Per-request completion log, when `SimConfig::completion_log` is on.
    /// Appended in completion order, so per-disk subsequences are the
    /// disk's service order.
    pub completions: Option<Vec<Completion>>,
    /// Total completed spin-down transitions across the fleet.
    pub spin_downs: u64,
    /// Total completed spin-up transitions across the fleet.
    pub spin_ups: u64,
    /// Cache statistics, when a cache was configured.
    pub cache: Option<CacheStats>,
    /// Number of disks simulated (fleet size).
    pub disks: usize,
    /// Requests served per disk, in disk order (excludes cache hits).
    pub per_disk_served: Vec<u64>,
    /// Largest number of events simultaneously pending in the event heap —
    /// O(disks) under streamed arrivals, O(requests) when preloaded.
    pub peak_event_queue: usize,
}

impl SimReport {
    /// Mean electrical power over the run, watts (whole fleet).
    pub fn mean_power_w(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            self.energy.total_joules() / self.sim_time_s
        } else {
            0.0
        }
    }

    /// Energy the fleet would have used never leaving the *idle* state —
    /// the §5.1 normaliser ("spinning N disks without any power-saving
    /// mechanism"), ignoring the (identical) service energy.
    pub fn always_on_idle_joules(&self, idle_power_w: f64) -> f64 {
        idle_power_w * self.sim_time_s * self.disks as f64
    }

    /// Power-saving fraction of this run against a reference energy:
    /// `1 − E_this/E_ref`.
    pub fn saving_vs(&self, reference_joules: f64) -> f64 {
        if reference_joules <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy.total_joules() / reference_joules
    }

    /// Seconds the fleet spent in `state`, summed over disks.
    pub fn fleet_seconds_in(&self, state: PowerState) -> f64 {
        self.energy.seconds_in(state)
    }

    /// Utilisation of one disk: fraction of the run spent seeking or
    /// transferring. 0 when the run had zero length.
    pub fn disk_utilisation(&self, disk: usize) -> f64 {
        if self.sim_time_s <= 0.0 {
            return 0.0;
        }
        let b = &self.per_disk_energy[disk];
        (b.seconds_in(PowerState::Active) + b.seconds_in(PowerState::Seek)) / self.sim_time_s
    }

    /// Number of disks that served at least one request.
    pub fn active_disks(&self) -> usize {
        self.per_disk_served.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = ResponseStats::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            r.record(v);
        }
        assert_eq!(r.quantile(0.0), 1.0);
        assert_eq!(r.median(), 3.0);
        assert_eq!(r.quantile(0.8), 4.0);
        assert_eq!(r.quantile(1.0), 5.0);
        assert_eq!(r.max(), 5.0);
        assert!((r.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p95_p99_are_nearest_rank_tail_quantiles() {
        let mut r = ResponseStats::new();
        for v in 1..=100 {
            r.record(v as f64);
        }
        assert_eq!(r.p95(), 95.0);
        assert_eq!(r.p99(), 99.0);
        assert_eq!(r.quantile(1.0), 100.0);
    }

    #[test]
    fn empty_stats_are_zeroes() {
        let mut r = ResponseStats::new();
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.median(), 0.0);
        assert_eq!(r.max(), 0.0);
        assert_eq!(r.fraction_within(1.0), 1.0);
    }

    #[test]
    fn fraction_within_bound() {
        let mut r = ResponseStats::new();
        for v in [1.0, 2.0, 10.0, 20.0] {
            r.record(v);
        }
        assert!((r.fraction_within(10.0) - 0.75).abs() < 1e-12);
        let _ = r.median();
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = ResponseStats::new();
        a.record(1.0);
        let mut b = ResponseStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad sample")]
    fn negative_sample_rejected() {
        ResponseStats::new().record(-0.1);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut r = ResponseStats::new();
        r.record(5.0);
        r.record(1.0);
        assert_eq!(r.median(), 1.0);
        r.record(0.5);
        assert_eq!(r.quantile(0.0), 0.5, "sort flag must reset on record");
    }
}
