//! Response-time statistics and the simulation report.
//!
//! Two aggregation modes ([`MetricsMode`]):
//!
//! - [`MetricsMode::Exact`] — every sample is kept in a vector; quantiles
//!   are nearest-rank over the sorted samples, bit-meaningful. Memory is
//!   O(requests), which is why the golden-trace fixture and the invariant
//!   tests run in this mode. The default.
//! - [`MetricsMode::Histogram`] — samples stream into a log-bucketed
//!   [`StreamingHistogram`] (HDR-style): O(1) record, O(buckets) memory
//!   independent of request count, quantiles within a documented relative
//!   error bound ([`StreamingHistogram::RELATIVE_ERROR_BOUND`], 1/256 ≈
//!   0.4 %). Mean, max, min and count stay exact (tracked as scalars).
//!   This is what lets a sweep grid or a multi-billion-request replay run
//!   without holding one response vector per cell.
//!
//! ## NaN-safety and the empty-recorder path
//!
//! These edge cases are handled once, here, for both modes:
//!
//! - [`ResponseStats::record`] rejects non-finite and negative samples with
//!   a panic, so no NaN can ever enter a collector — the `total_cmp` sort
//!   in exact mode is a deterministic total order over what remains.
//! - An empty collector reports `mean() == 0`, `max() == 0`,
//!   `quantile(q) == 0` for every `q`, and `fraction_within(b) == 1`
//!   (an empty workload vacuously meets any deadline).
//! - [`ResponseStats::quantile`] panics for `q` outside `[0, 1]`.

use serde::{Deserialize, Serialize};
use spindown_disk::energy::EnergyBreakdown;
use spindown_disk::PowerState;

use crate::cache::CacheStats;
use crate::complog::CompletionLogSummary;

/// How response-time samples are aggregated (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MetricsMode {
    /// Keep every sample; nearest-rank quantiles are bit-meaningful.
    /// O(requests) memory. The default (the paper's evaluation mode).
    #[default]
    Exact,
    /// Stream samples into a log-bucketed histogram; quantiles carry a
    /// bounded relative error, memory is O(buckets) independent of the
    /// request count.
    Histogram,
}

/// Number of mantissa bits per octave: 2^7 = 128 linear sub-buckets, so a
/// bucket spans at most `lo/128` and the midpoint representative is within
/// `1/256` of any sample in the bucket.
const SUB_BITS: u32 = 7;
const SUB: usize = 1 << SUB_BITS;
/// Smallest resolvable exponent: samples at or below 2⁻³⁰ s (≈ 0.93 ns —
/// far below any physical service time) collapse into the zero bucket.
const MIN_EXP: i32 = -30;
/// Largest resolvable exponent: 2⁴⁰ s ≈ 35 000 years caps the top octave.
const MAX_EXP: i32 = 40;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Zero bucket + full octave range.
const MAX_BUCKETS: usize = 1 + OCTAVES * SUB;

/// A log-bucketed streaming histogram of non-negative `f64` samples
/// (HDR-histogram style): base-2 octaves split into 128 linear sub-buckets
/// each, giving a guaranteed relative quantile error of at most
/// [`Self::RELATIVE_ERROR_BOUND`] while recording in O(1) and holding
/// O(buckets) memory regardless of how many samples stream through.
///
/// Count, sum (hence mean), min and max are tracked exactly as scalars;
/// only quantiles and [`Self::fraction_within`] are bucket-approximate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingHistogram {
    /// Bucket counts, grown on demand up to [`MAX_BUCKETS`].
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Guaranteed bound on the relative error of [`Self::quantile`] for
    /// samples above the ≈1 ns resolution floor: half a sub-bucket width,
    /// `1/2⁸ = 1/256 ≈ 0.39 %`.
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (2 * SUB) as f64;

    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a finite non-negative sample.
    fn bucket_index(v: f64) -> usize {
        if v <= 2f64.powi(MIN_EXP) {
            return 0; // zero bucket: 0 and sub-nanosecond dust
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp > MAX_EXP {
            return MAX_BUCKETS - 1;
        }
        // v > 2^MIN_EXP and v is normal here, so exp ∈ [MIN_EXP, MAX_EXP].
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUB + sub
    }

    /// Midpoint representative of bucket `i` (0 for the zero bucket).
    fn bucket_mid(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let octave = (i - 1) / SUB;
        let sub = (i - 1) % SUB;
        let base = 2f64.powi(MIN_EXP + octave as i32);
        let width = base / SUB as f64;
        base + sub as f64 * width + width / 2.0
    }

    /// Record one sample in O(1).
    pub fn record(&mut self, v: f64) {
        debug_assert!(v.is_finite() && v >= 0.0, "bad sample {v}");
        let idx = Self::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Samples recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Allocated bucket count — the O(buckets) memory term (≤
    /// [`Self::max_buckets`]).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Hard cap on the bucket array length, independent of sample count.
    pub const fn max_buckets() -> usize {
        MAX_BUCKETS
    }

    /// Nearest-rank `q`-quantile, approximated by the midpoint of the
    /// bucket holding the rank-th smallest sample and clamped into the
    /// exactly-tracked `[min, max]`. The result is within
    /// [`Self::RELATIVE_ERROR_BOUND`] (relative) of the exact nearest-rank
    /// quantile for samples above the resolution floor. 0 when empty.
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max // unreachable for consistent counts; be robust anyway
    }

    /// Fraction of samples whose bucket representative is ≤ `bound` — the
    /// CDF evaluated to bucket resolution (exact answers for `bound` below
    /// the minimum or at/above the maximum; 1.0 when empty).
    pub fn fraction_within(&self, bound: f64) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        if bound >= self.max {
            return 1.0;
        }
        if bound < self.min {
            return 0.0;
        }
        let mut ok = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && Self::bucket_mid(i) <= bound {
                ok += c;
            }
        }
        ok as f64 / self.count as f64
    }

    /// Merge another histogram into this one (bucket-wise; all histograms
    /// share one static bucket layout).
    pub fn merge(&mut self, other: &StreamingHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

impl PartialEq for StreamingHistogram {
    fn eq(&self, other: &Self) -> bool {
        // Bucket vectors may differ by trailing zeros (growth is lazy).
        let trim = |c: &[u64]| {
            let end = c.iter().rposition(|&x| x > 0).map_or(0, |p| p + 1);
            c[..end].to_vec()
        };
        self.count == other.count
            && self.sum == other.sum
            && (self.count == 0 || (self.min == other.min && self.max == other.max))
            && trim(&self.counts) == trim(&other.counts)
    }
}

/// Collects response times and summarises them, in either metrics mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Agg {
    /// Every sample, with a cached-sort flag for quantiles.
    Exact { samples: Vec<f64>, sorted: bool },
    /// Streaming log-bucketed histogram.
    Hist(StreamingHistogram),
}

/// Collects response times and summarises them (see the module docs for
/// the two modes and the shared edge-case contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseStats {
    agg: Agg,
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::exact()
    }
}

impl ResponseStats {
    /// Empty exact-mode collector (back-compatible default).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty exact-mode collector.
    pub fn exact() -> Self {
        ResponseStats {
            agg: Agg::Exact {
                samples: Vec::new(),
                sorted: false,
            },
        }
    }

    /// Empty histogram-mode collector.
    pub fn histogram() -> Self {
        ResponseStats {
            agg: Agg::Hist(StreamingHistogram::new()),
        }
    }

    /// Empty collector in the given mode.
    pub fn with_mode(mode: MetricsMode) -> Self {
        match mode {
            MetricsMode::Exact => Self::exact(),
            MetricsMode::Histogram => Self::histogram(),
        }
    }

    /// The mode this collector aggregates in.
    pub fn mode(&self) -> MetricsMode {
        match self.agg {
            Agg::Exact { .. } => MetricsMode::Exact,
            Agg::Hist(_) => MetricsMode::Histogram,
        }
    }

    /// Relative error bound of [`Self::quantile`]: 0 in exact mode,
    /// [`StreamingHistogram::RELATIVE_ERROR_BOUND`] in histogram mode.
    pub fn quantile_error_bound(&self) -> f64 {
        match self.agg {
            Agg::Exact { .. } => 0.0,
            Agg::Hist(_) => StreamingHistogram::RELATIVE_ERROR_BOUND,
        }
    }

    /// Record one response time (seconds). O(1) amortised in both modes.
    ///
    /// # Panics
    /// If the sample is negative or not finite — NaN can never enter a
    /// collector (this is the single NaN gate for every statistic below).
    pub fn record(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "bad sample {seconds}"
        );
        match &mut self.agg {
            Agg::Exact { samples, sorted } => {
                samples.push(seconds);
                *sorted = false;
            }
            Agg::Hist(h) => h.record(seconds),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        match &self.agg {
            Agg::Exact { samples, .. } => samples.len(),
            Agg::Hist(h) => h.len() as usize,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arithmetic mean — exact in both modes (0 when empty).
    pub fn mean(&self) -> f64 {
        match &self.agg {
            Agg::Exact { samples, .. } => {
                if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                }
            }
            Agg::Hist(h) => h.mean(),
        }
    }

    /// Maximum — exact in both modes (0 when empty).
    pub fn max(&self) -> f64 {
        match &self.agg {
            Agg::Exact { samples, .. } => samples.iter().copied().fold(0.0, f64::max),
            Agg::Hist(h) => h.max(),
        }
    }

    /// `q`-quantile with nearest-rank semantics, `q ∈ [0, 1]` (0 when
    /// empty). Exact mode sorts once and caches until the next `record`;
    /// histogram mode needs no sort and answers within
    /// [`Self::quantile_error_bound`].
    ///
    /// # Panics
    /// If `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        match &mut self.agg {
            Agg::Exact { samples, sorted } => {
                if samples.is_empty() {
                    return 0.0;
                }
                if !*sorted {
                    samples.sort_by(|a, b| a.total_cmp(b));
                    *sorted = true;
                }
                let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
                samples[rank - 1]
            }
            Agg::Hist(h) => h.quantile(q),
        }
    }

    /// Median.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile — the tail metric the queue-discipline work targets.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Fraction of samples at or below `bound` seconds (1.0 when empty —
    /// an empty workload vacuously meets any deadline). Exact in exact
    /// mode, bucket-resolution in histogram mode.
    pub fn fraction_within(&self, bound: f64) -> f64 {
        match &self.agg {
            Agg::Exact { samples, .. } => {
                if samples.is_empty() {
                    return 1.0;
                }
                let ok = samples.iter().filter(|&&s| s <= bound).count();
                ok as f64 / samples.len() as f64
            }
            Agg::Hist(h) => h.fraction_within(bound),
        }
    }

    /// Merge another collector into this one. Histogram⇐histogram merges
    /// bucket-wise; exact⇐exact concatenates; histogram⇐exact re-records
    /// the samples (lossy, by design). Merging a histogram *into* an exact
    /// collector is impossible (samples are gone) and panics.
    pub fn merge(&mut self, other: &ResponseStats) {
        match (&mut self.agg, &other.agg) {
            (Agg::Exact { samples, sorted }, Agg::Exact { samples: o, .. }) => {
                samples.extend_from_slice(o);
                *sorted = false;
            }
            (Agg::Hist(h), Agg::Hist(o)) => h.merge(o),
            (Agg::Hist(h), Agg::Exact { samples, .. }) => {
                for &s in samples {
                    h.record(s);
                }
            }
            (Agg::Exact { .. }, Agg::Hist(_)) => {
                panic!("cannot merge a histogram into an exact collector")
            }
        }
    }
}

/// Availability accounting for a fault-injected run (carried on
/// [`SimReport::availability`]; `None` when the run had no fault plan, so
/// no-fault reports are untouched).
///
/// Counters obey the conservation invariant
/// `arrivals == completed + shed + failed + in_flight`: every arriving
/// request is eventually served, shed at admission, or dropped after its
/// retry budget is exhausted — or is still queued/backed-off when the
/// horizon closes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AvailabilityStats {
    /// Requests that arrived (mapped to a simulated disk), including
    /// cache hits.
    pub arrivals: u64,
    /// Requests that completed service (cache hits included).
    pub completed: u64,
    /// Retry attempts performed (transient-error re-queues; a request
    /// retried three times counts three).
    pub retried: u64,
    /// Requests shed at admission by the backlog watermark.
    pub shed: u64,
    /// Requests dropped after exhausting their retry budget.
    pub failed: u64,
    /// Spin-up attempts that failed (the disk fell back asleep and the
    /// wake was retried after backoff).
    pub wake_failures: u64,
    /// Fail-stop crashes applied (scheduled crashes plus wake-failure
    /// escalations past the retry budget).
    pub crashes: u64,
    /// Requests still queued or awaiting a retry when the run closed.
    pub in_flight: u64,
    /// Seconds each disk spent offline (crashed, pre-repair), disk order.
    pub per_disk_downtime_s: Vec<f64>,
    /// Fleet availability fraction:
    /// `1 − Σ downtime / (disks · sim_time)`. 1.0 for a zero-length run.
    pub availability: f64,
    /// Response times of *degraded* completions only: requests that were
    /// retried, served in a fail-slow window, or arrived while their disk
    /// was down/repairing. Aggregated per `SimConfig::metrics`.
    pub degraded: ResponseStats,
}

impl AvailabilityStats {
    /// True when the conservation invariant holds.
    pub fn conservation_holds(&self) -> bool {
        self.arrivals == self.completed + self.shed + self.failed + self.in_flight
    }

    /// Total downtime summed over the fleet, seconds.
    pub fn total_downtime_s(&self) -> f64 {
        self.per_disk_downtime_s.iter().sum()
    }

    /// 95th percentile of the degraded-mode response distribution (0 when
    /// no completion was degraded).
    pub fn degraded_p95(&self) -> f64 {
        self.degraded.clone().quantile(0.95)
    }

    /// Recompute the availability fraction from the per-disk downtimes
    /// and the run's dimensions (used after a shard merge).
    pub fn recompute_availability(&mut self, disks: usize, sim_time_s: f64) {
        let span = disks as f64 * sim_time_s;
        self.availability = if span > 0.0 {
            (1.0 - self.total_downtime_s() / span).max(0.0)
        } else {
            1.0
        };
    }
}

/// One served request, for the optional completion log
/// (`SimConfig::with_completion_log`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// Index into the trace.
    pub req: usize,
    /// Disk that served it.
    pub disk: usize,
    /// Completion time, seconds.
    pub time_s: f64,
}

/// Everything a simulation run produces.
///
/// ## Sharded merges: exact fields vs bounds
///
/// This is the one place that catalogues how each field behaves when a
/// `--shards N` run merges per-shard reports (the per-field docs repeat
/// the detail):
///
/// - **Exact (bit-identical at every shard count):** `sim_time_s`,
///   `energy` and `per_disk_energy` (summed in ascending global-disk
///   order), `responses` in histogram mode (canonical per-disk merge) and
///   exact mode (canonical concatenation), `per_disk_responses`,
///   `completions` / `completion_log` (canonical `(time, req)` order),
///   `spin_downs`/`spin_ups`, `cache`/`cache_tiers`/`per_disk_cache_tiers`
///   (counters summed in tier-then-ascending-disk order),
///   `per_disk_served`, `peak_disk_queue` (per-disk trajectories are
///   shard-invariant, so the cross-shard max is the unsharded value),
///   `availability`, `windows` (per-disk collectors reassembled in
///   ascending global-disk order, then re-derived window by window with
///   the same fold the unsharded finish uses).
/// - **Per-shard observations (no single-run equivalent):**
///   `per_shard_event_peaks` — each shard's own heap peak. The sum is a
///   deterministic upper bound on the unsharded peak; the max is the
///   tightest per-thread bound. Exposed raw so callers pick the
///   aggregation ([`Self::peak_event_queue_max`] /
///   [`Self::peak_event_queue_sum`]).
/// - **Bound, not exact:** `CompletionLogSummary::peak_buffered` sums the
///   writers' and merger's peaks, which need not coincide in time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Wall-clock span of the simulation (≥ trace horizon), seconds.
    pub sim_time_s: f64,
    /// Fleet-aggregate energy.
    pub energy: EnergyBreakdown,
    /// Per-disk energy, in disk order.
    pub per_disk_energy: Vec<EnergyBreakdown>,
    /// Response-time samples for requests served by disks *and* the cache,
    /// aggregated per `SimConfig::metrics`. In histogram mode this is
    /// derived at finish by merging the cache-hit collector and then the
    /// per-disk collectors in ascending disk order — a canonical order
    /// that makes the global statistics bit-identical at every shard
    /// count. In exact mode the samples are recorded live in completion
    /// order (sharded exact runs concatenate per-disk samples in disk
    /// order instead: same multiset, bit-identical quantiles).
    pub responses: ResponseStats,
    /// Response-time samples per disk, in disk order. Cache hits are
    /// recorded against the disk holding the file — for per-disk scope
    /// that is the disk whose private slice served the hit; for global
    /// scope the shared front's hits are attributed the same way, which
    /// is what keeps the merged global statistics shard-invariant.
    pub per_disk_responses: Vec<ResponseStats>,
    /// Per-request completion log records, when
    /// `SimConfig::completion_log` is [`CompletionLogMode::Memory`]
    /// (`None` in the streamed CSV/digest modes — see `completion_log`).
    /// Canonical `(completion time, request ordinal)` order, identical at
    /// every shard count.
    ///
    /// [`CompletionLogMode::Memory`]: crate::complog::CompletionLogMode
    pub completions: Option<Vec<Completion>>,
    /// Counters and FNV-1a digest over the canonical completion stream,
    /// present whenever `SimConfig::completion_log` is not `Off`. Two
    /// runs wrote byte-identical logs iff these summaries match.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub completion_log: Option<CompletionLogSummary>,
    /// Total completed spin-down transitions across the fleet.
    pub spin_downs: u64,
    /// Total completed spin-up transitions across the fleet.
    pub spin_ups: u64,
    /// Cache statistics, when a cache was configured. For a multi-tier
    /// hierarchy this is the aggregate view (hits summed over tiers,
    /// misses = requests missing *every* tier, so `hits + misses` still
    /// counts every probed request); for the legacy flat LRU it is exactly
    /// that cache's counters. Per-disk-scope runs sum over disk slices.
    pub cache: Option<CacheStats>,
    /// Per-tier cache statistics, shallowest tier first, when a cache was
    /// configured (a single row for the legacy flat LRU). Oversize
    /// rejections are counted per tier — a file can fit the SSD tier while
    /// exceeding the DRAM tier. Sharded and per-disk runs sum the
    /// counters in tier-then-ascending-global-disk order (the same
    /// deterministic fold discipline as energy), so the merged rows are
    /// bit-identical at every shard count.
    pub cache_tiers: Option<Vec<CacheStats>>,
    /// Per-disk per-tier cache statistics (outer index: global disk
    /// order; inner: shallowest tier first), present only for
    /// per-disk-scope hierarchies, where every disk owns a private slice
    /// of each tier. `None` for global scope — a shared front's counters
    /// have no per-disk decomposition (under sharding they partition by
    /// *file*, not disk).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub per_disk_cache_tiers: Option<Vec<Vec<CacheStats>>>,
    /// Number of disks simulated (fleet size).
    pub disks: usize,
    /// Requests served per disk, in disk order (excludes cache hits).
    pub per_disk_served: Vec<u64>,
    /// Per-shard peaks of the event heap, in shard order (one entry for
    /// an unsharded run). Each entry is that shard's largest number of
    /// simultaneously pending events — O(shard disks) under streamed
    /// arrivals, O(requests) when preloaded. Kept raw rather than
    /// pre-aggregated: [`Self::peak_event_queue_max`] is the tightest
    /// per-thread bound (what the O(disks) invariants check), while
    /// [`Self::peak_event_queue_sum`] is a deterministic upper bound on
    /// the unsharded heap peak (the shards' heaps together never hold
    /// more than the one heap would).
    pub per_shard_event_peaks: Vec<usize>,
    /// Largest number of requests simultaneously pending in any one disk's
    /// queue. Together with the event-heap peaks and the histogram bucket
    /// cap this bounds the engine's per-request resident state: a streamed
    /// replay holds O(disks + buckets + peak backlog), where the backlog is
    /// a property of the workload's utilisation, not of the request count.
    /// Sharding does not change this value: each disk's queue trajectory is
    /// identical at every shard count, so the merged report takes the
    /// cross-shard **max** (never a sum), which equals the unsharded peak
    /// exactly.
    pub peak_disk_queue: usize,
    /// Availability accounting, present iff the run had a fault plan
    /// (`SimConfig::faults`). `None` on every no-fault run, so legacy
    /// reports — including the golden fixture — are byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub availability: Option<AvailabilityStats>,
    /// Windowed time-series metrics (see [`crate::windows`]), present iff
    /// `SimConfig::windows` set a tumbling window width. `None` on every
    /// windows-off run, so legacy reports — including the golden fixture
    /// — are byte-identical. The derived rows (and the per-disk
    /// collectors they fold) are bit-identical at every shard count.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub windows: Option<crate::windows::WindowedReport>,
}

impl SimReport {
    /// Largest per-shard event-heap peak — the tightest per-thread bound
    /// (equals the unsharded peak when `shards == 1`).
    pub fn peak_event_queue_max(&self) -> usize {
        self.per_shard_event_peaks
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Sum of the per-shard event-heap peaks — a deterministic upper
    /// bound on what one unsharded heap would have peaked at.
    pub fn peak_event_queue_sum(&self) -> usize {
        self.per_shard_event_peaks.iter().sum()
    }

    /// Mean electrical power over the run, watts (whole fleet).
    pub fn mean_power_w(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            self.energy.total_joules() / self.sim_time_s
        } else {
            0.0
        }
    }

    /// `q`-quantile of the global response distribution without requiring
    /// a mutable report — the test/reporting accessor that replaces the
    /// `report.responses.clone()` + sort pattern. Clones the collector
    /// once (O(n) in exact mode, O(buckets) in histogram mode); batch
    /// several quantiles through [`Self::response_quantiles`].
    pub fn response_quantile(&self, q: f64) -> f64 {
        self.responses.clone().quantile(q)
    }

    /// Several quantiles of the global response distribution from one
    /// clone (and, in exact mode, one sort).
    pub fn response_quantiles(&self, qs: &[f64]) -> Vec<f64> {
        let mut stats = self.responses.clone();
        qs.iter().map(|&q| stats.quantile(q)).collect()
    }

    /// 95th percentile of the global response distribution.
    pub fn response_p95(&self) -> f64 {
        self.response_quantile(0.95)
    }

    /// 99th percentile of the global response distribution.
    pub fn response_p99(&self) -> f64 {
        self.response_quantile(0.99)
    }

    /// `q`-quantile of one disk's response distribution (cache hits
    /// included, attributed to the disk holding the file), without
    /// requiring a mutable report.
    pub fn per_disk_response_quantile(&self, disk: usize, q: f64) -> f64 {
        self.per_disk_responses[disk].clone().quantile(q)
    }

    /// Energy the fleet would have used never leaving the *idle* state —
    /// the §5.1 normaliser ("spinning N disks without any power-saving
    /// mechanism"), ignoring the (identical) service energy.
    pub fn always_on_idle_joules(&self, idle_power_w: f64) -> f64 {
        idle_power_w * self.sim_time_s * self.disks as f64
    }

    /// Power-saving fraction of this run against a reference energy:
    /// `1 − E_this/E_ref`.
    pub fn saving_vs(&self, reference_joules: f64) -> f64 {
        if reference_joules <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy.total_joules() / reference_joules
    }

    /// Seconds the fleet spent in `state`, summed over disks.
    pub fn fleet_seconds_in(&self, state: PowerState) -> f64 {
        self.energy.seconds_in(state)
    }

    /// Utilisation of one disk: fraction of the run spent seeking or
    /// transferring. 0 when the run had zero length.
    pub fn disk_utilisation(&self, disk: usize) -> f64 {
        if self.sim_time_s <= 0.0 {
            return 0.0;
        }
        let b = &self.per_disk_energy[disk];
        (b.seconds_in(PowerState::Active) + b.seconds_in(PowerState::Seek)) / self.sim_time_s
    }

    /// Number of disks that served at least one request.
    pub fn active_disks(&self) -> usize {
        self.per_disk_served.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = ResponseStats::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            r.record(v);
        }
        assert_eq!(r.quantile(0.0), 1.0);
        assert_eq!(r.median(), 3.0);
        assert_eq!(r.quantile(0.8), 4.0);
        assert_eq!(r.quantile(1.0), 5.0);
        assert_eq!(r.max(), 5.0);
        assert!((r.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p95_p99_are_nearest_rank_tail_quantiles() {
        let mut r = ResponseStats::new();
        for v in 1..=100 {
            r.record(v as f64);
        }
        assert_eq!(r.p95(), 95.0);
        assert_eq!(r.p99(), 99.0);
        assert_eq!(r.quantile(1.0), 100.0);
    }

    /// The single empty-recorder contract, checked for both modes: zero
    /// statistics, vacuous deadline, zero quantiles at every rank.
    #[test]
    fn empty_stats_are_zeroes_in_both_modes() {
        for mode in [MetricsMode::Exact, MetricsMode::Histogram] {
            let mut r = ResponseStats::with_mode(mode);
            assert!(r.is_empty());
            assert_eq!(r.len(), 0);
            assert_eq!(r.mean(), 0.0, "{mode:?}");
            assert_eq!(r.median(), 0.0, "{mode:?}");
            assert_eq!(r.max(), 0.0, "{mode:?}");
            assert_eq!(r.quantile(0.0), 0.0, "{mode:?}");
            assert_eq!(r.quantile(1.0), 0.0, "{mode:?}");
            assert_eq!(r.fraction_within(1.0), 1.0, "{mode:?}");
        }
    }

    #[test]
    fn fraction_within_bound() {
        let mut r = ResponseStats::new();
        for v in [1.0, 2.0, 10.0, 20.0] {
            r.record(v);
        }
        assert!((r.fraction_within(10.0) - 0.75).abs() < 1e-12);
        let _ = r.median();
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = ResponseStats::new();
        a.record(1.0);
        let mut b = ResponseStats::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    /// NaN, infinity and negatives are rejected at the single `record`
    /// gate, in both modes — nothing downstream ever sees them.
    #[test]
    fn bad_samples_rejected_in_both_modes() {
        for mode in [MetricsMode::Exact, MetricsMode::Histogram] {
            for bad in [-0.1, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let result = std::panic::catch_unwind(move || {
                    let mut r = ResponseStats::with_mode(mode);
                    r.record(bad);
                });
                assert!(result.is_err(), "{mode:?} accepted {bad}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad sample")]
    fn negative_sample_rejected() {
        ResponseStats::new().record(-0.1);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_out_of_range_rejected() {
        ResponseStats::new().quantile(1.5);
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut r = ResponseStats::new();
        r.record(5.0);
        r.record(1.0);
        assert_eq!(r.median(), 1.0);
        r.record(0.5);
        assert_eq!(r.quantile(0.0), 0.5, "sort flag must reset on record");
    }

    #[test]
    fn histogram_mode_tracks_exact_scalars() {
        let mut r = ResponseStats::histogram();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            r.record(v);
        }
        assert_eq!(r.mode(), MetricsMode::Histogram);
        assert_eq!(r.len(), 5);
        assert!((r.mean() - 3.0).abs() < 1e-12, "mean is exact");
        assert_eq!(r.max(), 5.0, "max is exact");
    }

    #[test]
    fn histogram_quantiles_within_documented_bound() {
        let mut h = ResponseStats::histogram();
        let mut x = ResponseStats::exact();
        // A decade-spanning deterministic sample set.
        let mut v = 0.001;
        while v < 5_000.0 {
            h.record(v);
            x.record(v);
            v *= 1.003;
        }
        let bound = h.quantile_error_bound();
        assert!(bound > 0.0 && bound <= 1.0 / 256.0 + 1e-15);
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let approx = h.quantile(q);
            let exact = x.quantile(q);
            assert!(
                (approx - exact).abs() <= bound * exact + 1e-12,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(x.quantile_error_bound(), 0.0);
    }

    #[test]
    fn histogram_memory_is_bucket_bound() {
        let mut h = StreamingHistogram::new();
        for i in 0..100_000u64 {
            h.record((i % 977) as f64 * 0.01 + 1e-6);
        }
        assert_eq!(h.len(), 100_000);
        assert!(h.buckets() <= StreamingHistogram::max_buckets());
        assert!(
            StreamingHistogram::max_buckets() < 10_000,
            "bucket cap stays small: {}",
            StreamingHistogram::max_buckets()
        );
    }

    #[test]
    fn histogram_zero_bucket_and_clamping() {
        let mut h = StreamingHistogram::new();
        h.record(0.0);
        h.record(1e-12); // below the resolution floor → zero bucket
        h.record(2.0);
        assert_eq!(h.len(), 3);
        assert_eq!(h.quantile(0.0), 0.0);
        // quantile(1.0) clamps to the exactly-tracked max.
        assert!(h.quantile(1.0) <= 2.0 + 1e-12);
        assert!((h.quantile(1.0) - 2.0).abs() <= 2.0 / 256.0);
    }

    #[test]
    fn histogram_merge_matches_bulk_recording() {
        let mut a = ResponseStats::histogram();
        let mut b = ResponseStats::histogram();
        let mut all = ResponseStats::histogram();
        for i in 0..500 {
            let v = 0.01 * (i as f64 + 1.0);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        // Bucket counts and the exact min/max agree with bulk recording, so
        // every quantile lands in the same bucket; the running sum may
        // differ in the last ulps (float addition is order-dependent), so
        // mean is compared with a tolerance rather than bit-exactly.
        assert_eq!(a.len(), 500);
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(a.max(), all.max());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
    }

    #[test]
    fn histogram_absorbs_exact_on_merge() {
        let mut h = ResponseStats::histogram();
        let mut e = ResponseStats::exact();
        e.record(1.0);
        e.record(2.0);
        h.merge(&e);
        assert_eq!(h.len(), 2);
        assert!((h.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot merge a histogram into an exact collector")]
    fn exact_cannot_absorb_histogram() {
        let mut e = ResponseStats::exact();
        let mut h = ResponseStats::histogram();
        h.record(1.0);
        e.merge(&h);
    }

    #[test]
    fn histogram_equality_ignores_trailing_bucket_growth() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        a.record(1.0);
        a.record(1000.0); // grows the bucket vector
        b.record(1.0);
        b.record(1000.0);
        assert_eq!(a, b);
        let mut c = StreamingHistogram::new();
        c.record(1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn availability_stats_conservation_and_fraction() {
        let mut a = AvailabilityStats {
            arrivals: 100,
            completed: 90,
            retried: 7,
            shed: 4,
            failed: 2,
            wake_failures: 3,
            crashes: 1,
            in_flight: 4,
            per_disk_downtime_s: vec![0.0, 30.0, 0.0, 70.0],
            availability: 0.0,
            degraded: ResponseStats::exact(),
        };
        assert!(a.conservation_holds());
        assert_eq!(a.total_downtime_s(), 100.0);
        a.recompute_availability(4, 250.0);
        assert!((a.availability - 0.9).abs() < 1e-12);
        assert_eq!(a.degraded_p95(), 0.0, "no degraded completions yet");
        a.degraded.record(2.5);
        assert_eq!(a.degraded_p95(), 2.5);
        a.failed += 1;
        assert!(!a.conservation_holds());
        // Zero-length runs are vacuously fully available.
        a.recompute_availability(0, 0.0);
        assert_eq!(a.availability, 1.0);
    }

    #[test]
    fn mode_default_and_constructors() {
        assert_eq!(ResponseStats::new().mode(), MetricsMode::Exact);
        assert_eq!(ResponseStats::default().mode(), MetricsMode::Exact);
        assert_eq!(ResponseStats::histogram().mode(), MetricsMode::Histogram);
        assert_eq!(MetricsMode::default(), MetricsMode::Exact);
    }
}
