//! Runtime state for seeded deterministic fault injection.
//!
//! The [`FaultPlan`](spindown_workload::FaultPlan) (parsed in
//! `spindown_workload::fault`) *describes* a failure regime; this module
//! holds the *live* per-engine state the event loop consults — per-disk RNG
//! streams, crash schedules, retry ledgers, downtime clocks and the
//! availability counters that end up in
//! [`AvailabilityStats`](crate::metrics::AvailabilityStats).
//!
//! ## Determinism and shard invariance
//!
//! Every random draw comes from a per-disk `SmallRng` seeded from the
//! plan's seed combined with the disk's **global** id, and every draw
//! happens at an event on that disk's own timeline (a spin-up completion,
//! a service completion). Disk trajectories are independent of each other,
//! so a sharded run — where each shard owns a strided subset of the fleet
//! — makes exactly the same draws at exactly the same simulated times as
//! the unsharded run, and merged reports stay bit-identical across shard
//! counts.
//!
//! ## The no-fault fast path
//!
//! An engine whose config carries `FaultPlan::none()` never constructs a
//! `FaultRuntime` at all: every hook in the event loop is behind an
//! `Option` check, so the no-fault replay executes the identical sequence
//! of floating-point operations it did before fault injection existed.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use spindown_workload::FaultPlan;

use crate::metrics::{AvailabilityStats, MetricsMode, ResponseStats};

/// Per-disk seed spread: the same golden-ratio multiplier the stochastic
/// policies use to derive independent per-disk streams from one seed.
pub(crate) const DISK_SEED_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

/// A transiently-failed request waiting out its backoff before re-entering
/// its disk's queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingRetry {
    /// When the backoff expires.
    pub fire: f64,
    /// Trace index of the request.
    pub req: usize,
    /// Request size, bytes.
    pub bytes: u64,
    /// The *original* arrival stamp — response time spans every retry.
    pub arrival: f64,
    /// Platter-position proxy (file index).
    pub pos: u64,
}

/// Live fault-injection state for one engine instance (one shard, or the
/// whole fleet unsharded). All vectors are indexed by *local* disk id;
/// local disk `d` is global disk `d * stride + shard` (0/1 unsharded).
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    /// One independent stream per local disk, seeded from the plan seed
    /// and the disk's global id.
    rngs: Vec<SmallRng>,
    /// Scheduled crash times per local disk, ascending.
    pub crash_times: Vec<Vec<f64>>,
    /// Fail-slow windows per local disk: `(factor, from_s, to_s)`.
    failslow: Vec<Vec<(f64, f64, f64)>>,
    /// Whether the disk is currently offline.
    pub down: Vec<bool>,
    /// When the current outage started (meaningful while `down`).
    pub down_since: Vec<f64>,
    /// Completed outage seconds per disk.
    pub downtime: Vec<f64>,
    /// A crash landed mid-phase and waits for the next phase boundary.
    pub pending_crash: Vec<bool>,
    /// A repair completed mid-descent and waits for the disk to settle.
    pub pending_repair: Vec<bool>,
    /// Consecutive failed spin-up attempts on the current wake pile-up.
    pub wake_attempts: Vec<u32>,
    /// Do not retry a wake before this time (backoff hold).
    pub wake_hold_until: Vec<f64>,
    /// Completion time of the disk's last repair (0 if never crashed).
    pub last_repair: Vec<f64>,
    /// Whether the in-flight service was stretched by a fail-slow window.
    pub current_scaled: Vec<bool>,
    /// Transient-retry attempts per in-flight request, keyed by trace
    /// index (entries are dropped on completion or budget exhaustion).
    pub attempts: Vec<HashMap<usize, u32>>,
    /// Requests waiting out a transient backoff, per disk.
    pub pending_retries: Vec<Vec<PendingRetry>>,
    /// Degraded-mode response collectors, one per local disk, merged in
    /// global disk order at finish so the statistic is shard-stable.
    pub degraded: Vec<ResponseStats>,
    /// Counter: requests that arrived (mapped), including cache hits.
    pub arrivals: u64,
    /// Counter: completions (cache hits included).
    pub completed: u64,
    /// Counter: transient retries performed.
    pub retried: u64,
    /// Counter: requests shed at admission.
    pub shed: u64,
    /// Counter: requests dropped after exhausting the retry budget.
    pub failed: u64,
    /// Counter: failed spin-up attempts.
    pub wake_failures: u64,
    /// Counter: fail-stop crashes applied.
    pub crashes: u64,
}

impl FaultRuntime {
    /// Build the runtime for `fleet` local disks of a (possibly sharded)
    /// engine. `shard`/`stride` position the local disks in the global
    /// fleet (`0`/`1` unsharded).
    pub fn new(
        plan: &FaultPlan,
        fleet: usize,
        shard: usize,
        stride: usize,
        mode: MetricsMode,
    ) -> Self {
        let stride = stride.max(1);
        let global = |local: usize| local * stride + shard;
        let rngs = (0..fleet)
            .map(|d| {
                SmallRng::seed_from_u64(
                    plan.seed
                        .wrapping_add((global(d) as u64).wrapping_mul(DISK_SEED_SPREAD)),
                )
            })
            .collect();
        let mut crash_times = vec![Vec::new(); fleet];
        for c in &plan.crashes {
            if fleet > 0 && c.disk % stride == shard {
                let local = c.disk / stride;
                if local < fleet {
                    crash_times[local].push(c.at_s);
                }
            }
        }
        for times in &mut crash_times {
            times.sort_by(f64::total_cmp);
        }
        let mut failslow = vec![Vec::new(); fleet];
        for f in &plan.failslow {
            if fleet > 0 && f.disk % stride == shard {
                let local = f.disk / stride;
                if local < fleet {
                    failslow[local].push((f.factor, f.from_s, f.to_s));
                }
            }
        }
        FaultRuntime {
            plan: plan.clone(),
            rngs,
            crash_times,
            failslow,
            down: vec![false; fleet],
            down_since: vec![0.0; fleet],
            downtime: vec![0.0; fleet],
            pending_crash: vec![false; fleet],
            pending_repair: vec![false; fleet],
            wake_attempts: vec![0; fleet],
            wake_hold_until: vec![0.0; fleet],
            last_repair: vec![0.0; fleet],
            current_scaled: vec![false; fleet],
            attempts: vec![HashMap::new(); fleet],
            pending_retries: vec![Vec::new(); fleet],
            degraded: vec![ResponseStats::with_mode(mode); fleet],
            arrivals: 0,
            completed: 0,
            retried: 0,
            shed: 0,
            failed: 0,
            wake_failures: 0,
            crashes: 0,
        }
    }

    /// The plan this runtime executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw whether this service completion suffers a transient I/O error.
    pub fn draw_transient(&mut self, d: usize) -> bool {
        self.plan.transient_p > 0.0 && self.rngs[d].random_bool(self.plan.transient_p)
    }

    /// Draw whether this spin-up attempt fails.
    pub fn draw_wakefail(&mut self, d: usize) -> bool {
        self.plan.wakefail_p > 0.0 && self.rngs[d].random_bool(self.plan.wakefail_p)
    }

    /// The fail-slow factor covering time `t` on disk `d`, if any (the
    /// first matching window wins; factors do not compose).
    pub fn failslow_factor(&self, d: usize, t: f64) -> Option<f64> {
        self.failslow[d]
            .iter()
            .find(|&&(_, from, to)| t >= from && t < to)
            .map(|&(factor, _, _)| factor)
    }

    /// Whether admission control sheds an arrival given the disk's
    /// current queue length.
    pub fn sheds(&self, queue_len: usize) -> bool {
        self.plan.shed_watermark > 0 && queue_len >= self.plan.shed_watermark
    }

    /// Classify a completion as degraded: it was retried, stretched by a
    /// fail-slow window, or arrived before the disk's last repair
    /// completed (i.e. waited through an outage).
    pub fn is_degraded(&self, d: usize, req: usize, arrival: f64) -> bool {
        self.current_scaled[d]
            || arrival < self.last_repair[d]
            || self.attempts[d].contains_key(&req)
    }

    /// Requests still queued nowhere visible to the actors: transient
    /// retries waiting out their backoff.
    pub fn pending_retry_count(&self) -> u64 {
        self.pending_retries.iter().map(|v| v.len() as u64).sum()
    }

    /// Assemble the availability block at `t_end`. `queued` counts
    /// requests still sitting in disk queues (a crashed-and-never-repaired
    /// disk keeps its backlog). The caller merges shard blocks and then
    /// recomputes the availability fraction over the global fleet.
    pub fn into_stats(
        mut self,
        t_end: f64,
        queued: u64,
        disks: usize,
        mode: MetricsMode,
    ) -> AvailabilityStats {
        let mut per_disk_downtime_s = Vec::with_capacity(self.down.len());
        for d in 0..self.down.len() {
            let open = if self.down[d] {
                (t_end - self.down_since[d]).max(0.0)
            } else {
                0.0
            };
            per_disk_downtime_s.push(self.downtime[d] + open);
        }
        let mut degraded = ResponseStats::with_mode(mode);
        for per_disk in &self.degraded {
            degraded.merge(per_disk);
        }
        let in_flight = queued + self.pending_retry_count();
        self.pending_retries.clear();
        let mut stats = AvailabilityStats {
            arrivals: self.arrivals,
            completed: self.completed,
            retried: self.retried,
            shed: self.shed,
            failed: self.failed,
            wake_failures: self.wake_failures,
            crashes: self.crashes,
            in_flight,
            per_disk_downtime_s,
            availability: 1.0,
            degraded,
        };
        stats.recompute_availability(disks, t_end);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spindown_workload::FaultPlan;

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).unwrap()
    }

    #[test]
    fn crash_and_failslow_specs_land_on_the_owning_shard() {
        let p = plan("crash@t=500:d7 | failslow:d3:x4@200..900");
        // Unsharded: disk 7 crashes, disk 3 slows.
        let rt = FaultRuntime::new(&p, 10, 0, 1, MetricsMode::Exact);
        assert_eq!(rt.crash_times[7], vec![500.0]);
        assert!(rt.crash_times[3].is_empty());
        assert_eq!(rt.failslow_factor(3, 200.0), Some(4.0));
        assert_eq!(rt.failslow_factor(3, 900.0), None, "half-open window");
        assert_eq!(rt.failslow_factor(7, 500.0), None);
        // Sharded S=2: global disk 7 lives on shard 1 as local 3; global
        // disk 3 on shard 1 as local 1.
        let s1 = FaultRuntime::new(&p, 5, 1, 2, MetricsMode::Exact);
        assert_eq!(s1.crash_times[3], vec![500.0]);
        assert_eq!(s1.failslow_factor(1, 300.0), Some(4.0));
        let s0 = FaultRuntime::new(&p, 5, 0, 2, MetricsMode::Exact);
        assert!(s0.crash_times.iter().all(Vec::is_empty));
    }

    #[test]
    fn per_disk_streams_are_shard_invariant() {
        let p = plan("wakefail:p=0.5 | seed=42");
        let mut unsharded = FaultRuntime::new(&p, 8, 0, 1, MetricsMode::Exact);
        let mut shard0 = FaultRuntime::new(&p, 4, 0, 2, MetricsMode::Exact);
        let mut shard1 = FaultRuntime::new(&p, 4, 1, 2, MetricsMode::Exact);
        for d in 0..8usize {
            let want: Vec<bool> = (0..16).map(|_| unsharded.draw_wakefail(d)).collect();
            let sharded = if d % 2 == 0 { &mut shard0 } else { &mut shard1 };
            let got: Vec<bool> = (0..16).map(|_| sharded.draw_wakefail(d / 2)).collect();
            assert_eq!(want, got, "disk {d}");
        }
    }

    #[test]
    fn zero_probability_draws_never_touch_the_rng() {
        let p = plan("crash@t=10:d0");
        let mut rt = FaultRuntime::new(&p, 1, 0, 1, MetricsMode::Exact);
        assert!(!rt.draw_transient(0));
        assert!(!rt.draw_wakefail(0));
    }

    #[test]
    fn shed_watermark_gates_admission() {
        let p = plan("transient:p=0.1 | shed=4");
        let rt = FaultRuntime::new(&p, 1, 0, 1, MetricsMode::Exact);
        assert!(!rt.sheds(3));
        assert!(rt.sheds(4));
        let no_shed = FaultRuntime::new(&plan("transient:p=0.1"), 1, 0, 1, MetricsMode::Exact);
        assert!(!no_shed.sheds(1_000_000));
    }

    #[test]
    fn into_stats_accounts_open_outages_and_in_flight() {
        let p = plan("crash@t=100:d0 | mttr=300");
        let mut rt = FaultRuntime::new(&p, 2, 0, 1, MetricsMode::Exact);
        rt.arrivals = 10;
        rt.completed = 6;
        rt.shed = 1;
        rt.failed = 1;
        rt.down[0] = true;
        rt.down_since[0] = 100.0;
        rt.downtime[1] = 50.0;
        rt.pending_retries[1].push(PendingRetry {
            fire: 500.0,
            req: 9,
            bytes: 1,
            arrival: 400.0,
            pos: 0,
        });
        let stats = rt.into_stats(400.0, 1, 2, MetricsMode::Exact);
        assert_eq!(stats.per_disk_downtime_s, vec![300.0, 50.0]);
        assert_eq!(stats.in_flight, 2, "one queued + one pending retry");
        assert!(stats.conservation_holds());
        // 350 s of downtime over 2 disks × 400 s.
        assert!((stats.availability - (1.0 - 350.0 / 800.0)).abs() < 1e-12);
    }
}
