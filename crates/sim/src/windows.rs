//! Windowed time-series metrics: tumbling-window collectors that turn the
//! end-of-run aggregate into a per-window series without disturbing it.
//!
//! The design mirrors the sharded-merge story everywhere else in this
//! crate: every disk owns its own [`DiskWindows`] collector, fed by the
//! actor (energy, split exactly across window boundaries) and the engine
//! (completions, backlog observations, fault counters) at event instants.
//! Because the per-disk event sequence is shard-invariant, each per-disk
//! collector is bit-identical at any shard count; the fleet-level series
//! is then a pure derivation — [`WindowedReport::derive`] folds the
//! per-disk collectors in ascending global disk order, window by window —
//! so the derived rows are bit-identical too. Both the single-shard
//! finish path and `shard::merge_reports` call the same derivation on the
//! same per-disk data in the same order; there is no second code path to
//! drift.
//!
//! Window arithmetic: window `w` covers `[w·width, (w+1)·width)`. A run
//! that finishes at `t_end` pads every collector to
//! `floor(t_end / width) + 1` windows so an event stamped exactly `t_end`
//! (the common sharded finish instant) always has a window, and every
//! shard agrees on the series length.
//!
//! Empty-window contract: a window with zero completions reports
//! `completions = 0` and mean/p95/p99 of `0.0` — never NaN — inheriting
//! the [`ResponseStats`] empty contract. Rendering layers print such rows
//! as explicit empties rather than skipping them, so the series stays
//! dense and machine-diffable.

use crate::metrics::{MetricsMode, ResponseStats};
use serde::{Deserialize, Serialize};

/// Per-disk tumbling-window collector: one slot per elapsed window, each
/// tracking the energy charged into it, the response samples completed in
/// it, the peak backlog observed at event instants within it, and (under
/// fault injection) shed/failed/retried counters.
///
/// Merging two collectors (window-wise) is the same monoid the run-level
/// metrics use: response collectors merge, energy adds, peaks max,
/// counters add. `tests/windowed_merge_prop.rs` pins that an ordered
/// partition of disks merges to the same bits as the bulk fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskWindows {
    width_s: f64,
    mode: MetricsMode,
    responses: Vec<ResponseStats>,
    energy_j: Vec<f64>,
    peak_queue: Vec<usize>,
    shed: Vec<u64>,
    failed: Vec<u64>,
    retried: Vec<u64>,
}

impl DiskWindows {
    /// Empty collector (the merge identity) with the given tumbling
    /// window width and response-aggregation mode.
    ///
    /// # Panics
    /// If `width_s` is not finite and positive.
    pub fn new(width_s: f64, mode: MetricsMode) -> Self {
        assert!(
            width_s.is_finite() && width_s > 0.0,
            "window width must be finite and positive, got {width_s}"
        );
        DiskWindows {
            width_s,
            mode,
            responses: Vec::new(),
            energy_j: Vec::new(),
            peak_queue: Vec::new(),
            shed: Vec::new(),
            failed: Vec::new(),
            retried: Vec::new(),
        }
    }

    /// Tumbling window width in seconds.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Windows materialised so far (all slot vectors share this length).
    pub fn n_windows(&self) -> usize {
        self.responses.len()
    }

    /// Index of the window containing instant `t`.
    fn index(&self, t: f64) -> usize {
        debug_assert!(t.is_finite() && t >= 0.0, "bad window instant {t}");
        (t / self.width_s) as usize
    }

    /// Grow every slot vector to cover window `w`.
    fn ensure(&mut self, w: usize) {
        while self.responses.len() <= w {
            self.responses.push(ResponseStats::with_mode(self.mode));
            self.energy_j.push(0.0);
            self.peak_queue.push(0);
            self.shed.push(0);
            self.failed.push(0);
            self.retried.push(0);
        }
    }

    /// Record one completed request: bucketed by the instant `t` the
    /// engine records the response sample (arrival-processing time for
    /// cache hits, completion-event time for disk service).
    pub fn record_completion(&mut self, t: f64, response_s: f64) {
        let w = self.index(t);
        self.ensure(w);
        self.responses[w].record(response_s);
    }

    /// Record a shed request (fault injection) at instant `t`.
    pub fn record_shed(&mut self, t: f64) {
        let w = self.index(t);
        self.ensure(w);
        self.shed[w] += 1;
    }

    /// Record a permanently failed request (fault injection) at `t`.
    pub fn record_failed(&mut self, t: f64) {
        let w = self.index(t);
        self.ensure(w);
        self.failed[w] += 1;
    }

    /// Record a retried request (fault injection) at instant `t`.
    pub fn record_retried(&mut self, t: f64) {
        let w = self.index(t);
        self.ensure(w);
        self.retried[w] += 1;
    }

    /// Observe the backlog depth at an event instant; the per-window
    /// figure is the peak over these observations (the same enqueue-site
    /// discipline as the run-level `peak_disk_queue`).
    pub fn observe_queue(&mut self, t: f64, depth: usize) {
        let w = self.index(t);
        self.ensure(w);
        if depth > self.peak_queue[w] {
            self.peak_queue[w] = depth;
        }
    }

    /// Charge `power_w` watts over `[from, to)`, split exactly across
    /// window boundaries so each window integrates only the time spent
    /// inside it.
    pub fn add_energy(&mut self, from: f64, to: f64, power_w: f64) {
        if to <= from {
            return;
        }
        let mut t = from;
        let mut w = self.index(from);
        while t < to {
            let boundary = (w as f64 + 1.0) * self.width_s;
            // Guard against a degenerate boundary (possible only at
            // astronomical window counts where w+1 is not representable):
            // fall through to the segment end rather than spinning.
            let seg_end = if boundary > t { boundary.min(to) } else { to };
            self.ensure(w);
            self.energy_j[w] += power_w * (seg_end - t);
            t = seg_end;
            w += 1;
        }
    }

    /// Close the collector at the run's end instant: pads the slot
    /// vectors to `floor(t_end / width) + 1` windows so every shard (all
    /// of which finish at the same `t_end`) agrees on the series length.
    pub fn finish(&mut self, t_end: f64) {
        self.ensure(self.index(t_end));
    }

    /// Window-wise merge (the shard/disk fold): responses merge, energy
    /// adds, peaks max, counters add. Widths and modes must agree.
    pub fn merge(&mut self, other: &DiskWindows) {
        assert!(
            self.width_s == other.width_s,
            "window width mismatch: {} vs {}",
            self.width_s,
            other.width_s
        );
        assert!(self.mode == other.mode, "window metrics-mode mismatch");
        self.ensure(other.n_windows().saturating_sub(1));
        for w in 0..other.n_windows() {
            self.responses[w].merge(&other.responses[w]);
            self.energy_j[w] += other.energy_j[w];
            if other.peak_queue[w] > self.peak_queue[w] {
                self.peak_queue[w] = other.peak_queue[w];
            }
            self.shed[w] += other.shed[w];
            self.failed[w] += other.failed[w];
            self.retried[w] += other.retried[w];
        }
    }
}

/// One fleet-level window of the derived series. All quantities follow
/// the empty-window contract: a window with `completions == 0` reports
/// zeros (never NaN) for the response columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRow {
    /// Window start instant (inclusive), `w * width`.
    pub start_s: f64,
    /// Window end instant (exclusive), `(w + 1) * width`. The final
    /// window's nominal end may extend past the run's `t_end`.
    pub end_s: f64,
    /// Requests whose response sample was recorded in this window.
    pub completions: u64,
    /// Mean response over the window's completions (0 when empty).
    pub mean_s: f64,
    /// 95th-percentile response over the window (0 when empty).
    pub p95_s: f64,
    /// 99th-percentile response over the window (0 when empty).
    pub p99_s: f64,
    /// Fleet energy integrated over the window, joules.
    pub energy_j: f64,
    /// Peak backlog depth observed at event instants in the window,
    /// maxed across disks.
    pub peak_queue: usize,
    /// Requests shed in the window (0 unless a fault plan is active).
    pub shed: u64,
    /// Requests permanently failed in the window (0 unless faulted).
    pub failed: u64,
    /// Retries scheduled in the window (0 unless faulted).
    pub retried: u64,
}

/// The windowed series attached to a [`crate::metrics::SimReport`] when
/// `SimConfig::windows` is set: the derived fleet-level rows plus the
/// per-disk collectors they were derived from (in ascending global disk
/// order — the carrier `shard::merge_reports` reassembles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedReport {
    /// Tumbling window width in seconds.
    pub width_s: f64,
    /// True when a fault plan was active — the availability columns
    /// (completed/shed/failed/retried) are only rendered in this case.
    pub faulted: bool,
    /// Fleet-level series, one row per window, dense from `t = 0`.
    pub rows: Vec<WindowRow>,
    /// Per-disk collectors in ascending global disk order.
    pub per_disk: Vec<DiskWindows>,
}

impl WindowedReport {
    /// Derive the fleet-level series from per-disk collectors by folding
    /// them in ascending global disk order, window by window. Both the
    /// engine's finish path and the shard merge call exactly this
    /// function on the same per-disk data in the same order, which is
    /// what makes the series bit-identical at any shard count.
    pub fn derive(width_s: f64, per_disk: Vec<DiskWindows>, faulted: bool) -> Self {
        let mode = per_disk.first().map_or(MetricsMode::Exact, |d| d.mode);
        let mut fleet = DiskWindows::new(width_s, mode);
        for d in &per_disk {
            fleet.merge(d);
        }
        let mut rows = Vec::with_capacity(fleet.n_windows());
        for w in 0..fleet.n_windows() {
            let resp = &mut fleet.responses[w];
            let completions = resp.len() as u64;
            let mean_s = resp.mean();
            let p95_s = resp.quantile(0.95);
            let p99_s = resp.quantile(0.99);
            rows.push(WindowRow {
                start_s: w as f64 * width_s,
                end_s: (w as f64 + 1.0) * width_s,
                completions,
                mean_s,
                p95_s,
                p99_s,
                energy_j: fleet.energy_j[w],
                peak_queue: fleet.peak_queue[w],
                shed: fleet.shed[w],
                failed: fleet.failed[w],
                retried: fleet.retried[w],
            });
        }
        WindowedReport {
            width_s,
            faulted,
            rows,
            per_disk,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_splits_exactly_across_boundaries() {
        let mut w = DiskWindows::new(10.0, MetricsMode::Exact);
        // 4 W over [5, 25): 5 s in window 0, 10 s in window 1, 5 s in
        // window 2 — all dyadic, so the split is bit-exact.
        w.add_energy(5.0, 25.0, 4.0);
        assert_eq!(w.n_windows(), 3);
        assert_eq!(w.energy_j, vec![20.0, 40.0, 20.0]);
    }

    #[test]
    fn energy_segment_inside_one_window_does_not_split() {
        let mut w = DiskWindows::new(10.0, MetricsMode::Exact);
        w.add_energy(12.0, 18.0, 2.0);
        assert_eq!(w.n_windows(), 2);
        assert_eq!(w.energy_j, vec![0.0, 12.0]);
    }

    #[test]
    fn empty_segment_charges_nothing() {
        let mut w = DiskWindows::new(10.0, MetricsMode::Exact);
        w.add_energy(5.0, 5.0, 100.0);
        assert_eq!(w.n_windows(), 0);
    }

    #[test]
    fn finish_pads_to_common_length_including_t_end_instant() {
        let mut w = DiskWindows::new(60.0, MetricsMode::Exact);
        w.record_completion(30.0, 0.5);
        // t_end exactly on a boundary still owns a window, because a
        // sample stamped exactly t_end indexes into it.
        w.finish(600.0);
        assert_eq!(w.n_windows(), 11);
        w.record_completion(600.0, 0.25);
        assert_eq!(w.n_windows(), 11);
    }

    #[test]
    fn empty_windows_report_zeros_not_nan() {
        // A dead interval between two bursts: windows 1..=2 see nothing.
        let mut w = DiskWindows::new(10.0, MetricsMode::Exact);
        w.record_completion(3.0, 0.5);
        w.record_completion(35.0, 0.7);
        w.finish(39.0);
        let report = WindowedReport::derive(10.0, vec![w], false);
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows[1..3] {
            assert_eq!(row.completions, 0);
            assert_eq!(row.mean_s, 0.0);
            assert_eq!(row.p95_s, 0.0);
            assert_eq!(row.p99_s, 0.0);
            assert!(row.mean_s.is_finite() && row.p95_s.is_finite());
        }
        assert_eq!(report.rows[0].completions, 1);
        assert_eq!(report.rows[3].completions, 1);
    }

    #[test]
    fn merge_is_window_wise_and_identity_on_empty() {
        let mut a = DiskWindows::new(10.0, MetricsMode::Exact);
        a.record_completion(1.0, 0.5);
        a.add_energy(0.0, 10.0, 1.0);
        a.observe_queue(1.0, 3);
        let mut b = DiskWindows::new(10.0, MetricsMode::Exact);
        b.record_completion(12.0, 0.25);
        b.add_energy(10.0, 20.0, 2.0);
        b.observe_queue(12.0, 5);
        b.record_shed(12.0);

        let mut merged = DiskWindows::new(10.0, MetricsMode::Exact);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.n_windows(), 2);
        assert_eq!(merged.energy_j, vec![10.0, 20.0]);
        assert_eq!(merged.peak_queue, vec![3, 5]);
        assert_eq!(merged.shed, vec![0, 1]);

        // Merging the identity changes nothing.
        let before = merged.clone();
        merged.merge(&DiskWindows::new(10.0, MetricsMode::Exact));
        assert_eq!(merged, before);
    }

    #[test]
    #[should_panic(expected = "window width mismatch")]
    fn merge_rejects_width_mismatch() {
        let mut a = DiskWindows::new(10.0, MetricsMode::Exact);
        a.merge(&DiskWindows::new(20.0, MetricsMode::Exact));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_width_rejected() {
        let _ = DiskWindows::new(0.0, MetricsMode::Exact);
    }

    #[test]
    fn derive_folds_disks_in_order() {
        let mut d0 = DiskWindows::new(10.0, MetricsMode::Exact);
        d0.record_completion(1.0, 0.5);
        d0.add_energy(0.0, 10.0, 1.0);
        let mut d1 = DiskWindows::new(10.0, MetricsMode::Exact);
        d1.record_completion(2.0, 0.25);
        d1.add_energy(0.0, 10.0, 2.0);
        d0.finish(10.0);
        d1.finish(10.0);
        let report = WindowedReport::derive(10.0, vec![d0, d1], false);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].completions, 2);
        assert_eq!(report.rows[0].energy_j, 30.0);
        assert_eq!(report.rows[0].mean_s, 0.375);
        assert_eq!(report.per_disk.len(), 2);
    }
}
