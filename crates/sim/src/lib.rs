#![warn(missing_docs)]
//! # spindown-sim
//!
//! A deterministic discrete-event simulator for multi-disk storage systems
//! with spin-down power management — the Rust replacement for the paper's
//! SimPy environment (§4).
//!
//! The simulated system is the paper's: a workload generator produces file
//! requests; a dispatcher (optionally fronted by a byte-budget cache — the
//! paper's flat LRU or a multi-tier DRAM→SSD hierarchy)
//! forwards each request to the disk holding the file, per a file→disk
//! mapping produced by an allocator from `spindown-packing`; each disk
//! serves its FIFO queue with seek + rotation + transfer timing from
//! `spindown-disk`, spins down after a configurable idleness threshold, and
//! pays the spin-up latency when a request finds it in standby. Energy is
//! integrated exactly per power state.
//!
//! Modules:
//! - [`event`] — the time-ordered event queue.
//! - [`cache`] — byte-budget whole-file replacement policies (LRU —
//!   the 16 GB front of §5.1 — plus segmented LRU and LFU) behind the
//!   [`cache::CachePolicy`] trait.
//! - [`hierarchy`] — ordered cache tiers ([`hierarchy::CacheHierarchy`]):
//!   DRAM→SSD with per-tier capacity, policy and hit bandwidth, global or
//!   per-disk scope.
//! - [`complog`] — the streaming completion log
//!   ([`complog::CompletionLogMode`]): canonical `(time, req)`-ordered
//!   records to memory, CSV or a digest, O(buffer) resident and merged
//!   bit-identically across shards.
//! - [`config`] — [`config::SimConfig`], the idleness-threshold
//!   configuration and the arrival scheduling mode.
//! - [`policy`] — the pluggable [`policy::PowerPolicy`] trait and the
//!   fixed-timeout implementation; online policies plug in from
//!   `spindown-analysis`.
//! - [`discipline`] — pluggable per-disk queue disciplines
//!   ([`discipline::DisciplineChoice`]): FIFO, shortest-job-first with an
//!   aging bound, and elevator batching of requests that pile up during a
//!   spin-up.
//! - [`actor`] — per-disk actor bridging queueing and the state machine.
//! - [`metrics`] — response-time statistics and the simulation report.
//! - [`windows`] — tumbling-window time-series metrics behind
//!   `SimConfig::with_windows`: per-disk [`windows::DiskWindows`]
//!   collectors merged in ascending global disk order into a
//!   [`windows::WindowedReport`], bit-identical at any shard count.
//! - `fault` (internal) — the seeded deterministic fault injector behind
//!   `SimConfig::with_faults`: fail-stop crashes with timed repair,
//!   transient I/O retries with capped exponential backoff, wake
//!   failures, fail-slow windows and watermark load shedding, surfaced as
//!   [`metrics::AvailabilityStats`] on the report.
//! - [`engine`] — the [`engine::Simulator`] main loop (streamed arrivals by
//!   default: O(disks) peak event-queue size).
//! - `shard` (internal) — the sharded parallel replay driver behind
//!   `SimConfig::with_shards`: the fleet partitions by disk id, each shard
//!   runs its own event loop on its own thread, and the per-shard reports
//!   merge bit-identically (histogram metrics, all energy totals) to the
//!   single-threaded run.
//!
//! ## Power policies
//!
//! The engine consults a [`policy::PowerPolicy`] every time a disk settles
//! at a ladder level with an empty queue (level 0 = just became idle); the
//! policy answers with the next [`policy::DescentStep`] — rest here this
//! long, then descend that deep — or `None` to hold, and observes request
//! arrivals, so it can adapt online. On the default two-state ladder this
//! reduces to the classic "how long until spin-down?" consultation. The
//! paper's fixed-threshold family is [`policy::TimeoutPolicy`]; pass any
//! custom implementation through [`engine::Simulator::run_with_policy`]:
//!
//! ```
//! use spindown_packing::{Assignment, DiskBin};
//! use spindown_sim::config::SimConfig;
//! use spindown_sim::engine::Simulator;
//! use spindown_sim::policy::TimeoutPolicy;
//! use spindown_workload::{FileCatalog, Trace};
//!
//! let catalog = FileCatalog::from_parts(vec![1_000_000], vec![1.0]);
//! let trace = Trace::poisson(&catalog, 0.05, 400.0, 7);
//! let assignment = Assignment { disks: vec![DiskBin { items: vec![0], total_s: 0.0, total_l: 0.0 }] };
//! let cfg = SimConfig::paper_default();
//! let report = Simulator::run_with_policy(
//!     &catalog, &trace, &assignment, &cfg, 1,
//!     Box::new(TimeoutPolicy::fixed(30.0)),
//! ).unwrap();
//! assert_eq!(report.responses.len(), trace.len());
//! ```
//!
//! ## Example
//!
//! ```
//! use spindown_packing::{pack_disks, Instance};
//! use spindown_sim::config::SimConfig;
//! use spindown_sim::engine::Simulator;
//! use spindown_workload::{FileCatalog, Trace};
//!
//! let catalog = FileCatalog::paper_table1(200, 0);
//! let trace = Trace::poisson(&catalog, 0.2, 500.0, 42);
//! let cfg = SimConfig::paper_default();
//! let loads = catalog.loads(0.2, |b| b as f64 / cfg.disk.transfer_rate_bps);
//! let sizes: Vec<u64> = catalog.iter().map(|f| f.size_bytes).collect();
//! let inst = Instance::from_raw(&sizes, &loads, cfg.disk.capacity_bytes, 0.7).unwrap();
//! let assignment = pack_disks(&inst);
//! let report = Simulator::run(&catalog, &trace, &assignment, &cfg).unwrap();
//! assert!(report.energy.total_joules() > 0.0);
//! ```

pub mod actor;
pub mod cache;
pub mod complog;
pub mod config;
pub mod discipline;
pub mod engine;
pub mod event;
mod fault;
pub mod hierarchy;
pub mod metrics;
pub mod policy;
mod shard;
pub mod windows;

pub use cache::{CachePolicy, CacheStats, LfuCache, LruCache, SegmentedLru};
pub use complog::{CompletionLogMode, CompletionLogSummary};
pub use config::{ArrivalMode, CacheConfig, ShardFallback, SimConfig, ThresholdPolicy};
pub use discipline::DisciplineChoice;
pub use engine::{SimError, Simulator};
pub use hierarchy::{
    CacheChoice, CacheHierarchy, CacheHierarchyConfig, CachePolicyChoice, CacheScope,
    CacheTierConfig,
};
pub use metrics::{AvailabilityStats, MetricsMode, ResponseStats, SimReport, StreamingHistogram};
pub use policy::{PowerPolicy, TimeoutPolicy};
pub use windows::{DiskWindows, WindowRow, WindowedReport};
