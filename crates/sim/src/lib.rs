#![warn(missing_docs)]
//! # spindown-sim
//!
//! A deterministic discrete-event simulator for multi-disk storage systems
//! with spin-down power management — the Rust replacement for the paper's
//! SimPy environment (§4).
//!
//! The simulated system is the paper's: a workload generator produces file
//! requests; a dispatcher (optionally fronted by a byte-budget LRU cache)
//! forwards each request to the disk holding the file, per a file→disk
//! mapping produced by an allocator from `spindown-packing`; each disk
//! serves its FIFO queue with seek + rotation + transfer timing from
//! `spindown-disk`, spins down after a configurable idleness threshold, and
//! pays the spin-up latency when a request finds it in standby. Energy is
//! integrated exactly per power state.
//!
//! Modules:
//! - [`event`] — the time-ordered event queue.
//! - [`cache`] — the 16 GB LRU front of §5.1.
//! - [`config`] — [`config::SimConfig`] and the idleness-threshold policy.
//! - [`actor`] — per-disk actor bridging queueing and the state machine.
//! - [`metrics`] — response-time statistics and the simulation report.
//! - [`engine`] — the [`engine::Simulator`] main loop.
//!
//! ## Example
//!
//! ```
//! use spindown_packing::{pack_disks, Instance};
//! use spindown_sim::config::SimConfig;
//! use spindown_sim::engine::Simulator;
//! use spindown_workload::{FileCatalog, Trace};
//!
//! let catalog = FileCatalog::paper_table1(200, 0);
//! let trace = Trace::poisson(&catalog, 0.2, 500.0, 42);
//! let cfg = SimConfig::paper_default();
//! let loads = catalog.loads(0.2, |b| b as f64 / cfg.disk.transfer_rate_bps);
//! let sizes: Vec<u64> = catalog.iter().map(|f| f.size_bytes).collect();
//! let inst = Instance::from_raw(&sizes, &loads, cfg.disk.capacity_bytes, 0.7).unwrap();
//! let assignment = pack_disks(&inst);
//! let report = Simulator::run(&catalog, &trace, &assignment, &cfg).unwrap();
//! assert!(report.energy.total_joules() > 0.0);
//! ```

pub mod actor;
pub mod cache;
pub mod config;
pub mod engine;
pub mod event;
pub mod metrics;

pub use cache::LruCache;
pub use config::{CacheConfig, SimConfig, ThresholdPolicy};
pub use engine::{SimError, Simulator};
pub use metrics::{ResponseStats, SimReport};
