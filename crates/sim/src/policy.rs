//! Pluggable spin-down power policies.
//!
//! The engine consults a [`PowerPolicy`] at the three moments that matter to
//! dynamic power management:
//!
//! - **idle start** — a disk just became idle (service completed with an
//!   empty queue, spin-up completed with an empty queue, or simulation
//!   start). The policy answers *how long to wait before spinning down*,
//!   or `None` to stay up for this idle period. `Some(0.0)` spins down
//!   immediately.
//! - **request arrival** — a request was dispatched to the disk (in any
//!   phase). Adaptive policies use this to observe the realised idle-gap
//!   length; the engine itself cancels pending timers by generation.
//! - **spin-down start** — the armed timer fired and the disk begins its
//!   spin-down transition.
//!
//! The closed `ThresholdPolicy` enum of the original engine survives as
//! [`TimeoutPolicy`], the stateless fixed-timeout implementation; richer
//! online policies (randomised ski-rental, adaptive idle prediction) live in
//! `spindown-analysis::online` and plug in through the same trait.
//!
//! ## Contract
//!
//! Policies are consulted once per idle-period start, per disk. The engine
//! guarantees `idle_started` is called even when the resulting timer could
//! not fire before the trace horizon (the policy still observes the idle
//! period; the engine just refuses to schedule past-horizon transitions).
//! A policy must be deterministic given its construction parameters — the
//! simulator's reproducibility guarantee extends to randomised policies
//! only through their seeds.

use spindown_disk::DiskSpec;

use crate::config::ThresholdPolicy;

/// An online spin-down decision procedure, consulted per disk.
pub trait PowerPolicy: Send {
    /// Human-readable identifier used in figures and reports.
    fn name(&self) -> String;

    /// Disk `disk` became idle at time `t`. Return the idle delay after
    /// which it should spin down (`Some(0.0)` = immediately), or `None` to
    /// keep it spinning for this idle period.
    fn idle_started(&mut self, disk: usize, t: f64) -> Option<f64>;

    /// A request was dispatched to disk `disk` at time `t` (any phase;
    /// cache hits never reach the disk and are not reported).
    fn request_arrived(&mut self, _disk: usize, _t: f64) {}

    /// Disk `disk` starts spinning down at time `t` (its timer fired).
    fn spin_down_started(&mut self, _disk: usize, _t: f64) {}
}

/// The paper's fixed-idleness-threshold policy family (§4–5): wait a
/// constant time, then spin down — or never spin down at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutPolicy {
    threshold_s: Option<f64>,
}

impl TimeoutPolicy {
    /// A policy waiting `threshold_s` seconds (`None` = never spin down).
    ///
    /// # Panics
    /// If the threshold is negative or not finite.
    pub fn new(threshold_s: Option<f64>) -> Self {
        if let Some(s) = threshold_s {
            assert!(s.is_finite() && s >= 0.0, "bad threshold {s}");
        }
        TimeoutPolicy { threshold_s }
    }

    /// Fixed threshold in seconds.
    pub fn fixed(threshold_s: f64) -> Self {
        Self::new(Some(threshold_s))
    }

    /// The drive's break-even threshold (the paper's default).
    pub fn break_even(spec: &DiskSpec) -> Self {
        Self::new(ThresholdPolicy::BreakEven.threshold_s(spec))
    }

    /// Never spin down (the §5.1 normalisation baseline).
    pub fn never() -> Self {
        Self::new(None)
    }

    /// Port a [`ThresholdPolicy`] configuration onto the trait.
    pub fn from_config(policy: ThresholdPolicy, spec: &DiskSpec) -> Self {
        Self::new(policy.threshold_s(spec))
    }

    /// The configured threshold (`None` = never).
    pub fn threshold_s(&self) -> Option<f64> {
        self.threshold_s
    }
}

impl PowerPolicy for TimeoutPolicy {
    fn name(&self) -> String {
        match self.threshold_s {
            Some(s) => format!("timeout({s:.1}s)"),
            None => "never".to_owned(),
        }
    }

    fn idle_started(&mut self, _disk: usize, _t: f64) -> Option<f64> {
        self.threshold_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_policy_returns_constant_threshold() {
        let mut p = TimeoutPolicy::fixed(42.0);
        assert_eq!(p.idle_started(0, 0.0), Some(42.0));
        assert_eq!(p.idle_started(3, 999.0), Some(42.0));
        assert_eq!(p.threshold_s(), Some(42.0));
        assert!(p.name().contains("42.0"));
    }

    #[test]
    fn never_policy_returns_none() {
        let mut p = TimeoutPolicy::never();
        assert_eq!(p.idle_started(0, 10.0), None);
        assert_eq!(p.name(), "never");
    }

    #[test]
    fn break_even_matches_threshold_policy() {
        let spec = DiskSpec::seagate_st3500630as();
        let mut p = TimeoutPolicy::break_even(&spec);
        let expect = ThresholdPolicy::BreakEven.threshold_s(&spec);
        assert_eq!(p.idle_started(0, 0.0), expect);
    }

    #[test]
    fn from_config_ports_every_variant() {
        let spec = DiskSpec::seagate_st3500630as();
        assert_eq!(
            TimeoutPolicy::from_config(ThresholdPolicy::Fixed(7.0), &spec).threshold_s(),
            Some(7.0)
        );
        assert_eq!(
            TimeoutPolicy::from_config(ThresholdPolicy::Never, &spec).threshold_s(),
            None
        );
        let be = TimeoutPolicy::from_config(ThresholdPolicy::BreakEven, &spec);
        assert!((be.threshold_s().unwrap() - 53.3).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "bad threshold")]
    fn negative_threshold_rejected() {
        let _ = TimeoutPolicy::fixed(-1.0);
    }
}
