//! Pluggable power policies: descent schedules over the power-state
//! ladder.
//!
//! The engine consults a [`PowerPolicy`] at the moments that matter to
//! dynamic power management:
//!
//! - **settled at a level** — a disk came to rest at some ladder level
//!   with an empty queue: level 0 when it just became idle (service
//!   completed with an empty queue, spin-up completed with an empty
//!   queue, or simulation start), level `l ≥ 1` when a descent step just
//!   completed. The policy answers with the *next descent step* — how
//!   long to rest here before descending, and how deep to go — or `None`
//!   to hold at this level for the remainder of the idle period.
//!   Consulted step by step, the answers form the policy's descent
//!   schedule over the ladder.
//! - **request arrival** — a request was dispatched to the disk (in any
//!   phase). Adaptive policies use this to observe the realised idle-gap
//!   length; the engine itself cancels pending timers by generation.
//! - **descent start** — an armed timer fired and the disk begins
//!   descending toward a deeper level.
//!
//! The closed `ThresholdPolicy` enum of the original engine survives as
//! [`TimeoutPolicy`], the stateless fixed-timeout implementation (wait a
//! constant time at level 0, then descend straight to the deepest level —
//! exactly the paper's two-state behaviour on the canonical ladder);
//! richer online policies (randomised ski-rental, adaptive idle
//! prediction, lower-envelope multi-state descent) live in
//! `spindown-analysis::online` and plug in through the same trait.
//!
//! ## Contract
//!
//! Policies are consulted once per level settled, per disk, per idle
//! period. The engine guarantees the level-0 consultation happens even
//! when the resulting timer could not fire before the trace horizon (the
//! policy still observes the idle period; the engine just refuses to
//! schedule past-horizon transitions). A policy must be deterministic
//! given its construction parameters — the simulator's reproducibility
//! guarantee extends to randomised policies only through their seeds.
//! Policies that draw randomness or update state per idle period must do
//! so only at level 0: deeper settlements belong to the same idle period.

use spindown_disk::DiskSpec;

use crate::config::ThresholdPolicy;

/// One step of a descent schedule: rest at the current level for
/// `rest_s` seconds, then descend to `to_level`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DescentStep {
    /// Seconds to rest at the current level before descending.
    pub rest_s: f64,
    /// Target ladder level. Values deeper than the drive's ladder
    /// (including [`DescentStep::DEEPEST`]) are clamped by the engine to
    /// the deepest level, so ladder-oblivious policies can say "all the
    /// way down" without knowing the depth; a step whose clamped target
    /// is not below the level the disk already rests at is treated as
    /// holding there (same as answering `None`).
    pub to_level: u8,
}

impl DescentStep {
    /// Sentinel target meaning "the drive's deepest level" (engine-clamped).
    pub const DEEPEST: u8 = u8::MAX;

    /// Rest `rest_s` seconds, then descend all the way down.
    pub fn to_deepest(rest_s: f64) -> Self {
        DescentStep {
            rest_s,
            to_level: Self::DEEPEST,
        }
    }

    /// Rest `rest_s` seconds, then descend to `to_level`.
    pub fn to_level(rest_s: f64, to_level: u8) -> Self {
        DescentStep { rest_s, to_level }
    }
}

/// An online descent decision procedure, consulted per disk.
pub trait PowerPolicy: Send {
    /// Human-readable identifier used in figures and reports.
    fn name(&self) -> String;

    /// Disk `disk` came to rest at ladder `level` at time `t` with an
    /// empty queue (level 0 = a fresh idle period). Return the next
    /// descent step, or `None` to hold at this level for the remainder of
    /// the idle period. `DescentStep { rest_s: 0.0, .. }` descends
    /// immediately.
    fn settled(&mut self, disk: usize, level: u8, t: f64) -> Option<DescentStep>;

    /// A request was dispatched to disk `disk` at time `t` (any phase;
    /// cache hits never reach the disk and are not reported).
    fn request_arrived(&mut self, _disk: usize, _t: f64) {}

    /// Disk `disk` starts descending toward `to_level` at time `t` (its
    /// timer fired).
    fn descent_started(&mut self, _disk: usize, _t: f64, _to_level: u8) {}
}

/// The paper's fixed-idleness-threshold policy family (§4–5): wait a
/// constant time at level 0, then descend straight to the deepest level —
/// or never descend at all. On the canonical two-state ladder this is
/// exactly the original spin-down-after-a-threshold behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutPolicy {
    threshold_s: Option<f64>,
}

impl TimeoutPolicy {
    /// A policy waiting `threshold_s` seconds (`None` = never descend).
    ///
    /// # Panics
    /// If the threshold is negative or not finite.
    pub fn new(threshold_s: Option<f64>) -> Self {
        if let Some(s) = threshold_s {
            assert!(s.is_finite() && s >= 0.0, "bad threshold {s}");
        }
        TimeoutPolicy { threshold_s }
    }

    /// Fixed threshold in seconds.
    pub fn fixed(threshold_s: f64) -> Self {
        Self::new(Some(threshold_s))
    }

    /// The drive's break-even threshold (the paper's default; for a
    /// multi-level ladder, the full-descent break-even).
    pub fn break_even(spec: &DiskSpec) -> Self {
        Self::new(ThresholdPolicy::BreakEven.threshold_s(spec))
    }

    /// Never spin down (the §5.1 normalisation baseline).
    pub fn never() -> Self {
        Self::new(None)
    }

    /// Port a [`ThresholdPolicy`] configuration onto the trait.
    pub fn from_config(policy: ThresholdPolicy, spec: &DiskSpec) -> Self {
        Self::new(policy.threshold_s(spec))
    }

    /// The configured threshold (`None` = never).
    pub fn threshold_s(&self) -> Option<f64> {
        self.threshold_s
    }
}

impl PowerPolicy for TimeoutPolicy {
    fn name(&self) -> String {
        match self.threshold_s {
            Some(s) => format!("timeout({s:.1}s)"),
            None => "never".to_owned(),
        }
    }

    fn settled(&mut self, _disk: usize, level: u8, _t: f64) -> Option<DescentStep> {
        if level > 0 {
            return None; // one-shot: already descended as deep as asked.
        }
        self.threshold_s.map(DescentStep::to_deepest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_policy_returns_constant_threshold() {
        let mut p = TimeoutPolicy::fixed(42.0);
        assert_eq!(p.settled(0, 0, 0.0), Some(DescentStep::to_deepest(42.0)));
        assert_eq!(p.settled(3, 0, 999.0), Some(DescentStep::to_deepest(42.0)));
        assert_eq!(p.threshold_s(), Some(42.0));
        assert!(p.name().contains("42.0"));
    }

    #[test]
    fn timeout_policy_holds_at_any_saving_level() {
        let mut p = TimeoutPolicy::fixed(42.0);
        assert_eq!(p.settled(0, 1, 100.0), None);
        assert_eq!(p.settled(0, 2, 100.0), None);
    }

    #[test]
    fn never_policy_returns_none() {
        let mut p = TimeoutPolicy::never();
        assert_eq!(p.settled(0, 0, 10.0), None);
        assert_eq!(p.name(), "never");
    }

    #[test]
    fn break_even_matches_threshold_policy() {
        let spec = DiskSpec::seagate_st3500630as();
        let mut p = TimeoutPolicy::break_even(&spec);
        let expect = ThresholdPolicy::BreakEven.threshold_s(&spec);
        assert_eq!(p.settled(0, 0, 0.0).map(|s| s.rest_s), expect);
    }

    #[test]
    fn from_config_ports_every_variant() {
        let spec = DiskSpec::seagate_st3500630as();
        assert_eq!(
            TimeoutPolicy::from_config(ThresholdPolicy::Fixed(7.0), &spec).threshold_s(),
            Some(7.0)
        );
        assert_eq!(
            TimeoutPolicy::from_config(ThresholdPolicy::Never, &spec).threshold_s(),
            None
        );
        let be = TimeoutPolicy::from_config(ThresholdPolicy::BreakEven, &spec);
        assert!((be.threshold_s().unwrap() - 53.3).abs() < 0.05);
    }

    #[test]
    fn descent_step_constructors() {
        let s = DescentStep::to_deepest(5.0);
        assert_eq!(s.rest_s, 5.0);
        assert_eq!(s.to_level, DescentStep::DEEPEST);
        let s = DescentStep::to_level(1.0, 2);
        assert_eq!(s.to_level, 2);
    }

    #[test]
    #[should_panic(expected = "bad threshold")]
    fn negative_threshold_rejected() {
        let _ = TimeoutPolicy::fixed(-1.0);
    }
}
