//! Multi-tier cache hierarchy in front of the fleet: DRAM → SSD → … →
//! disks, each tier a byte-budget [`CachePolicy`] with its own hit
//! bandwidth.
//!
//! A request probes the tiers in order. [`CachePolicy::access`] admits on
//! a miss, so walking the tiers *is* the upward fill: when tier k hits,
//! every shallower tier has already re-admitted the file on its way down,
//! and the request is served at tier k's bandwidth without waking a disk.
//! A miss at every tier falls through to the dispatcher (and the file is
//! now resident at every tier that could hold it).
//!
//! The hierarchy generalises the paper's §5.1 flat 16 GB LRU: a legacy
//! [`CacheConfig`](crate::config::CacheConfig) is exactly a single-tier
//! LRU hierarchy with [`CacheScope::Global`] (pinned bit-identical by
//! `tests/cache_equivalence.rs`).
//!
//! ## Scope and sharding
//!
//! [`CacheScope::Global`] models one shared front cache. Under `--shards
//! N` the configured budget is partitioned across the event-loop shards
//! by file residency: every file's accesses are confined to the shard
//! hosting its disk, so each shard owns a `shard_fleet / fleet` slice of
//! every tier ([`CacheHierarchyConfig::build_fraction`]) and walks it
//! with no locks on the hot path. At S=1 the slice is the whole budget,
//! so the sharded-global deployment is bit-identical to the legacy
//! shared front; across shard counts the hit/miss trajectory is
//! partition-invariant whenever the working set fits the smallest slice
//! (no evictions) — under eviction pressure per-slice LRU order can
//! diverge from the interleaved shared-front order, which is the honest
//! boundary `tests/cached_shard_equivalence.rs` pins from both sides.
//! [`CacheScope::PerDisk`] gives every disk a private `capacity / fleet`
//! slice of each tier; each slice's trajectory is a function of that
//! disk's own arrival subsequence only, so per-disk runs compose with
//! `--shards N` **bit-identically** at any shard count regardless of
//! eviction pressure.

use serde::{Deserialize, Serialize};
use spindown_workload::FileId;

use crate::cache::{CachePolicy, CacheStats, LfuCache, LruCache, SegmentedLru};
use crate::config::CacheConfig;

/// Which replacement policy a tier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CachePolicyChoice {
    /// Plain byte-budget LRU — the paper's §5.1 policy and the default.
    #[default]
    Lru,
    /// Segmented LRU: probation/protected split, scan-resistant.
    SegmentedLru {
        /// Percent of the tier's byte budget reserved for the protected
        /// segment (0 degenerates to plain LRU).
        protected_pct: u8,
    },
    /// Least-frequently-used with LRU tie-breaking.
    Lfu,
}

impl CachePolicyChoice {
    /// Segmented LRU with the common 80/20 protected split.
    pub fn slru() -> Self {
        CachePolicyChoice::SegmentedLru { protected_pct: 80 }
    }

    /// Instantiate the policy over a byte budget.
    pub fn build(&self, capacity_bytes: u64) -> Box<dyn CachePolicy> {
        match *self {
            CachePolicyChoice::Lru => Box::new(LruCache::new(capacity_bytes)),
            CachePolicyChoice::SegmentedLru { protected_pct } => {
                Box::new(SegmentedLru::new(capacity_bytes, protected_pct))
            }
            CachePolicyChoice::Lfu => Box::new(LfuCache::new(capacity_bytes)),
        }
    }

    /// Short label for tables and sweep-cell names.
    pub fn label(&self) -> String {
        match *self {
            CachePolicyChoice::Lru => "lru".to_owned(),
            CachePolicyChoice::SegmentedLru { protected_pct } => format!("slru{protected_pct}"),
            CachePolicyChoice::Lfu => "lfu".to_owned(),
        }
    }

    /// Parse `lru`, `lfu`, or `slruNN` (NN = protected percent ≤ 100).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lru" => Some(CachePolicyChoice::Lru),
            "lfu" => Some(CachePolicyChoice::Lfu),
            _ => {
                let pct = s.strip_prefix("slru")?.parse::<u8>().ok()?;
                (pct <= 100).then_some(CachePolicyChoice::SegmentedLru { protected_pct: pct })
            }
        }
    }
}

/// One tier of the hierarchy: a byte budget served at a bandwidth under a
/// replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheTierConfig {
    /// Byte budget of the tier.
    pub capacity_bytes: u64,
    /// Bandwidth at which this tier serves hits, bytes/second (hit
    /// response time = size / bandwidth).
    pub bandwidth_bps: f64,
    /// Replacement policy.
    pub policy: CachePolicyChoice,
}

impl CacheTierConfig {
    /// A DRAM-speed tier (1 GB/s — the legacy §5.1 cache bandwidth).
    pub fn dram(capacity_bytes: u64, policy: CachePolicyChoice) -> Self {
        CacheTierConfig {
            capacity_bytes,
            bandwidth_bps: 1.0e9,
            policy,
        }
    }

    /// An SSD-speed tier (500 MB/s).
    pub fn ssd(capacity_bytes: u64, policy: CachePolicyChoice) -> Self {
        CacheTierConfig {
            capacity_bytes,
            bandwidth_bps: 0.5e9,
            policy,
        }
    }
}

/// Whether the hierarchy fronts the whole dispatcher or shards per disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CacheScope {
    /// One shared hierarchy in front of the dispatcher — the paper's
    /// model. Under `--shards N` the budget is partitioned across the
    /// event shards by file residency (see the module docs), keeping the
    /// tier walk lock-free and deterministic.
    #[default]
    Global,
    /// Every disk owns a private `capacity / fleet` slice of each tier,
    /// fed only by its own requests. Composes with `--shards N`
    /// bit-identically at any shard count.
    PerDisk,
}

/// Ordered cache tiers (shallowest first) plus their scope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// Tiers, probed in order; index 0 is the fastest/closest.
    pub tiers: Vec<CacheTierConfig>,
    /// Shared-front or per-disk deployment.
    pub scope: CacheScope,
}

impl CacheHierarchyConfig {
    /// A hierarchy from ordered tiers (shallowest first), global scope.
    pub fn new(tiers: Vec<CacheTierConfig>) -> Self {
        CacheHierarchyConfig {
            tiers,
            scope: CacheScope::Global,
        }
    }

    /// A single-tier hierarchy, global scope.
    pub fn single(tier: CacheTierConfig) -> Self {
        Self::new(vec![tier])
    }

    /// The exact hierarchy a legacy [`CacheConfig`] denotes: one global
    /// LRU tier with the legacy capacity and bandwidth.
    pub fn from_legacy(cache: &CacheConfig) -> Self {
        Self::single(CacheTierConfig {
            capacity_bytes: cache.capacity_bytes,
            bandwidth_bps: cache.bandwidth_bps,
            policy: CachePolicyChoice::Lru,
        })
    }

    /// Switch the deployment scope.
    pub fn with_scope(mut self, scope: CacheScope) -> Self {
        self.scope = scope;
        self
    }

    /// Total byte budget across tiers (the "cache-GB" side of an equal
    /// fleet + cache budget comparison).
    pub fn total_capacity_bytes(&self) -> u64 {
        self.tiers.iter().map(|t| t.capacity_bytes).sum()
    }

    /// Instantiate the runtime hierarchy. `share` divides every tier's
    /// budget (1 for a global hierarchy; the fleet size for one per-disk
    /// slice), so `build(fleet)` called per disk splits the configured
    /// budget evenly across the fleet.
    pub fn build(&self, share: u64) -> CacheHierarchy {
        self.build_fraction(1, share)
    }

    /// Instantiate the hierarchy with `num / den` of every tier's budget —
    /// the sharded-global deployment, where the event shard hosting
    /// `num` of the fleet's `den` disks owns that fraction of the shared
    /// front (its files' accesses are confined to it, so the slices
    /// partition the configured budget with no hot-path locks).
    /// `build_fraction(1, share)` is the per-disk slice [`Self::build`]
    /// hands out; `num == den` keeps the full budget (the unsharded
    /// shared front, bit-identical to the legacy global deployment).
    pub fn build_fraction(&self, num: u64, den: u64) -> CacheHierarchy {
        let den = den.max(1);
        let num = num.clamp(1, den);
        CacheHierarchy {
            tiers: self
                .tiers
                .iter()
                .map(|t| Tier {
                    policy: t
                        .policy
                        .build(t.capacity_bytes / den * num + (t.capacity_bytes % den) * num / den),
                    bandwidth_bps: t.bandwidth_bps,
                })
                .collect(),
        }
    }
}

#[derive(Debug)]
struct Tier {
    policy: Box<dyn CachePolicy>,
    bandwidth_bps: f64,
}

/// A live stack of cache tiers (see the module docs for the probe/fill
/// discipline).
#[derive(Debug)]
pub struct CacheHierarchy {
    tiers: Vec<Tier>,
}

impl CacheHierarchy {
    /// Probe the tiers in order for `file`. A hit at tier k returns
    /// `Some(size / bandwidth_k)` — the hit's service time — after the
    /// shallower tiers have re-admitted the file (upward fill). `None`
    /// means a miss at every tier: the request must go to the disk.
    pub fn access(&mut self, file: FileId, size_bytes: u64) -> Option<f64> {
        for tier in &mut self.tiers {
            if tier.policy.access(file, size_bytes) {
                return Some(size_bytes as f64 / tier.bandwidth_bps);
            }
        }
        None
    }

    /// Per-tier statistics, shallowest first.
    pub fn tier_stats(&self) -> Vec<CacheStats> {
        self.tiers.iter().map(|t| t.policy.stats()).collect()
    }

    /// The hierarchy as one cache: hits sum over tiers, misses are the
    /// deepest tier's (a request misses the hierarchy only by missing
    /// every tier), byte and oversize counters sum. With these rules
    /// `hits + misses` still equals the number of requests probed, because
    /// each deeper tier only sees the previous tier's misses.
    pub fn aggregate_stats(&self) -> CacheStats {
        let mut agg = CacheStats::default();
        for (i, t) in self.tiers.iter().enumerate() {
            let s = t.policy.stats();
            agg.hits += s.hits;
            agg.resident_bytes += s.resident_bytes;
            agg.evicted_bytes += s.evicted_bytes;
            agg.oversize_rejections += s.oversize_rejections;
            if i + 1 == self.tiers.len() {
                agg.misses = s.misses;
            }
        }
        agg
    }

    /// Number of tiers.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }

    /// Flush every tier (fault injection: the disk this slice fronts
    /// crashed). Statistics survive; resident bytes count as evicted.
    pub fn flush(&mut self) {
        for tier in &mut self.tiers {
            tier.policy.flush();
        }
    }
}

/// A compact, `Copy` cache-sizing choice — the fifth joint-planning leg
/// (cache × allocation × policy × discipline × ladder) and the
/// `--cache-tiers` CLI value. `hierarchy()` expands it to the full
/// [`CacheHierarchyConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum CacheChoice {
    /// No cache — the paper's base series and the default grid leg.
    #[default]
    None,
    /// A single DRAM-speed tier of `gb` GB.
    Flat {
        /// Tier capacity in GB (10⁹ bytes).
        gb: u32,
        /// Replacement policy.
        policy: CachePolicyChoice,
    },
    /// A DRAM tier over an SSD tier.
    TwoTier {
        /// DRAM tier capacity in GB.
        dram_gb: u32,
        /// SSD tier capacity in GB.
        ssd_gb: u32,
        /// Replacement policy (both tiers).
        policy: CachePolicyChoice,
    },
}

const GB: u64 = 1_000_000_000;

impl CacheChoice {
    /// Expand to the hierarchy this choice denotes (`None` for no cache).
    pub fn hierarchy(&self) -> Option<CacheHierarchyConfig> {
        match *self {
            CacheChoice::None => None,
            CacheChoice::Flat { gb, policy } => Some(CacheHierarchyConfig::single(
                CacheTierConfig::dram(u64::from(gb) * GB, policy),
            )),
            CacheChoice::TwoTier {
                dram_gb,
                ssd_gb,
                policy,
            } => Some(CacheHierarchyConfig::new(vec![
                CacheTierConfig::dram(u64::from(dram_gb) * GB, policy),
                CacheTierConfig::ssd(u64::from(ssd_gb) * GB, policy),
            ])),
        }
    }

    /// Total cache budget in GB (the equal-budget axis of the shootout).
    pub fn total_gb(&self) -> u32 {
        match *self {
            CacheChoice::None => 0,
            CacheChoice::Flat { gb, .. } => gb,
            CacheChoice::TwoTier {
                dram_gb, ssd_gb, ..
            } => dram_gb + ssd_gb,
        }
    }

    /// Short label for sweep cells: `none`, `lru:16`, `slru80:4+lfu:64` …
    pub fn label(&self) -> String {
        match *self {
            CacheChoice::None => "none".to_owned(),
            CacheChoice::Flat { gb, policy } => format!("{}:{gb}", policy.label()),
            CacheChoice::TwoTier {
                dram_gb,
                ssd_gb,
                policy,
            } => {
                let p = policy.label();
                format!("{p}:{dram_gb}+{p}:{ssd_gb}")
            }
        }
    }

    /// Parse a `--cache-tiers` spec: `none`, `POLICY:GB`, or
    /// `POLICY:GB+POLICY:GB` (two tiers, shallow first, same policy;
    /// POLICY = `lru` | `lfu` | `slruNN`).
    pub fn parse(s: &str) -> Option<Self> {
        if s == "none" {
            return Some(CacheChoice::None);
        }
        let parse_tier = |spec: &str| -> Option<(CachePolicyChoice, u32)> {
            let (policy, gb) = spec.split_once(':')?;
            Some((CachePolicyChoice::parse(policy)?, gb.parse().ok()?))
        };
        match s.split_once('+') {
            None => {
                let (policy, gb) = parse_tier(s)?;
                Some(CacheChoice::Flat { gb, policy })
            }
            Some((shallow, deep)) => {
                let (policy, dram_gb) = parse_tier(shallow)?;
                let (deep_policy, ssd_gb) = parse_tier(deep)?;
                (policy == deep_policy).then_some(CacheChoice::TwoTier {
                    dram_gb,
                    ssd_gb,
                    policy,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId(i)
    }

    #[test]
    fn single_tier_walk_matches_the_flat_policy() {
        let cfg = CacheHierarchyConfig::from_legacy(&CacheConfig::paper_16gb());
        let mut h = cfg.build(1);
        let mut flat = LruCache::new(16 * GB);
        for &(id, size) in &[(1u32, 5 * GB), (2, 5 * GB), (1, 5 * GB), (3, 20 * GB)] {
            let hit = h.access(f(id), size).is_some();
            assert_eq!(hit, flat.access(f(id), size));
        }
        assert_eq!(h.aggregate_stats(), flat.stats());
        assert_eq!(h.tier_stats(), vec![flat.stats()]);
    }

    #[test]
    fn two_tier_hit_fills_upward_and_reports_the_hit_tiers_latency() {
        // Tiny DRAM (10 B) over a large SSD (100 B): file 1 falls out of
        // DRAM but stays in SSD; the re-access hits SSD at SSD latency and
        // refills DRAM.
        let cfg = CacheHierarchyConfig::new(vec![
            CacheTierConfig {
                capacity_bytes: 10,
                bandwidth_bps: 10.0,
                policy: CachePolicyChoice::Lru,
            },
            CacheTierConfig {
                capacity_bytes: 100,
                bandwidth_bps: 2.0,
                policy: CachePolicyChoice::Lru,
            },
        ]);
        let mut h = cfg.build(1);
        assert_eq!(h.access(f(1), 8), None); // cold miss, admitted both tiers
        assert_eq!(h.access(f(2), 8), None); // evicts 1 from DRAM only
        let latency = h.access(f(1), 8).expect("SSD still holds file 1");
        assert!((latency - 8.0 / 2.0).abs() < 1e-12, "SSD latency, not DRAM");
        // The SSD hit refilled DRAM: the next access is DRAM-fast.
        let latency = h.access(f(1), 8).expect("DRAM hit");
        assert!((latency - 8.0 / 10.0).abs() < 1e-12);
        let tiers = h.tier_stats();
        assert_eq!(tiers.len(), 2);
        assert_eq!(tiers[0].hits, 1, "one DRAM hit");
        assert_eq!(tiers[1].hits, 1, "one SSD hit");
    }

    #[test]
    fn aggregate_conserves_requests_across_tiers() {
        let cfg = CacheHierarchyConfig::new(vec![
            CacheTierConfig::dram(20, CachePolicyChoice::Lru),
            CacheTierConfig::ssd(60, CachePolicyChoice::Lfu),
        ]);
        let mut h = cfg.build(1);
        let mut accesses = 0u64;
        for i in 0..50u32 {
            h.access(f(i % 7), 10 + u64::from(i % 3));
            accesses += 1;
        }
        let agg = h.aggregate_stats();
        assert_eq!(agg.hits + agg.misses, accesses);
    }

    #[test]
    fn per_disk_share_splits_every_tier_budget() {
        let cfg = CacheHierarchyConfig::single(CacheTierConfig::dram(100, CachePolicyChoice::Lru))
            .with_scope(CacheScope::PerDisk);
        let mut slice = cfg.build(4); // 25 B per disk
        assert_eq!(slice.access(f(1), 30), None);
        assert_eq!(
            slice.tier_stats()[0].oversize_rejections,
            1,
            "30 B exceeds the 25 B per-disk slice"
        );
        assert_eq!(slice.depth(), 1);
    }

    #[test]
    fn cache_choice_labels_round_trip_through_parse() {
        let choices = [
            CacheChoice::None,
            CacheChoice::Flat {
                gb: 16,
                policy: CachePolicyChoice::Lru,
            },
            CacheChoice::Flat {
                gb: 4,
                policy: CachePolicyChoice::slru(),
            },
            CacheChoice::TwoTier {
                dram_gb: 4,
                ssd_gb: 64,
                policy: CachePolicyChoice::Lfu,
            },
        ];
        for c in choices {
            assert_eq!(CacheChoice::parse(&c.label()), Some(c), "{}", c.label());
        }
        assert_eq!(CacheChoice::parse("bogus"), None);
        assert_eq!(CacheChoice::parse("slru200:4"), None, "pct over 100");
        assert_eq!(
            CacheChoice::parse("lru:4+lfu:64"),
            None,
            "mixed-policy tiers are not expressible as a CacheChoice"
        );
    }

    #[test]
    fn total_gb_is_the_equal_budget_axis() {
        assert_eq!(CacheChoice::None.total_gb(), 0);
        let two = CacheChoice::TwoTier {
            dram_gb: 4,
            ssd_gb: 60,
            policy: CachePolicyChoice::Lru,
        };
        assert_eq!(two.total_gb(), 64);
        assert_eq!(
            two.hierarchy().unwrap().total_capacity_bytes(),
            64 * GB,
            "hierarchy expansion preserves the budget"
        );
    }
}
